"""The Palm OS kernel: device + ROM + trap semantics, assembled.

:class:`PalmOS` is the "whole handheld": it builds the ROM (with any
registered applications), loads it into a :class:`PalmDevice`, and
provides the host-side kernel services — boot initialisation, the app
launcher, and the HotSync/ROMTransfer state operations the paper's
collection procedure uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from ..device import PalmDevice, constants as C
from .access import HostAccess, TracedAccess
from .database import DatabaseImage, DatabaseManager
from .events import Event, EventQueue, EventType
from .heap import (
    format_storage_magic,
    make_dynamic_heap,
    make_storage_heap,
    storage_is_formatted,
)
from . import layout as L
from .rom import AppSpec, RomBuilder
from .syscalls import SysCalls
from .traps import Trap

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.sanitizer.core import MemorySanitizer
    from ..m68k.cpu import CPU

#: Database that holds installed system extensions (hacks).  Records
#: survive soft resets in the storage heap; boot re-patches the trap
#: table from them — the job X-Master does on a real device.
EXTENSIONS_DB_NAME = "psysExtensions"
LAUNCH_DB_NAME = "psysLaunchDB"

#: Extension record layout: trap u16 | orig slot offset u16 | code...
EXT_TRAP = 0
EXT_ORIG_OFFSET = 2
EXT_CODE = 4


@dataclass
class RegisteredApp:
    app_id: int
    spec: AppSpec
    entry: int


class PalmOS:
    """A booted (or bootable) Palm m515 with this kernel in flash."""

    def __init__(
        self,
        apps: Sequence[AppSpec] = (),
        ram_size: int = C.RAM_SIZE,
        flash_size: int = C.FLASH_SIZE,
        rtc_base: Optional[int] = None,
        entropy_seed: int = 0x1234_5678,
        default_app: Optional[str] = None,
        core: str = "fast",
    ):
        self.rom_builder = RomBuilder(apps)
        self.rom_program = self.rom_builder.build()
        self.device = PalmDevice(
            aline_handler=self._on_aline,
            fline_handler=self._on_fline,
            ram_size=ram_size,
            flash_size=flash_size,
            rtc_base=rtc_base,
            entropy_seed=entropy_seed,
            core=core,
        )
        image = self.rom_program.image(C.FLASH_BASE, flash_size)
        self.device.mem.load_flash_image(bytes(image))

        cpu = self.device.cpu
        self.traced = TracedAccess(cpu)
        self.host = HostAccess(self.device.mem.ram)
        self.dyn_heap = make_dynamic_heap(self.traced)
        self.sto_heap = make_storage_heap(self.traced, ram_size)
        self.dm = DatabaseManager(self.traced, self.sto_heap, self.now_seconds)
        #: Host-side view for HotSync/tests: same guest state, untraced.
        self.dm_host = self.dm.with_access(self.host)
        self.queue = EventQueue(self.traced)
        self.syscalls = SysCalls(self)

        #: POSE-style native fast path for unpatched traps.  The
        #: emulator turns this off when profiling.
        self.allow_native = True
        #: Optional host time source (the replay jitter model).
        self.time_override: Optional[Callable[[], int]] = None
        #: Attached memory sanitizer (see
        #: :mod:`repro.analysis.sanitizer`); trap microcode runs with
        #: checking suspended while it is set.
        self.sanitizer: Optional["MemorySanitizer"] = None

        self.default_stubs: Dict[int, int] = self.rom_builder.stub_addresses(
            self.rom_program)
        self.null_entry = self.rom_program.symbols["app_null"]
        self.unimplemented_stub = self.rom_program.symbols["rom_unimplemented"]

        self.apps: Dict[int, RegisteredApp] = {}
        self.button_map: Dict[int, int] = {}
        for i, (spec, entry) in enumerate(
                self.rom_builder.app_entries(self.rom_program), start=1):
            self.apps[i] = RegisteredApp(i, spec, entry)
            if spec.button:
                self.button_map[spec.button] = i
        self._default_app_id = 0
        if default_app is not None:
            for app in self.apps.values():
                if app.spec.name == default_app:
                    self._default_app_id = app.app_id
                    break
            else:
                raise ValueError(f"unknown default app {default_app!r}")
        elif self.apps:
            self._default_app_id = 1

    # ------------------------------------------------------------------
    # CPU hooks
    # ------------------------------------------------------------------
    def _on_aline(self, cpu: "CPU", op: int) -> bool:
        san = self.sanitizer
        if san is None:
            return self.syscalls.aline(cpu, op)
        # Trap semantics are trusted microcode: suspend checking but
        # keep shadow definedness maintained (see MemorySanitizer).
        san.kernel_enter()
        try:
            return self.syscalls.aline(cpu, op)
        finally:
            san.kernel_exit()

    def _on_fline(self, cpu: "CPU", op: int) -> bool:
        san = self.sanitizer
        if san is None:
            return self.syscalls.fline(cpu, op)
        san.kernel_enter()
        try:
            return self.syscalls.fline(cpu, op)
        finally:
            san.kernel_exit()

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def now_seconds(self, charge: bool = False) -> int:
        """Current time in Palm-epoch seconds.

        Deterministic (tick-derived) unless a ``time_override`` is
        installed — that hook models the paper's emulator, which had to
        approximate the RTC from host time during replay (§2.4.4).
        """
        if charge:
            value = self.traced.read32(C.REG_RTC_SECONDS)
        else:
            value = self.device.rtc.seconds_at(self.device.tick)
        if self.time_override is not None:
            value = self.time_override() & 0xFFFFFFFF
        return value

    # ------------------------------------------------------------------
    # Boot
    # ------------------------------------------------------------------
    def boot(self, max_ticks: int = 1_000_000) -> None:
        """Soft-reset the device and run until the first idle sleep."""
        self.device.soft_reset()
        self.device.run_until_idle(max_ticks)

    def on_boot(self) -> None:
        """EC_BOOT semantics: initialise kernel state in guest RAM."""
        a = self.traced
        boots = self.host.read32(L.G_BOOT_COUNT)
        for addr in range(L.GLOBALS_BASE, L.GLOBALS_BASE + 0x40, 4):
            a.write32(addr, 0)
        a.write32(L.G_BOOT_COUNT, boots + 1)
        a.write32(L.G_RAND_SEED, 1)
        self.queue.reset()
        # Dispatch table: defaults everywhere, real stubs where we have
        # them.
        for idx in range(L.MAX_TRAPS):
            a.write32(L.TRAP_TABLE + idx * 4,
                      self.default_stubs.get(idx, self.unimplemented_stub))
        self.dyn_heap.format()
        # The storage heap persists across soft resets; format only a
        # factory-fresh device.
        if not storage_is_formatted(self.host):
            format_storage_magic(self.traced)
            self.sto_heap.format()
        if not self.dm.find(LAUNCH_DB_NAME):
            db = self.dm.create(LAUNCH_DB_NAME, "lnch", "psys")
            self.dm.new_record(db, 0, 16)
        self._reinstall_extensions()
        a.write32(L.G_CURRENT_APP, self._default_app_id)

    def _reinstall_extensions(self) -> None:
        """Re-patch the trap table from the extensions database — what
        X-Master does for hacks after every reset (§2.3.2)."""
        a = self.traced
        db = self.dm.find(EXTENSIONS_DB_NAME)
        if not db:
            return
        for index in range(self.dm.num_records(db)):
            data, _length = self.dm.get_record(db, index)
            trap = a.read16(data + EXT_TRAP)
            orig_offset = a.read16(data + EXT_ORIG_OFFSET)
            entry = L.TRAP_TABLE + trap * 4
            current = a.read32(entry)
            a.write32(data + EXT_CODE + orig_offset, current)
            a.write32(entry, data + EXT_CODE)

    # ------------------------------------------------------------------
    # Application management
    # ------------------------------------------------------------------
    def app_id(self, name: str) -> int:
        for app in self.apps.values():
            if app.spec.name == name:
                return app.app_id
        raise KeyError(name)

    def select_app(self) -> int:
        """EC_GET_APP semantics: decide which application to run."""
        a = self.traced
        nxt = a.read32(L.G_NEXT_APP)
        if nxt:
            a.write32(L.G_CURRENT_APP, nxt)
            a.write32(L.G_NEXT_APP, 0)
        app_id = a.read32(L.G_CURRENT_APP)
        if app_id not in self.apps:
            # Unknown target (e.g. the launcher tapped an empty row):
            # fall back to the default application.
            app_id = self._default_app_id
            a.write32(L.G_CURRENT_APP, app_id)
        entry = self.apps[app_id].entry if app_id in self.apps else self.null_entry
        self._stamp_launch(app_id)
        return entry

    def _stamp_launch(self, app_id: int) -> None:
        """Update psysLaunchDB — the kernel-private database whose raw
        contents the paper could only guess at ("we estimate from its
        name ... that it stores information about applications that can
        be run from the home screen")."""
        db = self.dm.find(LAUNCH_DB_NAME)
        if not db:
            return
        data, _length = self.dm.get_record(db, 0)
        a = self.traced
        count = a.read32(data)
        a.write32(data, count + 1)
        a.write32(data + 4, app_id)
        a.write32(data + 8, self.device.tick & 0xFFFFFFFF)
        a.write32(data + 12, self.now_seconds())
        self.dm.touch(db)

    @property
    def boot_count(self) -> int:
        """How many times this machine has booted (monotonic across
        both cold boots and warm resets)."""
        return self.host.read32(L.G_BOOT_COUNT)

    def on_app_returned(self) -> None:
        """EC_APP_RETURNED semantics (hook point; nothing to do)."""

    def map_hard_button(self, event: Event) -> Event:
        """Map hardware application buttons to app switches (the job
        SysHandleEvent does on real Palm OS)."""
        if event.etype == EventType.keyDownEvent and event.key in self.button_map:
            target = self.button_map[event.key]
            if target != self.traced.read32(L.G_CURRENT_APP):
                self.traced.write32(L.G_NEXT_APP, target)
                return Event(EventType.appStopEvent)
        return event

    def current_app_name(self) -> str:
        app_id = self.host.read32(L.G_CURRENT_APP)
        return self.apps[app_id].spec.name if app_id in self.apps else "<null>"

    # ------------------------------------------------------------------
    # Host-side state transfer (ROMTransfer + HotSync)
    # ------------------------------------------------------------------
    def rom_transfer(self) -> bytes:
        """ROMTransfer.prc equivalent: dump the flash image."""
        return self.device.mem.dump_flash_image()

    def hotsync_backup(self, all_databases: bool = True) -> List[DatabaseImage]:
        """HotSync: export databases to the desktop.

        The paper sets the backup bit on everything first; passing
        ``all_databases=False`` honours the bits instead.
        """
        return self.dm_host.export_all(backup_only=not all_databases)

    def hotsync_install(self, images: Sequence[DatabaseImage]) -> None:
        """Install database images (import procedure: dates zeroed)."""
        for image in images:
            self.dm_host.import_database(image, imported=True)

    def set_backup_bits(self) -> None:
        self.dm_host.set_backup_bits_all()

    # ------------------------------------------------------------------
    # Trap call helper (host-driven guest calls, for tests and tools)
    # ------------------------------------------------------------------
    def call_trap(self, trap: Trap, *args: int, max_ticks: int = 10_000) -> int:
        """Execute one system trap from a host-built code thunk.

        Builds a tiny driver routine in scratch RAM that pushes ``args``
        and issues the trap, runs it to completion, and returns D0.
        Intended for tests and host tooling (FileZ-style inspection),
        not for workload generation.
        """
        from ..m68k.asm import assemble

        thunk_addr = L.STACK_BOTTOM - 0x200
        lines = ["        org     $%x" % thunk_addr]
        for arg in reversed(args):
            lines.append(f"        move.l  #${arg & 0xFFFFFFFF:x},-(sp)")
        lines.append(f"        dc.w    ${0xA000 | int(trap):x}")
        if args:
            lines.append(f"        adda.l  #{4 * len(args)},sp")
        lines.append("        dc.w    $ffff          ; host exit marker")
        program = assemble("\n".join(lines))
        for addr, blob in program.segments:
            self.device.mem.load_ram(addr, blob)

        cpu = self.device.cpu
        saved_pc = cpu.pc
        saved_stopped = cpu.stopped
        done = {"flag": False}
        prev_fline = cpu.fline_handler

        def fline(c: "CPU", op: int) -> bool:
            if op == 0xFFFF:
                done["flag"] = True
                c.stopped = True
                return True
            return prev_fline(c, op) if prev_fline else False

        cpu.fline_handler = fline
        cpu.stopped = False
        cpu.pc = thunk_addr
        deadline = self.device.tick + max_ticks
        while not done["flag"] and self.device.tick < deadline:
            self.device.advance(self.device.tick + 1)
        cpu.fline_handler = prev_fline
        if not done["flag"]:
            raise RuntimeError(f"trap {trap!r} did not complete")
        result = cpu.d[0]
        cpu.pc = saved_pc
        cpu.stopped = saved_stopped
        return result
