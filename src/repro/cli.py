"""Command-line interface: ``python -m repro <command>``.

The desktop-side workflow of the paper as a tool: collect sessions,
archive them, replay them with profiling, run the validation, and
regenerate the cache study.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from . import __version__


def _add_collect(sub) -> None:
    p = sub.add_parser("collect", help="collect a session on a simulated "
                                       "m515 and archive it")
    p.add_argument("--out", required=True, help="output directory")
    p.add_argument("--session", default="quickstart",
                   help="quickstart | session1..session4 (Table 1)")
    p.add_argument("--seed", type=int, default=None,
                   help="override the synthetic user's seed")


def _add_replay(sub) -> None:
    p = sub.add_parser("replay", help="replay an archived session")
    p.add_argument("--session", required=True, help="archive directory")
    p.add_argument("--no-profile", action="store_true",
                   help="skip profiling (faster)")
    p.add_argument("--trace", default=None,
                   help="write the reference trace to this .npz file")
    p.add_argument("--trace-out", default=None, metavar="FILE.ptrc",
                   help="stream the reference trace into a PTRC "
                        "container during the replay (bounded memory "
                        "unless --trace or checkpointing also needs "
                        "the in-RAM copy)")
    p.add_argument("--trace-codec", default="zlib",
                   help="PTRC codec for --trace-out: raw, zlib, or "
                        "zstd when available (default zlib)")
    p.add_argument("--jitter", type=int, default=None,
                   help="enable the POSE jitter model with this seed")
    p.add_argument("--screenshot", default=None, metavar="FILE.ppm",
                   help="write the final screen as a PPM image")
    p.add_argument("--screen", action="store_true",
                   help="print the final screen as ASCII art")
    p.add_argument("--core", default="fast", choices=("fast", "simple"),
                   help="replay core: predecoded basic-block interpreter "
                        "(fast, default) or per-instruction stepping "
                        "(simple); both are bit-exact")
    p.add_argument("--hot", type=int, default=None, metavar="N",
                   help="after the replay, report the N hottest "
                        "superblocks (entry pc, fetch-reference share, "
                        "invalidations; fast core only) and the N "
                        "hottest trap numbers from the profiler")
    res = p.add_argument_group("resilience (repro.resilience)")
    res.add_argument("--checkpoint-every", type=int, default=None,
                     metavar="N", help="snapshot the machine every N "
                                       "ticks and enable the divergence "
                                       "watchdog")
    res.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="also persist checkpoints to this directory")
    res.add_argument("--on-divergence", default=None,
                     choices=("strict", "resync", "degrade"),
                     help="divergence policy: fail with a report, retry "
                          "from a checkpoint, or continue tainted")
    res.add_argument("--faults", default=None, metavar="SPEC",
                     help="inject faults, e.g. "
                          "'drop:index=3,clock-drift:at=500;seconds=7'")
    res.add_argument("--salvage", action="store_true",
                     help="repair/skip corrupt trace records before "
                          "replaying instead of failing on them")
    res.add_argument("--retry-budget", type=int, default=3, metavar="N",
                     help="checkpoint retries before resync gives up "
                          "(default 3)")
    res.add_argument("--reset-timeout", type=int, default=None,
                     metavar="TICKS",
                     help="ticks to wait for a guest reset before "
                          "raising GuestResetTimeout (default 100000)")
    san = p.add_argument_group("sanitizer (repro.analysis.sanitizer)")
    san.add_argument("--sanitize", action="store_true",
                     help="replay with the guest memory sanitizer "
                          "attached (shadow checking, heap red zones, "
                          "leak check at exit)")
    san.add_argument("--no-sanitize-elide", action="store_true",
                     help="disable the static check-elision set "
                          "(full shadow checking on every access)")
    p.add_argument("--validate-codegen", action="store_true",
                   help="run the translation validator inline on every "
                        "superblock the replay fuses; exit 1 on any "
                        "error-severity finding (fast core only, not "
                        "combinable with --sanitize)")


def _add_validate(sub) -> None:
    p = sub.add_parser("validate", help="replay an archive and run the "
                                        "paper's two-fold validation")
    p.add_argument("--session", required=True)
    p.add_argument("--jitter", type=int, default=None)


def _add_sweep(sub) -> None:
    p = sub.add_parser("sweep", help="run the 56-configuration cache "
                                     "study on a trace")
    p.add_argument("--trace", required=True,
                   help=".npz reference trace, or a .ptrc container / "
                        "archive directory (streamed out-of-core)")
    p.add_argument("--limit", type=int, default=None,
                   help="cap the number of references")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="fan the sweep out over N worker processes "
                        "sharing the trace (default: in-process)")
    p.add_argument("--chunk-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="fail the sweep if any single work unit takes "
                        "longer than this (catches killed or wedged "
                        "workers; default: wait forever)")


def _add_desktop(sub) -> None:
    p = sub.add_parser("desktop-trace", help="generate a synthetic "
                                             "desktop trace (Figure 7)")
    p.add_argument("--out", required=True, help="output .npz file")
    p.add_argument("--length", type=int, default=1_000_000)
    p.add_argument("--seed", type=int, default=0)


def _add_rom(sub) -> None:
    p = sub.add_parser("rom", help="build the ROM and inspect it")
    p.add_argument("--disassemble", type=int, metavar="N", default=0,
                   help="disassemble N instructions from the reset entry")
    p.add_argument("--check", action="store_true",
                   help="run the static analyzer on the built ROM and "
                        "exit nonzero on any error-severity finding")


def _add_lint(sub) -> None:
    p = sub.add_parser("lint", help="static-analyze the built-in ROM, or "
                                    "lint a session archive's activity log")
    p.add_argument("--session", default=None, metavar="DIR",
                   help="lint this archive's activity log instead of "
                        "analyzing the ROM")
    p.add_argument("--deep", action="store_true",
                   help="also run the semantic ROM audit and report "
                        "determinism-relevant findings (unhacked "
                        "nondeterminism sources, self-modifying code)")
    p.add_argument("--verbose", action="store_true",
                   help="also print info-severity findings and the "
                        "static trap census")


def _add_audit(sub) -> None:
    p = sub.add_parser(
        "audit",
        help="semantically audit the built-in ROM with the dataflow "
             "engine (constant propagation, trap-argument recovery, "
             "region classification, nondeterminism reachability)")
    p.add_argument("--session", default=None, metavar="DIR",
                   help="also replay this archive with per-instruction "
                        "reference tracking and cross-check the static "
                        "region predictions against the dynamic trace")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the full machine-readable audit to FILE")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="compare against this baseline and fail only on "
                        "NEW warning/error findings")
    p.add_argument("--write-baseline", default=None, metavar="FILE",
                   help="write the current findings as a new baseline")
    p.add_argument("--verbose", action="store_true",
                   help="also print info findings, trap signatures and "
                        "the call graph summary")


def _add_sanitize(sub) -> None:
    p = sub.add_parser(
        "sanitize",
        help="run the seeded defect corpus through the guest memory "
             "sanitizer (shadow state + static check elision) and gate "
             "against the committed baseline")
    p.add_argument("--program", action="append", default=None,
                   metavar="NAME",
                   help="run only this corpus program (repeatable); "
                        "default: all")
    p.add_argument("--no-elide", action="store_true",
                   help="disable the static elision set (full shadow "
                        "checking)")
    p.add_argument("--differential", action="store_true",
                   help="also run every program with and without "
                        "elision and require bit-identical findings")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="compare against this baseline and fail only "
                        "on NEW findings (missing defect classes still "
                        "fail)")
    p.add_argument("--write-baseline", default=None, metavar="FILE",
                   help="write the current findings as a new baseline")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write machine-readable results to FILE")
    p.add_argument("--verbose", action="store_true",
                   help="also print per-program elision statistics")


def _add_verify_codegen(sub) -> None:
    p = sub.add_parser(
        "verify-codegen",
        help="translation-validate the fused superblock codegen: "
             "replay the standard session with eager fusion, prove "
             "every fused block equivalent to its per-insn reference "
             "semantics, audit every elided check against a fresh "
             "derivation, and run the seeded miscompile self-test")
    p.add_argument("--session", default=None, metavar="DIR",
                   help="validate the blocks this archive fuses instead "
                        "of collecting the standard quickstart session")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write findings + throughput stats as JSON")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="compare against this baseline and fail only on "
                        "NEW warning/error findings")
    p.add_argument("--write-baseline", default=None, metavar="FILE",
                   help="write the current findings as a new baseline")
    p.add_argument("--no-selftest", action="store_true",
                   help="skip the seeded miscompile self-test")
    p.add_argument("--no-elision-audit", action="store_true",
                   help="skip the region/sanitizer elision audits")
    p.add_argument("--verbose", action="store_true",
                   help="also print info findings (per-class self-test "
                        "detections)")


def _add_trace(sub) -> None:
    p = sub.add_parser(
        "trace",
        help="inspect, convert and verify PTRC trace containers")
    act = p.add_subparsers(dest="action", required=True)

    info = act.add_parser("info", help="print a container's (or archive "
                                       "directory's) manifest summary")
    info.add_argument("path")

    conv = act.add_parser(
        "convert",
        help="convert between trace formats by extension: .npz "
             "(ReferenceTrace), .din (dinero text), .ptrc (container); "
             "dinero<->PTRC conversion streams chunk by chunk")
    conv.add_argument("src")
    conv.add_argument("dst")
    conv.add_argument("--codec", default="zlib",
                      help="PTRC codec when the destination is .ptrc "
                           "(raw, zlib, or zstd when available)")
    conv.add_argument("--chunk-tokens", type=int, default=None,
                      metavar="N", help="PTRC chunk size in tokens")

    cat = act.add_parser("cat", help="print references as text lines "
                                     "(kind, region, hex address)")
    cat.add_argument("path")
    cat.add_argument("--limit", type=int, default=None, metavar="N",
                     help="stop after N references")

    ver = act.add_parser(
        "verify",
        help="verify a container or archive: structure, per-chunk "
             "crc32s and the content digest")
    ver.add_argument("path")
    ver.add_argument("--no-deep", action="store_true",
                     help="structure only; skip decoding every chunk")
    ver.add_argument("--salvage", default=None, metavar="OUT.ptrc",
                     help="on a torn/corrupt container, recover the "
                          "intact prefix into OUT.ptrc")


def _add_fleet(sub) -> None:
    p = sub.add_parser(
        "fleet",
        help="run a population-scale replay campaign: a supervised "
             "worker fleet with retries, quarantine, a crash-safe "
             "journal, and mergeable aggregates")
    p.add_argument("--out", required=True, metavar="DIR",
                   help="campaign directory (journal, manifest, "
                        "aggregates)")
    p.add_argument("--sessions", type=int, default=16,
                   help="campaign size (default 16)")
    p.add_argument("--seed", type=int, default=0,
                   help="population base seed (session i uses seed+i)")
    p.add_argument("--jobs", type=int, default=1,
                   help="concurrent worker processes")
    p.add_argument("--behaviors", default="scripted,gremlins",
                   help="comma list of behavior models "
                        "(scripted, gremlins)")
    p.add_argument("--app-mixes", default=None, metavar="A+B,C+D",
                   help="comma list of app mixes, apps joined with '+' "
                        "(every mix needs 'launcher'); default: three "
                        "mixes over the standard suite")
    p.add_argument("--durations", default=None,
                   help="comma list of session lengths in hours "
                        "(default 0.02,0.05)")
    p.add_argument("--caches", default=None, metavar="S:L:A,...",
                   help="comma list of cache geometries as "
                        "size:line:assoc triples (default "
                        "8192:32:4,16384:16:2)")
    p.add_argument("--policy", default="resync",
                   choices=("strict", "resync", "degrade"),
                   help="replay divergence policy for every session")
    p.add_argument("--archive-traces", action="store_true",
                   help="archive every session's reference trace as a "
                        "PTRC container under <out>/traces/ and record "
                        "its digest in the journal (verified on "
                        "--resume)")
    p.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="PRCKPT01 checkpoint interval inside each "
                        "replay (ticks; 0 = policy default)")
    p.add_argument("--hang-timeout", type=float, default=120.0,
                   metavar="SECONDS",
                   help="kill a worker with no heartbeat for this long")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per session before quarantine")
    p.add_argument("--backoff-base", type=float, default=0.25,
                   metavar="SECONDS",
                   help="exponential retry backoff base")
    p.add_argument("--resume", action="store_true",
                   help="continue the campaign in --out: re-run only "
                        "sessions without a journaled verdict")
    p.add_argument("--chaos", action="store_true",
                   help="chaos self-test: inject a worker crash, a "
                        "stall and a poisoned trace, then verify the "
                        "recovery paths")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="victim-selection seed for --chaos")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also write the run summary to FILE")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-session progress lines")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="A trace-driven simulator for Palm OS devices "
                    "(ISPASS 2005 reproduction)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)
    _add_collect(sub)
    _add_replay(sub)
    _add_validate(sub)
    _add_sweep(sub)
    _add_desktop(sub)
    _add_rom(sub)
    _add_lint(sub)
    _add_audit(sub)
    _add_verify_codegen(sub)
    _add_sanitize(sub)
    _add_trace(sub)
    _add_fleet(sub)
    return parser


# ----------------------------------------------------------------------
# Command implementations
# ----------------------------------------------------------------------
_EMU_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}


def _demo_script():
    from .device import Button
    from .workloads import UserScript

    return (UserScript("quickstart").at(100)
            .press(Button.MEMO).wait(50)
            .tap(40, 120).wait(60).tap(90, 140).wait(60)
            .press(Button.UP).wait(80)
            .press(Button.DATEBOOK).wait(80)
            .tap(50, 10).wait(40).tap(90, 50).wait(40))


def cmd_collect(args) -> int:
    from .apps import standard_apps
    from .palmos.database import DatabaseImage
    from .workloads import (
        TABLE1_SESSIONS, collect_session, collect_table1_session)

    out = Path(args.out)
    if args.session == "quickstart":
        session = collect_session(standard_apps(), _demo_script(),
                                  name="quickstart",
                                  ram_size=_EMU_KW["ram_size"])
    else:
        specs = {s.name: s for s in TABLE1_SESSIONS}
        if args.session not in specs:
            print(f"unknown session {args.session!r}; choose from "
                  f"quickstart, {', '.join(specs)}", file=sys.stderr)
            return 2
        spec = specs[args.session]
        if args.seed is not None:
            import dataclasses
            spec = dataclasses.replace(spec, seed=args.seed)
        session = collect_table1_session(spec,
                                         ram_size=_EMU_KW["ram_size"])

    session.initial_state.save(out / "initial_state")
    session.log.save(out / "activity_log.pdb")
    final_dir = out / "final_state"
    final_dir.mkdir(parents=True, exist_ok=True)
    for i, image in enumerate(session.final_state):
        (final_dir / f"db_{i:03d}.pdb").write_bytes(image.to_pdb_bytes())
    print(f"collected {session.name}: {session.events} events over "
          f"{session.elapsed_hms()} -> {out}")
    return 0


def _load_archive(directory: str):
    from .tracelog import ActivityLog, InitialState

    root = Path(directory)
    state = InitialState.load(root / "initial_state")
    log = ActivityLog.load(root / "activity_log.pdb")
    return state, log


def _load_final_state(directory: str):
    from .palmos.database import DatabaseImage

    final_dir = Path(directory) / "final_state"
    if not final_dir.is_dir():
        return None
    return [DatabaseImage.from_pdb_bytes(path.read_bytes())
            for path in sorted(final_dir.glob("*.pdb"))]


def _resilience_active(args) -> bool:
    return any((args.checkpoint_every is not None,
                args.on_divergence is not None,
                args.faults is not None,
                args.salvage,
                args.reset_timeout is not None))


def _open_trace_writer(args):
    """A PTRC writer for ``--trace-out``, or an error message."""
    from .traces.container import ContainerWriter, TraceContainerError

    try:
        return ContainerWriter(
            args.trace_out, codec=args.trace_codec,
            session={"source": "replay", "archive": str(args.session)}), None
    except TraceContainerError as exc:
        return None, str(exc)


def _report_trace_out(manifest, path) -> None:
    print(f"trace-out    : {path} ({manifest['tokens']:,} tokens, "
          f"{manifest['chunks']} chunk(s), codec {manifest['codec']}, "
          f"digest {manifest['digest'][:12]}…)")


def cmd_replay(args) -> int:
    from .apps import standard_apps
    from .emulator import JitterModel, replay_session

    jitter = JitterModel(seed=args.jitter) if args.jitter is not None else None
    if args.trace_out and args.no_profile:
        print("--trace-out needs profiling (drop --no-profile)",
              file=sys.stderr)
        return 2
    if _resilience_active(args):
        if args.sanitize:
            print("--sanitize does not combine with the resilience "
                  "options (checkpoint state excludes shadow memory)",
                  file=sys.stderr)
            return 2
        return _replay_resilient(args, jitter)
    if args.validate_codegen and (args.sanitize or args.core != "fast"):
        print("--validate-codegen requires the fast core without "
              "--sanitize (fused codegen is disabled under shadow "
              "checking)", file=sys.stderr)
        return 2
    trace_writer = None
    if args.trace_out:
        trace_writer, err = _open_trace_writer(args)
        if trace_writer is None:
            print(f"--trace-out: {err}", file=sys.stderr)
            return 2
    state, log = _load_archive(args.session)
    start = time.time()
    try:
        emulator, profiler, result = replay_session(
            state, log, apps=standard_apps(), profile=not args.no_profile,
            jitter=jitter, emulator_kwargs={**_EMU_KW, "core": args.core},
            sanitize=args.sanitize,
            sanitize_elide=not args.no_sanitize_elide,
            validate_codegen=args.validate_codegen,
            trace_sink=trace_writer,
            # --trace still needs the in-RAM copy; otherwise the trace
            # lives only in the container and the replay runs bounded.
            trace_spill=trace_writer is not None and not args.trace)
    except BaseException:
        if trace_writer is not None:
            trace_writer.abort()
        raise
    elapsed = time.time() - start
    if args.screenshot:
        from .analysis import screenshot_ppm
        screenshot_ppm(emulator.kernel, args.screenshot)
        print(f"screenshot    : {args.screenshot}")
    if args.screen:
        from .analysis import screen_ascii
        print(screen_ascii(emulator.kernel))
    print(f"replayed {result.events_injected} events in {elapsed:.1f}s")
    if profiler is not None:
        total = profiler.total_refs
        print(f"instructions : {profiler.instructions:,}")
        print(f"references   : {total:,} "
              f"(RAM {100 * profiler.ram_refs / max(1, total):.1f}%, "
              f"flash {100 * profiler.flash_refs / max(1, total):.1f}%)")
        print(f"ave mem cyc  : {profiler.average_memory_cycles():.3f} "
              f"(paper Table 1: 2.35-2.39)")
        if args.trace:
            profiler.reference_trace().save(args.trace)
            print(f"trace written: {args.trace}")
    if trace_writer is not None:
        _report_trace_out(trace_writer.close(), args.trace_out)
    if args.hot:
        _print_hot(emulator, profiler, args.hot)
    if args.sanitize:
        san = emulator.sanitizer
        stats = san.stats()
        print(f"sanitizer    : {stats['data_accesses']:,} data accesses, "
              f"{stats['elided']:,} statically elided "
              f"(rate {stats['elision_rate']}), "
              f"{stats['probed']:,} shadow probes")
        report = san.report
        if len(report):
            print(report.format())
            return 1
        print("sanitizer    : no findings")
    if args.validate_codegen:
        report = emulator.codegen_report
        if report is None:
            print("validate-codegen: core fused nothing (no report)")
        else:
            print(f"validate-codegen: {len(report)} finding(s) across "
                  f"the replay's fused blocks")
            if not report.ok:
                print(report.format())
                return 1
    return 0


def _print_hot(emulator, profiler, n: int) -> None:
    """The ``--hot`` report: where replay time goes, from data the
    cores and the profiler already keep."""
    hot = getattr(emulator.device.core, "hot_blocks", None)
    if hot is None:
        print("hot blocks   : (requires --core fast)")
    else:
        total = max(1, profiler.total_refs) if profiler is not None else 0
        print(f"hot blocks   : {'entry':>10} {'runs':>9} {'insns':>11} "
              f"{'ref share':>9} {'invalid':>7} {'fused':>5} "
              f"{'elide':>5} {'source':>12} {'loop':>4}")
        for row in hot(n):
            share = (f"{100 * row['fetch_refs'] / total:>8.2f}%"
                     if total else f"{row['fetch_refs']:>9,}")
            if "fused_insns" in row:
                fused = (f"{row['fused_insns']:>5} {row['elisions']:>5} "
                         f"{row['source_hash']:>12} "
                         f"{'yes' if row.get('loop') else 'no':>4}")
            else:
                fused = f"{'-':>5} {'-':>5} {'-':>12} {'-':>4}"
            print(f"               {row['pc']:#010x} {row['runs']:>9,} "
                  f"{row['insns']:>11,} {share} "
                  f"{row['invalidations']:>7} {fused}")
    if profiler is not None:
        from .palmos.traps import Trap

        def name(idx: int) -> str:
            try:
                return Trap(idx).name
            except ValueError:
                return f"trap {idx:#x}"
        traps = profiler.top_traps(n)
        print("hot traps    : " + (", ".join(
            f"{name(t)} ({c:,})" for t, c in traps) or "(none)"))


def _replay_resilient(args, jitter) -> int:
    from .apps import standard_apps
    from .resilience import (DivergenceError, FaultPlan, FaultSpecError,
                             GuestResetTimeout, ReplayFault, TraceFormatError,
                             resilient_replay, salvage_file)
    from .tracelog import ActivityLog, InitialState

    try:
        plan = FaultPlan.parse(args.faults) if args.faults else None
    except FaultSpecError as exc:
        print(f"bad --faults spec: {exc}", file=sys.stderr)
        return 2
    root = Path(args.session)
    state = InitialState.load(root / "initial_state")
    log_path = root / "activity_log.pdb"
    salvage_result = None
    if args.salvage:
        # Lenient load: recover what the strict decoder would refuse.
        try:
            salvage_result = salvage_file(log_path)
        except TraceFormatError as exc:
            print(f"unsalvageable activity log: {exc}", file=sys.stderr)
            return 1
        log = salvage_result.log
        print(f"salvage      : {salvage_result.summary()}")
    else:
        try:
            log = ActivityLog.load(log_path)
        except TraceFormatError as exc:
            print(f"corrupt activity log: {exc}\n"
                  f"(re-run with --salvage to repair/skip bad records)",
                  file=sys.stderr)
            return 1
    kwargs = dict(
        apps=standard_apps(), profile=not args.no_profile, jitter=jitter,
        emulator_kwargs={**_EMU_KW, "core": args.core},
        on_divergence=args.on_divergence or "strict",
        retry_budget=args.retry_budget, faults=plan,
        checkpoint_dir=args.checkpoint_dir)
    if args.checkpoint_every is not None:
        kwargs["checkpoint_every"] = args.checkpoint_every
    if args.reset_timeout is not None:
        kwargs["reset_timeout"] = args.reset_timeout
    start = time.time()
    try:
        out = resilient_replay(state, log, **kwargs)
    except DivergenceError as exc:
        print("replay diverged from the recorded session:", file=sys.stderr)
        print(exc.report.format(), file=sys.stderr)
        return 1
    except ReplayFault as exc:
        print(f"injected fault was not recovered: {exc}", file=sys.stderr)
        return 1
    except GuestResetTimeout as exc:
        print(f"guest reset timed out: {exc}", file=sys.stderr)
        return 1
    elapsed = time.time() - start
    for note in out.fault_notes:
        print(f"fault        : {note}")
    if args.screenshot:
        from .analysis import screenshot_ppm
        screenshot_ppm(out.emulator.kernel, args.screenshot)
        print(f"screenshot    : {args.screenshot}")
    if args.screen:
        from .analysis import screen_ascii
        print(screen_ascii(out.emulator.kernel))
    result = out.result
    print(f"replayed {result.events_injected} events in {elapsed:.1f}s")
    if out.checkpoints:
        ticks = out.checkpoints.ticks
        print(f"checkpoints  : {len(ticks)} kept "
              f"(ticks {ticks[0]}..{ticks[-1]})" if ticks
              else "checkpoints  : none captured")
    if out.retries:
        print(f"retries      : {out.retries} (recovered from checkpoint)")
    if out.tainted:
        print("TAINTED      : replay diverged and continued under "
              "--on-divergence degrade")
        print(out.report.format())
    profiler = out.profiler
    if profiler is not None:
        total = profiler.total_refs
        print(f"instructions : {profiler.instructions:,}")
        print(f"references   : {total:,} "
              f"(RAM {100 * profiler.ram_refs / max(1, total):.1f}%, "
              f"flash {100 * profiler.flash_refs / max(1, total):.1f}%)")
        print(f"ave mem cyc  : {profiler.average_memory_cycles():.3f} "
              f"(paper Table 1: 2.35-2.39)")
        if args.trace:
            profiler.reference_trace().save(args.trace)
            print(f"trace written: {args.trace}")
        if args.trace_out:
            # Drained after the replay rather than streamed: PRCKPT01
            # checkpoints carry the in-RAM trace, so spilling it would
            # break the resync/retry machinery.  chunks() still streams
            # the write itself.
            trace_writer, err = _open_trace_writer(args)
            if trace_writer is None:
                print(f"--trace-out: {err}", file=sys.stderr)
                return 2
            with trace_writer:
                for chunk in profiler.chunks():
                    trace_writer.append_tokens(chunk)
            _report_trace_out(trace_writer.manifest, args.trace_out)
    return 0


def cmd_validate(args) -> int:
    from .analysis import format_validation
    from .apps import standard_apps
    from .emulator import JitterModel, replay_session
    from .tracelog import read_activity_log
    from .validation import correlate_final_states, correlate_logs

    state, log = _load_archive(args.session)
    device_final = _load_final_state(args.session)
    jitter = JitterModel(seed=args.jitter) if args.jitter is not None else None
    emulator, _, _ = replay_session(state, log, apps=standard_apps(),
                                    profile=False, jitter=jitter,
                                    emulator_kwargs=_EMU_KW)
    log_corr = correlate_logs(log, read_activity_log(emulator.kernel))
    summaries = [log_corr.summary()]
    ok = log_corr.valid
    if device_final is not None:
        extra = ["UserInputLog"] if jitter else []
        state_corr = correlate_final_states(device_final,
                                            emulator.final_state(),
                                            extra_expected_databases=extra)
        summaries.append(state_corr.summary())
        ok = ok and state_corr.valid
    else:
        summaries.append("final state: not archived (re-collect with "
                         "this version to enable)")
    print(format_validation(*summaries))
    return 0 if ok else 1


def cmd_sweep(args) -> int:
    from .analysis import format_access_times, format_miss_rates
    from .cache import RegionMix, sweep_parallel
    from .emulator import ReferenceTrace

    jobs = max(1, args.jobs)
    how = f"{jobs} workers" if jobs > 1 else "in-process"
    path = Path(args.trace)
    if path.is_dir() or path.suffix == ".ptrc":
        # Out-of-core: workers stream chunks straight off the container
        # (or archive directory); the trace is never fully resident.
        from .traces.container import open_chunk_source
        if args.limit:
            print("--limit does not apply to container sweeps "
                  "(the trace is streamed, not loaded)", file=sys.stderr)
            return 2
        with_src = open_chunk_source(args.trace)
        try:
            counts = with_src.counts()
        finally:
            closer = getattr(with_src, "close", None)
            if closer is not None:
                closer()
        total = counts["ram"] + counts["flash"]
        print(f"sweeping {total:,} references out-of-core ({how}) ...")
        points = sweep_parallel(container=args.trace, jobs=jobs,
                                chunk_timeout=args.chunk_timeout)
    else:
        trace = ReferenceTrace.load(args.trace).memory_only()
        counts = trace.counts()
        addresses = trace.addresses
        if args.limit:
            addresses = addresses[:args.limit]
        print(f"sweeping {len(addresses):,} references ({how}) ...")
        points = sweep_parallel(addresses, jobs=jobs,
                                chunk_timeout=args.chunk_timeout)
    print(format_miss_rates(points))
    print()
    mix = RegionMix(counts["ram"], counts["flash"])
    print(format_access_times(points, mix))
    return 0


def cmd_desktop(args) -> int:
    import numpy as np

    from .traces import generate_desktop_trace

    trace = generate_desktop_trace(args.length, seed=args.seed)
    # Store in the ReferenceTrace container (all data reads, RAM).
    from .emulator import ReferenceTrace
    kinds = np.ones(len(trace), dtype=np.uint8)
    ReferenceTrace(addresses=trace, kinds=kinds).save(args.out)
    print(f"wrote {len(trace):,} references to {args.out}")
    return 0


def cmd_rom(args) -> int:
    from .apps import standard_apps
    from .device import constants as C
    from .m68k.disasm import disassemble
    from .palmos.rom import RomBuilder

    builder = RomBuilder(standard_apps())
    program = builder.build()
    image = program.image(C.FLASH_BASE, C.FLASH_SIZE)
    used = len(program.segments[0][1]) if program.segments else 0
    print(f"ROM: {used:,} bytes of code/data in a "
          f"{len(image) // (1 << 20)} MB flash image")
    print(f"traps: {len(builder.stub_addresses(program))}, "
          f"applications: {len(builder.apps)}")
    if args.disassemble:
        entry = program.symbols["rom_boot"]

        def fetch(addr):
            off = addr - C.FLASH_BASE
            return (image[off] << 8) | image[off + 1]

        print(f"\nreset entry ({entry:#x}):")
        print(disassemble(fetch, entry, count=args.disassemble))
    if args.check:
        from .analysis.static import Severity, analyze_rom

        analysis = analyze_rom()
        print()
        print(analysis.report.format(min_severity=Severity.WARNING))
        if not analysis.ok:
            return 1
    return 0


def cmd_lint(args) -> int:
    from .analysis.static import Severity, analyze_rom, lint_archive

    if args.session is not None:
        report = lint_archive(args.session)
        source = f"activity log of {args.session}"
    else:
        analysis = analyze_rom()
        report = analysis.report
        source = "built-in ROM"
        if args.verbose:
            print("static trap census:")
            for name, sites in analysis.census.names().items():
                print(f"  {name:24s} {sites} call site(s)")
    if args.deep:
        from .analysis.static.tracelint import deep_findings
        report.extend(deep_findings())
        source += " + semantic ROM audit"
    min_severity = Severity.INFO if args.verbose else Severity.WARNING
    print(f"lint: {source}")
    print(report.format(min_severity=min_severity))
    return 0 if report.ok else 1


def cmd_audit(args) -> int:
    import json as _json

    from .analysis.static import Severity
    from .analysis.static.audit import (audit_rom, cross_check_regions,
                                        load_baseline, new_findings_against,
                                        save_baseline)

    result = audit_rom(ram_size=_EMU_KW["ram_size"],
                       flash_size=_EMU_KW["flash_size"])
    report = result.report

    if args.session is not None:
        from .apps import standard_apps
        from .emulator import replay_session

        state, log = _load_archive(args.session)
        _, profiler, _ = replay_session(
            state, log, apps=standard_apps(), profile=True,
            trace_references=False, track_opcode_addresses=True,
            track_reference_pcs=True, emulator_kwargs=_EMU_KW)
        report.extend(cross_check_regions(result, profiler.reference_pcs))

    if args.json:
        Path(args.json).write_text(
            _json.dumps(result.to_json(), indent=2) + "\n")
        print(f"audit json   : {args.json}")
    if args.write_baseline:
        save_baseline(result, args.write_baseline)
        print(f"baseline     : {args.write_baseline} "
              f"({len(result.baseline_keys())} finding(s) frozen)")

    if args.verbose:
        print("trap signatures (recovered constant arguments):")
        for name, sigs in result.census.signatures().items():
            rendered = ", ".join(
                "(" + ", ".join("?" if v is None else f"{v:#x}"
                                for v in sig) + ")"
                for sig in sigs)
            print(f"  {name:24s} {rendered}")
        print(f"call graph   : {len(result.call_graph)} function(s), "
              f"{sum(len(c) for c in result.call_graph.values())} edge(s)")
    min_severity = Severity.INFO if args.verbose else Severity.WARNING
    print("audit: built-in ROM")
    print(report.format(min_severity=min_severity))

    if args.baseline:
        baseline = load_baseline(args.baseline)
        fresh = new_findings_against(result, baseline)
        if fresh:
            print(f"{len(fresh)} NEW finding(s) not in the baseline:")
            for finding in fresh:
                print(f"  {finding.format()}")
            return 1
        print(f"no new findings against {args.baseline} "
              f"({len(baseline)} baselined)")
        return 0
    return 0 if report.ok else 1


def cmd_verify_codegen(args) -> int:
    import json as _json

    from .analysis.static import Severity
    from .analysis.transval import (load_baseline, new_findings_against,
                                    save_baseline, verify_codegen)

    report, stats = verify_codegen(
        session_dir=args.session,
        run_selftest=not args.no_selftest,
        audit_elisions=not args.no_elision_audit,
        progress=lambda msg: print(msg, file=sys.stderr))

    print(f"verify-codegen: {stats.blocks} fused block(s), "
          f"{stats.vectors:,} vector(s), "
          f"{stats.arms_covered}/{stats.arms} live arm(s) covered "
          f"({100 * stats.coverage:.1f}%), {stats.arms_dead} proven dead")
    print(f"elided checks : {stats.elisions} region, "
          f"{stats.sanitizer_elisions} sanitizer")
    print(f"throughput    : {stats.blocks_per_sec:.1f} blocks/s "
          f"({stats.wall:.2f}s validate, {stats.replay_wall:.2f}s replay)")
    min_severity = Severity.INFO if args.verbose else Severity.WARNING
    print(report.format(min_severity=min_severity))

    if args.json:
        payload = {
            "stats": stats.to_json(),
            "findings": [{"severity": f.severity.label(), "code": f.code,
                          "message": f.message, "address": f.address}
                         for f in report.sorted()],
        }
        Path(args.json).write_text(_json.dumps(payload, indent=2) + "\n")
        print(f"json          : {args.json}")
    if args.write_baseline:
        save_baseline(report, args.write_baseline)
        print(f"baseline      : {args.write_baseline}")

    if args.baseline:
        baseline = load_baseline(args.baseline)
        fresh = new_findings_against(report, baseline)
        if fresh:
            print(f"{len(fresh)} NEW finding(s) not in the baseline:")
            for finding in fresh:
                print(f"  {finding.format()}")
            return 1
        print(f"no new findings against {args.baseline} "
              f"({len(baseline)} baselined)")
        return 0
    return 0 if report.ok else 1


def cmd_sanitize(args) -> int:
    import json as _json

    from .analysis.sanitizer import corpus as san_corpus

    names = args.program
    if names:
        known = san_corpus.programs_by_name()
        unknown = [n for n in names if n not in known]
        if unknown:
            print(f"unknown corpus program(s): {', '.join(unknown)}; "
                  f"choose from {', '.join(known)}", file=sys.stderr)
            return 2
    results = san_corpus.run_corpus(names, elide=not args.no_elide)

    print("sanitize: seeded defect corpus "
          f"({'full checking' if args.no_elide else 'static elision on'})")
    failures = []
    for r in results:
        expect = (f"{r.program.code}@{r.expected_address:#x}"
                  if r.program.code else "no findings")
        got = (", ".join(f"{c}@{a:#x}" for c, _s, a in r.findings)
               or "no findings")
        status = "ok" if r.matched else "MISSED"
        if not r.matched:
            failures.append(r.program.name)
        print(f"  {r.program.name:12s} {status:7s} expected {expect}, "
              f"got {got}")
        if args.verbose:
            e = r.elision.stats()
            s = r.san_stats
            print(f"  {'':12s} elision: {e['proven_insns']}/"
                  f"{e['candidate_insns']} insns proven, dynamic rate "
                  f"{s['elision_rate']} ({s['elided']}/{s['data_accesses']})")

    if args.differential:
        diverged = san_corpus.differential(names)
        if diverged:
            print(f"DIFFERENTIAL FAILURE (elided vs full findings "
                  f"differ): {', '.join(diverged)}")
            failures.extend(diverged)
        else:
            print("differential : elided and full checking report "
                  "identical findings")

    if args.json:
        payload = {
            "programs": {
                r.program.name: {
                    "ptr": r.ptr,
                    "expected": r.program.code,
                    "expected_address": r.expected_address,
                    "matched": r.matched,
                    "findings": [list(f) for f in r.findings],
                    "elision": r.elision.stats(),
                    "stats": r.san_stats,
                } for r in results
            },
        }
        Path(args.json).write_text(_json.dumps(payload, indent=2) + "\n")
        print(f"json         : {args.json}")
    if args.write_baseline:
        baseline = san_corpus.baseline_keys(results)
        Path(args.write_baseline).write_text(
            _json.dumps({"programs": baseline}, indent=2) + "\n")
        frozen = sum(len(v) for v in baseline.values())
        print(f"baseline     : {args.write_baseline} "
              f"({frozen} finding(s) frozen)")

    if args.baseline:
        baseline = _json.loads(Path(args.baseline).read_text())["programs"]
        fresh = san_corpus.new_findings_against(results, baseline)
        if fresh:
            print(f"{len(fresh)} NEW finding(s) not in the baseline:")
            for prog, code, addr in fresh:
                print(f"  {prog}: {code} at {addr:#x}")
            failures.append("baseline")
        else:
            known = sum(len(v) for v in baseline.values())
            print(f"no new findings against {args.baseline} "
                  f"({known} baselined)")

    return 1 if failures else 0


_KIND_NAMES = {0: "fetch", 1: "read", 2: "write"}
_REGION_NAMES = {0: "ram", 1: "flash", 2: "hw", 3: "card"}


def _trace_reference_stream(path: Path):
    """``(addresses, kinds)`` chunk pairs from any trace format."""
    if path.is_dir() or path.suffix == ".ptrc":
        from .traces.container import open_chunk_source, unpack_tokens
        src = open_chunk_source(path)
        try:
            for chunk in src.chunks():
                yield unpack_tokens(chunk)
        finally:
            closer = getattr(src, "close", None)
            if closer is not None:
                closer()
    elif path.suffix == ".din":
        from .traces.dinero import read_dinero_chunks
        yield from read_dinero_chunks(path)
    else:
        from .emulator import ReferenceTrace
        yield from ReferenceTrace.load(path).chunks()


def cmd_trace(args) -> int:
    from .traces.container import (
        TraceArchive,
        TraceContainer,
        TraceContainerError,
        open_chunk_source,
    )

    if args.action == "info":
        path = Path(args.path)
        if path.is_dir():
            archive = TraceArchive(path)
            meta = archive.meta
            print(f"archive      : {path} "
                  f"({meta.get('format', 'PTRC-archive')})")
            print(f"members      : {len(archive.members())}, "
                  f"{archive.total_tokens:,} tokens total")
            for record in archive.members():
                print(f"  {record['id']:12s} {record['tokens']:>12,} "
                      f"tokens  {record['file']}  "
                      f"digest {record['digest'][:12]}…")
            return 0
        try:
            with TraceContainer(path) as container:
                manifest = container.manifest
                ratio = (manifest["payload_bytes"]
                         / max(1, 8 * manifest["tokens"]))
                print(f"container    : {path} (PTRC v{manifest['version']})")
                print(f"codec        : {manifest['codec']}, "
                      f"{manifest['chunk_tokens']:,} tokens/chunk")
                print(f"tokens       : {manifest['tokens']:,} in "
                      f"{manifest['chunks']} chunk(s)")
                print(f"payload      : {manifest['payload_bytes']:,} bytes "
                      f"({ratio:.3f}x of raw)")
                print(f"digest       : {manifest['digest']}")
                for key, value in sorted(manifest.get("session",
                                                      {}).items()):
                    print(f"session.{key:<12s}: {value}")
        except TraceContainerError as exc:
            print(f"not a readable container: {exc}\n"
                  f"(try `trace verify --salvage OUT.ptrc {path}`)",
                  file=sys.stderr)
            return 1
        return 0

    if args.action == "convert":
        return _cmd_trace_convert(args)

    if args.action == "cat":
        left = args.limit
        for addresses, kinds in _trace_reference_stream(Path(args.path)):
            if left is not None:
                addresses, kinds = addresses[:left], kinds[:left]
            for addr, kind in zip(addresses, kinds):
                print(f"{_KIND_NAMES.get(int(kind) & 0x0F, '?'):5s} "
                      f"{_REGION_NAMES.get(int(kind) >> 4, '?'):5s} "
                      f"{int(addr):#010x}")
            if left is not None:
                left -= len(addresses)
                if left <= 0:
                    return 0
        return 0

    # verify
    try:
        src = open_chunk_source(args.path)
        try:
            report = src.verify(deep=not args.no_deep)
        finally:
            closer = getattr(src, "close", None)
            if closer is not None:
                closer()
    except TraceContainerError as exc:
        print(f"verify FAILED: {exc}")
        if not args.salvage:
            return 1
        from .resilience import salvage_container
        result = salvage_container(args.path, args.salvage)
        print(result.summary())
        print(result.report.format())
        return 0 if result.tokens_kept else 1
    if isinstance(report, dict) and "chunks" in report:
        print(f"verify OK    : {report['chunks']} chunk(s), "
              f"{report['tokens']:,} tokens"
              + (f", digest {report['digest'][:12]}…"
                 if "digest" in report else " (structure only)"))
    else:
        for member_id, member_report in report.items():
            print(f"verify OK    : {member_id}: "
                  f"{member_report['chunks']} chunk(s), "
                  f"{member_report['tokens']:,} tokens")
    return 0


def _cmd_trace_convert(args) -> int:
    from .traces.container import TraceContainerError

    src = Path(args.src)
    dst = Path(args.dst)
    src_kind = "ptrc" if (src.is_dir() or src.suffix == ".ptrc") \
        else src.suffix.lstrip(".")
    dst_kind = "ptrc" if dst.suffix == ".ptrc" else dst.suffix.lstrip(".")
    writer_kwargs = {"codec": args.codec}
    if args.chunk_tokens:
        writer_kwargs["chunk_tokens"] = args.chunk_tokens
    try:
        if dst_kind == "ptrc":
            from .traces.container import ContainerWriter
            with ContainerWriter(dst, session={"source": str(src)},
                                 **writer_kwargs) as writer:
                for addresses, kinds in _trace_reference_stream(src):
                    writer.append_reference(addresses, kinds)
            manifest = writer.manifest
            print(f"wrote {dst}: {manifest['tokens']:,} tokens, "
                  f"{manifest['chunks']} chunk(s), codec "
                  f"{manifest['codec']}, digest {manifest['digest'][:12]}…")
        elif dst_kind == "din":
            from .traces.dinero import write_dinero_chunks
            count = write_dinero_chunks(dst, _trace_reference_stream(src))
            print(f"wrote {dst}: {count:,} records")
        elif dst_kind == "npz":
            import numpy as np

            from .emulator import ReferenceTrace
            addr_chunks, kind_chunks = [], []
            for addresses, kinds in _trace_reference_stream(src):
                addr_chunks.append(addresses)
                kind_chunks.append(kinds)
            trace = ReferenceTrace(
                addresses=(np.concatenate(addr_chunks) if addr_chunks
                           else np.empty(0, dtype=np.uint32)),
                kinds=(np.concatenate(kind_chunks) if kind_chunks
                       else np.empty(0, dtype=np.uint8)))
            trace.save(dst)
            print(f"wrote {dst}: {len(trace.addresses):,} references")
        else:
            print(f"unknown destination format {dst.suffix!r} "
                  f"(use .npz, .din or .ptrc)", file=sys.stderr)
            return 2
    except (TraceContainerError, OSError) as exc:
        print(f"convert failed: {exc}", file=sys.stderr)
        return 1
    if src_kind not in ("ptrc", "din", "npz"):
        print(f"note: guessed source format from contents of "
              f"{src.suffix!r}", file=sys.stderr)
    return 0


def cmd_fleet(args) -> int:
    import json as _json

    from .fleet import (
        CampaignSpec,
        ChaosPlan,
        FleetSupervisor,
        JournalError,
        read_manifest,
        verify_chaos,
    )
    from .fleet.campaign import DEFAULT_CACHES, DEFAULT_DURATIONS

    progress = (lambda text: None) if args.quiet else (
        lambda text: print(f"  {text}"))

    if args.resume:
        try:
            spec_json, _ = read_manifest(args.out)
        except JournalError as exc:
            print(f"cannot resume: {exc}", file=sys.stderr)
            return 1
        spec = CampaignSpec.from_json(spec_json)
        print(f"resuming campaign {spec.name!r} "
              f"({spec.sessions} sessions) in {args.out}")
    else:
        durations = (tuple(float(d) for d in args.durations.split(","))
                     if args.durations else DEFAULT_DURATIONS)
        if args.caches:
            caches = tuple(
                tuple(int(part) for part in triple.split(":"))
                for triple in args.caches.split(","))
        else:
            caches = DEFAULT_CACHES
        mixes = {}
        if args.app_mixes:
            mixes["app_mixes"] = tuple(
                tuple(mix.split("+")) for mix in args.app_mixes.split(","))
        spec = CampaignSpec(
            name=Path(args.out).name or "campaign",
            sessions=args.sessions,
            seed=args.seed,
            behaviors=tuple(args.behaviors.split(",")),
            **mixes,
            durations=durations,
            caches=caches,
            policy=args.policy,
            checkpoint_every=args.checkpoint_every,
            archive_traces=args.archive_traces,
        )
        cells = spec.cells()
        print(f"campaign {spec.name!r}: {spec.sessions} sessions over "
              f"{len(cells)} grid cell(s), {args.jobs} worker(s)")

    chaos_plan = None
    chaos = None
    if args.chaos:
        chaos_plan = ChaosPlan.plan(spec.sessions, seed=args.chaos_seed)
        chaos = chaos_plan.directives()
        print(f"  {chaos_plan.describe()}")

    supervisor = FleetSupervisor(
        spec, args.out, jobs=args.jobs, hang_timeout=args.hang_timeout,
        retries=args.retries, backoff_base=args.backoff_base,
        chaos=chaos, progress=progress)
    try:
        result = supervisor.run(resume=args.resume)
    except JournalError as exc:
        print(f"campaign integrity check failed: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("interrupted — the journal is durable; continue with "
              "--resume")
        return 130

    print(result.format(spec.name))
    ok = result.complete
    if chaos_plan is not None:
        problems = verify_chaos(chaos_plan, result)
        if problems:
            ok = False
            print("chaos self-test FAILED:")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print("chaos self-test: all recovery paths held")
    if args.json:
        payload = {
            "spec": spec.to_json(),
            "completed": result.completed,
            "quarantined": result.quarantined,
            "ran": result.ran,
            "retried": result.retried,
            "crashes": result.crashes,
            "hangs": result.hangs,
            "wall_seconds": result.wall_seconds,
            "sessions_per_minute": result.sessions_per_minute(),
            "summary": result.aggregate.summary(),
        }
        if chaos_plan is not None:
            payload["chaos"] = {
                "crash_victims": chaos_plan.crash_victims,
                "stall_victims": chaos_plan.stall_victims,
                "poison_victims": chaos_plan.poison_victims,
                "violations": verify_chaos(chaos_plan, result),
            }
        Path(args.json).write_text(_json.dumps(payload, indent=2,
                                               sort_keys=True) + "\n")
    return 0 if ok else 1


_COMMANDS = {
    "collect": cmd_collect,
    "replay": cmd_replay,
    "validate": cmd_validate,
    "sweep": cmd_sweep,
    "desktop-trace": cmd_desktop,
    "rom": cmd_rom,
    "lint": cmd_lint,
    "audit": cmd_audit,
    "verify-codegen": cmd_verify_codegen,
    "sanitize": cmd_sanitize,
    "trace": cmd_trace,
    "fleet": cmd_fleet,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
