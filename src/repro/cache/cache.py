"""The reference cache simulator.

A set-associative cache with configurable size, line size,
associativity, replacement policy (LRU as in the paper, plus FIFO and
random for the ablation study), and write policy.  This is the
straightforward, obviously-correct model; the single-pass fast path in
:mod:`repro.cache.stackdist` is validated against it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

POLICY_LRU = "lru"
POLICY_FIFO = "fifo"
POLICY_RANDOM = "random"

WRITE_THROUGH = "write-through"
WRITE_BACK = "write-back"


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """One cache configuration (the paper varies the first three)."""

    size: int                      # total bytes
    line_size: int                 # bytes per line
    associativity: int             # ways per set
    policy: str = POLICY_LRU
    write_policy: str = WRITE_THROUGH
    write_allocate: bool = True

    def __post_init__(self):
        if not _is_pow2(self.size) or not _is_pow2(self.line_size):
            raise ValueError("size and line_size must be powers of two")
        if not _is_pow2(self.associativity):
            raise ValueError("associativity must be a power of two")
        if self.size < self.line_size * self.associativity:
            raise ValueError("cache smaller than one set")
        if self.policy not in (POLICY_LRU, POLICY_FIFO, POLICY_RANDOM):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.write_policy not in (WRITE_THROUGH, WRITE_BACK):
            raise ValueError(f"unknown write policy {self.write_policy!r}")

    @property
    def num_lines(self) -> int:
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    def label(self) -> str:
        size = (f"{self.size // 1024}K" if self.size >= 1024
                else f"{self.size}B")
        return f"{size}/{self.line_size}B/{self.associativity}w"


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0
    writebacks: int = 0
    write_throughs: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate

    def merge(self, other: "CacheStats") -> None:
        self.accesses += other.accesses
        self.hits += other.hits
        self.misses += other.misses
        self.writebacks += other.writebacks
        self.write_throughs += other.write_throughs


class Cache:
    """A simulated cache; feed it addresses, read out statistics."""

    def __init__(self, config: CacheConfig, rng_seed: int = 0):
        self.config = config
        self.stats = CacheStats()
        # Per set: list of tags, most-recently-used last (for LRU) or
        # insertion order (FIFO).  Dirty tags tracked for write-back.
        self._sets = [[] for _ in range(config.num_sets)]
        self._dirty = [set() for _ in range(config.num_sets)]
        self._rng = random.Random(rng_seed)
        self._offset_bits = config.line_size.bit_length() - 1
        self._set_mask = config.num_sets - 1

    # ------------------------------------------------------------------
    def access(self, addr: int, write: bool = False) -> bool:
        """One reference; returns True on a hit."""
        stats = self.stats
        stats.accesses += 1
        line = addr >> self._offset_bits
        index = line & self._set_mask
        tag = line >> (self._set_mask.bit_length())
        ways = self._sets[index]
        config = self.config

        if tag in ways:
            stats.hits += 1
            if config.policy == POLICY_LRU:
                ways.remove(tag)
                ways.append(tag)
            if write:
                if config.write_policy == WRITE_BACK:
                    self._dirty[index].add(tag)
                else:
                    stats.write_throughs += 1
            return True

        stats.misses += 1
        if write:
            if config.write_policy == WRITE_THROUGH:
                stats.write_throughs += 1
            if not config.write_allocate:
                return False
        self._insert(index, tag, dirty=write and config.write_policy == WRITE_BACK)
        return False

    def _insert(self, index: int, tag: int, dirty: bool) -> None:
        ways = self._sets[index]
        if len(ways) >= self.config.associativity:
            if self.config.policy == POLICY_RANDOM:
                victim = ways.pop(self._rng.randrange(len(ways)))
            else:
                victim = ways.pop(0)  # LRU and FIFO both evict the head
            if victim in self._dirty[index]:
                self._dirty[index].discard(victim)
                self.stats.writebacks += 1
        ways.append(tag)
        if dirty:
            self._dirty[index].add(tag)

    # ------------------------------------------------------------------
    def run(self, addresses, writes: Optional[np.ndarray] = None) -> CacheStats:
        """Feed a whole trace (optimised loop); returns the stats."""
        config = self.config
        if (config.policy == POLICY_LRU and config.write_policy == WRITE_THROUGH
                and writes is None):
            self._run_lru_read(addresses)
            return self.stats
        if writes is None:
            for addr in addresses:
                self.access(int(addr))
        else:
            for addr, is_write in zip(addresses, writes):
                self.access(int(addr), bool(is_write))
        return self.stats

    def _run_lru_read(self, addresses) -> None:
        """Hot path: LRU, reads only (the paper's configuration)."""
        offset_bits = self._offset_bits
        set_mask = self._set_mask
        tag_shift = set_mask.bit_length()
        sets = self._sets
        assoc = self.config.associativity
        hits = 0
        misses = 0
        for addr in addresses:
            line = int(addr) >> offset_bits
            ways = sets[line & set_mask]
            tag = line >> tag_shift
            if tag in ways:
                hits += 1
                if ways[-1] != tag:
                    ways.remove(tag)
                    ways.append(tag)
            else:
                misses += 1
                if len(ways) >= assoc:
                    ways.pop(0)
                ways.append(tag)
        self.stats.accesses += hits + misses
        self.stats.hits += hits
        self.stats.misses += misses

    def flush_dirty(self) -> int:
        """Write back every dirty line; returns the count."""
        count = sum(len(d) for d in self._dirty)
        self.stats.writebacks += count
        for d in self._dirty:
            d.clear()
        return count

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)
