"""Single-pass multi-associativity LRU simulation.

For a fixed (line size, set count), LRU set-associative caches obey the
stack property: a reference that hits in an ``a``-way cache also hits
in every cache of higher associativity with the same sets.  Keeping one
LRU stack per set and recording the stack depth of each hit therefore
yields, in one pass over the trace, the miss count of *every*
associativity — i.e. a whole diagonal of the paper's 56-configuration
grid at once.  Results are validated against the reference simulator in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .kernels import as_chunk_iter as _as_chunk_iter


def to_line_addresses(addresses: np.ndarray, line_size: int) -> np.ndarray:
    """Convert byte addresses to line numbers."""
    shift = line_size.bit_length() - 1
    return (np.asarray(addresses, dtype=np.uint32) >> shift).astype(np.uint32)


def collapse_consecutive(line_addrs: np.ndarray) -> Tuple[np.ndarray, int]:
    """Drop immediately-repeated line references.

    A reference to the line just touched hits in every cache with that
    line size, so only transitions need simulating.  Returns the
    collapsed array and the number of guaranteed hits removed.
    """
    if len(line_addrs) == 0:
        return line_addrs, 0
    keep = np.empty(len(line_addrs), dtype=bool)
    keep[0] = True
    np.not_equal(line_addrs[1:], line_addrs[:-1], out=keep[1:])
    collapsed = line_addrs[keep]
    return collapsed, int(len(line_addrs) - len(collapsed))


def lru_depth_histogram(line_addrs: np.ndarray, num_sets: int,
                        max_depth: int) -> Tuple[np.ndarray, int]:
    """One pass of per-set LRU stacks.

    Returns ``(hist, cold)`` where ``hist[d]`` counts hits at stack
    depth ``d`` (0 = most recently used) for depths below ``max_depth``
    and ``cold`` counts references that missed at every depth
    (capacity beyond ``max_depth`` ways, or compulsory).
    """
    set_mask = num_sets - 1
    tag_shift = num_sets.bit_length() - 1
    stacks: Dict[int, list] = {s: [] for s in range(num_sets)}
    hist = np.zeros(max_depth, dtype=np.int64)
    cold = 0
    for line in line_addrs:
        line = int(line)
        stack = stacks[line & set_mask]
        tag = line >> tag_shift
        try:
            depth = stack.index(tag)
        except ValueError:
            depth = -1
        if 0 <= depth < max_depth:
            hist[depth] += 1
            del stack[depth]
        else:
            cold += 1
            if depth >= 0:
                del stack[depth]
            if len(stack) >= max_depth:
                stack.pop()
        stack.insert(0, tag)
    return hist, cold


@dataclass
class FamilyStats:
    """One associativity's results from :func:`lru_family_stats`.

    ``writebacks`` is the eviction-of-dirty-line count a write-back
    cache of this shape would report; ``write_throughs`` the count a
    write-through cache would (every write, hit or miss).  Hit/miss
    behaviour is identical for the two policies under write-allocate,
    so a single pass yields both interpretations.
    """

    accesses: int
    hits: int
    misses: int
    writebacks: int
    write_throughs: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


def lru_family_stats(line_addrs: np.ndarray,
                     writes: Optional[np.ndarray],
                     num_sets: int,
                     associativities: Sequence[int],
                     ) -> Dict[int, "FamilyStats"]:
    """One stack pass over a read/write trace for a whole LRU family.

    Extends the stack property to write counters: each stack entry
    carries a dirty *bitmask* with one bit per requested associativity.
    A write marks the entry dirty in every cache that currently holds
    the line (hit at depth ``d`` ⇒ every ``a > d``; a miss allocates
    dirty everywhere).  When an entry is pushed from depth ``a - 1`` to
    ``a`` it leaves the ``a``-way cache — if its bit for ``a`` is set
    that is exactly one write-back, and the bit is cleared.  Because
    depth only grows between touches, a popped entry's mask is already
    clean.  Requires write-allocate (a non-allocating write miss breaks
    inclusion between associativities).  Matches the reference
    simulator's stats byte for byte; see the differential tests.

    ``line_addrs`` may also be a chunk iterator — a generator (or list)
    of line-address arrays or ``(line_addrs, writes)`` pairs, streamed
    with the per-set stacks carried across chunk boundaries (the
    out-of-core family pass); ``writes`` must then be ``None``.
    """
    assocs = sorted(set(int(a) for a in associativities))
    max_assoc = assocs[-1]
    set_mask = num_sets - 1
    tag_shift = num_sets.bit_length() - 1
    tag_stacks: Dict[int, list] = {s: [] for s in range(num_sets)}
    mask_stacks: Dict[int, list] = {s: [] for s in range(num_sets)}
    hist = np.zeros(max_assoc, dtype=np.int64)
    writebacks = {a: 0 for a in assocs}
    n = 0
    total_writes = 0

    def feed(line_addrs, writes) -> int:
        nonlocal total_writes
        count = len(line_addrs)
        if writes is not None:
            total_writes += int(np.count_nonzero(writes))
        w = False
        for i in range(count):
            line = int(line_addrs[i])
            if writes is not None:
                w = bool(writes[i])
            s = line & set_mask
            tag = line >> tag_shift
            tags = tag_stacks[s]
            masks = mask_stacks[s]
            try:
                d = tags.index(tag)
            except ValueError:
                d = -1
            if d >= 0:
                mask = masks[d]
                del tags[d]
                del masks[d]
                hist[d] += 1
            else:
                mask = 0
            for j, a in enumerate(assocs):
                bit = 1 << j
                if d < 0 or d >= a:
                    # Miss in the a-way cache: the insert pushes the
                    # entry now at depth a-1 across the boundary,
                    # evicting it.
                    if len(tags) >= a and masks[a - 1] & bit:
                        writebacks[a] += 1
                        masks[a - 1] &= ~bit
                    if w:
                        mask |= bit   # dirty allocate (write-allocate)
                elif w:
                    mask |= bit       # write hit
            tags.insert(0, tag)
            masks.insert(0, mask)
            if len(tags) > max_assoc:
                tags.pop()
                masks.pop()
        return count

    chunk_iter = _as_chunk_iter(line_addrs)
    if chunk_iter is not None:
        if writes is not None:
            raise ValueError(
                "with a chunk iterator, pass writes inside each chunk "
                "as (line_addrs, writes) pairs")
        for chunk in chunk_iter:
            if isinstance(chunk, tuple):
                n += feed(np.asarray(chunk[0]), chunk[1])
            else:
                n += feed(np.asarray(chunk), None)
    else:
        n = feed(line_addrs, writes)
    out = {}
    for a in assocs:
        hits = int(hist[:a].sum())
        out[a] = FamilyStats(accesses=n, hits=hits, misses=n - hits,
                             writebacks=writebacks[a],
                             write_throughs=total_writes)
    return out


def misses_by_associativity(line_addrs: np.ndarray, num_sets: int,
                            associativities: Sequence[int]) -> Dict[int, int]:
    """Miss counts for several associativities in one pass.

    All requested associativities share (line size, set count); the
    total cache size is ``num_sets * line_size * assoc``.
    """
    max_assoc = max(associativities)
    hist, cold = lru_depth_histogram(line_addrs, num_sets, max_assoc)
    total = len(line_addrs)
    out = {}
    for assoc in associativities:
        hits = int(hist[:assoc].sum())
        out[assoc] = total - hits
    assert all(cold <= m for m in out.values())
    return out
