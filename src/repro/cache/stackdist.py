"""Single-pass multi-associativity LRU simulation.

For a fixed (line size, set count), LRU set-associative caches obey the
stack property: a reference that hits in an ``a``-way cache also hits
in every cache of higher associativity with the same sets.  Keeping one
LRU stack per set and recording the stack depth of each hit therefore
yields, in one pass over the trace, the miss count of *every*
associativity — i.e. a whole diagonal of the paper's 56-configuration
grid at once.  Results are validated against the reference simulator in
the test suite.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


def to_line_addresses(addresses: np.ndarray, line_size: int) -> np.ndarray:
    """Convert byte addresses to line numbers."""
    shift = line_size.bit_length() - 1
    return (np.asarray(addresses, dtype=np.uint32) >> shift).astype(np.uint32)


def collapse_consecutive(line_addrs: np.ndarray) -> Tuple[np.ndarray, int]:
    """Drop immediately-repeated line references.

    A reference to the line just touched hits in every cache with that
    line size, so only transitions need simulating.  Returns the
    collapsed array and the number of guaranteed hits removed.
    """
    if len(line_addrs) == 0:
        return line_addrs, 0
    keep = np.empty(len(line_addrs), dtype=bool)
    keep[0] = True
    np.not_equal(line_addrs[1:], line_addrs[:-1], out=keep[1:])
    collapsed = line_addrs[keep]
    return collapsed, int(len(line_addrs) - len(collapsed))


def lru_depth_histogram(line_addrs: np.ndarray, num_sets: int,
                        max_depth: int) -> Tuple[np.ndarray, int]:
    """One pass of per-set LRU stacks.

    Returns ``(hist, cold)`` where ``hist[d]`` counts hits at stack
    depth ``d`` (0 = most recently used) for depths below ``max_depth``
    and ``cold`` counts references that missed at every depth
    (capacity beyond ``max_depth`` ways, or compulsory).
    """
    set_mask = num_sets - 1
    tag_shift = num_sets.bit_length() - 1
    stacks: Dict[int, list] = {s: [] for s in range(num_sets)}
    hist = np.zeros(max_depth, dtype=np.int64)
    cold = 0
    for line in line_addrs:
        line = int(line)
        stack = stacks[line & set_mask]
        tag = line >> tag_shift
        try:
            depth = stack.index(tag)
        except ValueError:
            depth = -1
        if 0 <= depth < max_depth:
            hist[depth] += 1
            del stack[depth]
        else:
            cold += 1
            if depth >= 0:
                del stack[depth]
            if len(stack) >= max_depth:
                stack.pop()
        stack.insert(0, tag)
    return hist, cold


def misses_by_associativity(line_addrs: np.ndarray, num_sets: int,
                            associativities: Sequence[int]) -> Dict[int, int]:
    """Miss counts for several associativities in one pass.

    All requested associativities share (line size, set count); the
    total cache size is ``num_sets * line_size * assoc``.
    """
    max_assoc = max(associativities)
    hist, cold = lru_depth_histogram(line_addrs, num_sets, max_assoc)
    total = len(line_addrs)
    out = {}
    for assoc in associativities:
        hits = int(hist[:assoc].sum())
        out[assoc] = total - hits
    assert all(cold <= m for m in out.values())
    return out
