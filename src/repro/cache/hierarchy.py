"""The memory-hierarchy timing model: the paper's Equations 1–3.

The Palm m515 has both RAM (one cycle per access) and flash (three
cycles); with no cache the average effective memory access time is
dominated by the flash share of references (§4.2, Equation 3).  Adding
a cache turns most of both into one-cycle hits (Equation 2).
"""

from __future__ import annotations

from dataclasses import dataclass

#: CPU cycles (§4.2): cache hit service time and per-region miss costs.
T_HIT = 1
T_RAM_MISS = 1
T_FLASH_MISS = 3


def effective_access_time_eq1(miss_rate: float, t_miss: float,
                              t_hit: float = T_HIT) -> float:
    """Equation 1: ``Teff = Thit + MR * Tmiss``."""
    return t_hit + miss_rate * t_miss


def effective_access_time(miss_rate: float, ram_refs: int, flash_refs: int,
                          t_hit: float = T_HIT,
                          t_ram_miss: float = T_RAM_MISS,
                          t_flash_miss: float = T_FLASH_MISS) -> float:
    """Equation 2: the Palm OS two-backing-store form.

    ``Teff = Thit + (REFram/REFtotal) MR Tram + (REFflash/REFtotal) MR Tflash``
    """
    total = ram_refs + flash_refs
    if total == 0:
        return t_hit
    ram_fraction = ram_refs / total
    flash_fraction = flash_refs / total
    return t_hit + miss_rate * (ram_fraction * t_ram_miss
                                + flash_fraction * t_flash_miss)


def no_cache_access_time(ram_refs: int, flash_refs: int,
                         t_ram: float = T_RAM_MISS,
                         t_flash: float = T_FLASH_MISS) -> float:
    """Equation 3: the cacheless baseline (Table 1's "Ave Mem Cyc")."""
    total = ram_refs + flash_refs
    if total == 0:
        return 0.0
    return (ram_refs * t_ram + flash_refs * t_flash) / total


@dataclass(frozen=True)
class RegionMix:
    """RAM/flash reference composition of a trace."""

    ram_refs: int
    flash_refs: int

    @property
    def total(self) -> int:
        return self.ram_refs + self.flash_refs

    @property
    def flash_fraction(self) -> float:
        return self.flash_refs / self.total if self.total else 0.0

    def no_cache_time(self) -> float:
        return no_cache_access_time(self.ram_refs, self.flash_refs)

    def cached_time(self, miss_rate: float) -> float:
        return effective_access_time(miss_rate, self.ram_refs,
                                     self.flash_refs)

    def reduction(self, miss_rate: float) -> float:
        """Fractional Teff reduction a cache with ``miss_rate`` buys."""
        base = self.no_cache_time()
        if base == 0:
            return 0.0
        return 1.0 - self.cached_time(miss_rate) / base
