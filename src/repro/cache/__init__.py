"""The cache simulator and memory-hierarchy model (the §4 case study)."""

from .cache import (
    Cache,
    CacheConfig,
    CacheStats,
    POLICY_FIFO,
    POLICY_LRU,
    POLICY_RANDOM,
    WRITE_BACK,
    WRITE_THROUGH,
)
from .hierarchy import (
    RegionMix,
    T_FLASH_MISS,
    T_HIT,
    T_RAM_MISS,
    effective_access_time,
    effective_access_time_eq1,
    no_cache_access_time,
)
from .stackdist import (
    collapse_consecutive,
    lru_depth_histogram,
    misses_by_associativity,
    to_line_addresses,
)
from .sampling import (
    SampleEstimate,
    estimate_miss_rate,
    full_miss_rate,
    sample_intervals,
    sampling_error_study,
)
from .writebuffer import (
    WriteBuffer,
    WriteBufferResult,
    simulate_with_write_buffer,
)
from .sweep import (
    PAPER_ASSOCIATIVITIES,
    PAPER_LINE_SIZES,
    PAPER_SIZES,
    SweepPoint,
    grid_by_config,
    paper_configurations,
    subsample_trace,
    sweep_paper_grid,
    sweep_reference,
)

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "POLICY_LRU",
    "POLICY_FIFO",
    "POLICY_RANDOM",
    "WRITE_THROUGH",
    "WRITE_BACK",
    "RegionMix",
    "T_HIT",
    "T_RAM_MISS",
    "T_FLASH_MISS",
    "effective_access_time",
    "effective_access_time_eq1",
    "no_cache_access_time",
    "to_line_addresses",
    "collapse_consecutive",
    "lru_depth_histogram",
    "misses_by_associativity",
    "PAPER_SIZES",
    "PAPER_LINE_SIZES",
    "PAPER_ASSOCIATIVITIES",
    "SweepPoint",
    "SampleEstimate",
    "estimate_miss_rate",
    "full_miss_rate",
    "sample_intervals",
    "sampling_error_study",
    "paper_configurations",
    "sweep_paper_grid",
    "sweep_reference",
    "grid_by_config",
    "subsample_trace",
    "WriteBuffer",
    "WriteBufferResult",
    "simulate_with_write_buffer",
]
