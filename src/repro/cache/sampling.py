"""Trace sampling and the cold-start problem.

The paper's lineage leans on two of its references here: Wood, Hill &
Kessler, "A model for estimating trace-sample miss ratios" [24], and
Flanagan et al., "Incomplete trace data and trace driven simulation"
[6].  When a full trace is too large to simulate, one simulates sampled
intervals instead — and each interval starts with a cold cache, biasing
the measured miss ratio upward.

This module implements interval sampling with three classic cold-start
treatments so the bias can be measured against this repository's full
traces (the ablation benchmark does exactly that):

* ``cold``     — count every miss (the naive, upward-biased estimate);
* ``discard``  — warm the cache on a prefix of each interval and count
  only the remainder (warm-up discard);
* ``continuous`` — carry cache state across intervals (lower bound;
  only the skipped gaps bias the result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal

import numpy as np

from .cache import Cache, CacheConfig

WarmupPolicy = Literal["cold", "discard", "continuous"]


@dataclass
class SampleEstimate:
    """A sampled miss-ratio estimate and its ground-truth context."""

    config: CacheConfig
    policy: str
    sampled_refs: int
    measured_misses: int
    estimated_miss_rate: float


def sample_intervals(length: int, num_samples: int,
                     sample_length: int) -> List[slice]:
    """Evenly spaced interval slices over a trace of ``length``."""
    if num_samples * sample_length >= length:
        return [slice(0, length)]
    stride = length // num_samples
    return [slice(i * stride, i * stride + sample_length)
            for i in range(num_samples)]


def estimate_miss_rate(addresses: np.ndarray, config: CacheConfig,
                       num_samples: int = 10, sample_length: int = 50_000,
                       policy: WarmupPolicy = "discard",
                       warmup_fraction: float = 0.3) -> SampleEstimate:
    """Estimate a cache's miss rate from sampled trace intervals."""
    intervals = sample_intervals(len(addresses), num_samples, sample_length)
    cache = Cache(config)
    misses = 0
    counted = 0
    for interval in intervals:
        chunk = addresses[interval]
        if policy == "cold":
            cache = Cache(config)
            before = cache.stats.misses
            cache.run(chunk)
            misses += cache.stats.misses - before
            counted += len(chunk)
        elif policy == "discard":
            cache = Cache(config)
            warm = int(len(chunk) * warmup_fraction)
            cache.run(chunk[:warm])
            before = cache.stats.misses
            cache.run(chunk[warm:])
            misses += cache.stats.misses - before
            counted += len(chunk) - warm
        else:  # continuous: keep state across the gaps
            before = cache.stats.misses
            cache.run(chunk)
            misses += cache.stats.misses - before
            counted += len(chunk)
    rate = misses / counted if counted else 0.0
    return SampleEstimate(config=config, policy=policy,
                          sampled_refs=counted, measured_misses=misses,
                          estimated_miss_rate=rate)


def full_miss_rate(addresses: np.ndarray, config: CacheConfig) -> float:
    """Ground truth: simulate the entire trace."""
    cache = Cache(config)
    cache.run(addresses)
    return cache.stats.miss_rate


def sampling_error_study(addresses: np.ndarray, config: CacheConfig,
                         num_samples: int = 10,
                         sample_length: int = 50_000) -> dict:
    """Compare every cold-start policy against the full-trace truth.

    Returns ``{"full": rate, "cold": (rate, rel_err), ...}`` where
    ``rel_err`` is the signed relative error of each estimate.
    """
    truth = full_miss_rate(addresses, config)
    out = {"full": truth}
    for policy in ("cold", "discard", "continuous"):
        estimate = estimate_miss_rate(addresses, config,
                                      num_samples=num_samples,
                                      sample_length=sample_length,
                                      policy=policy)
        error = ((estimate.estimated_miss_rate - truth) / truth
                 if truth else 0.0)
        out[policy] = (estimate.estimated_miss_rate, error)
    return out
