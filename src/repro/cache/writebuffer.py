"""Write-buffer modeling.

The paper's Teff equations treat every reference alike; real
write-through caches of the era paired the cache with a small FIFO
*write buffer* so stores retire at cache speed unless the buffer backs
up.  This extension estimates the stall contribution of stores so the
write-through/write-back ablation can be expressed in cycles, not just
memory-write counts.

Model: stores enter a ``depth``-entry FIFO; one buffered write drains
to memory every ``drain_cycles`` (the backing store's write cost,
region-dependent in principle but RAM in practice — Palm OS code does
not write flash).  A store finding the buffer full stalls the CPU until
a slot frees; loads that miss must drain the buffer first (the simple,
conservative memory-ordering model of the era).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cache import Cache, CacheConfig


@dataclass
class WriteBufferStats:
    stores: int = 0
    store_stall_cycles: int = 0
    miss_drain_cycles: int = 0

    @property
    def total_stall_cycles(self) -> int:
        return self.store_stall_cycles + self.miss_drain_cycles


class WriteBuffer:
    """A FIFO write buffer in front of RAM, tracked in cycle time."""

    def __init__(self, depth: int = 4, drain_cycles: int = 1):
        self.depth = depth
        self.drain_cycles = drain_cycles
        self.stats = WriteBufferStats()
        self._occupancy = 0
        self._last_time = 0  # cycle timestamp of the previous event

    def _drain_until(self, now: int) -> None:
        elapsed = max(0, now - self._last_time)
        drained = elapsed // self.drain_cycles
        self._occupancy = max(0, self._occupancy - drained)
        self._last_time = now

    def store(self, now: int) -> int:
        """A store enters the buffer at cycle ``now``; returns the
        stall cycles it cost the CPU."""
        self._drain_until(now)
        self.stats.stores += 1
        stall = 0
        if self._occupancy >= self.depth:
            # Wait for one slot to free.
            stall = self.drain_cycles
            self._occupancy -= 1
        self._occupancy += 1
        self.stats.store_stall_cycles += stall
        return stall

    def drain_for_miss(self, now: int) -> int:
        """A load miss must flush pending writes first (conservative
        ordering); returns the stall cycles."""
        self._drain_until(now)
        stall = self._occupancy * self.drain_cycles
        self.stats.miss_drain_cycles += stall
        self._occupancy = 0
        self._last_time = now + stall
        return stall


@dataclass
class WriteBufferResult:
    """Cycle accounting of a cache + write buffer over a trace."""

    accesses: int
    misses: int
    base_cycles: int        # hit/miss service time, Equation 2 style
    stall_cycles: int       # added by the write buffer

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def cycles_per_access(self) -> float:
        if not self.accesses:
            return 0.0
        return (self.base_cycles + self.stall_cycles) / self.accesses


def simulate_with_write_buffer(addresses: np.ndarray, writes: np.ndarray,
                               regions: np.ndarray, config: CacheConfig,
                               depth: int = 4,
                               t_hit: int = 1, t_ram_miss: int = 1,
                               t_flash_miss: int = 3) -> WriteBufferResult:
    """Run a trace through a write-through cache + write buffer,
    accounting cycles.

    ``regions``: 0 = RAM, anything else costs like flash on a miss.
    """
    cache = Cache(config)
    buffer = WriteBuffer(depth=depth, drain_cycles=t_ram_miss)
    now = 0
    base = 0
    stall = 0
    for addr, is_write, region in zip(addresses, writes, regions):
        hit = cache.access(int(addr), bool(is_write))
        base += t_hit
        if is_write:
            stall += buffer.store(now)
        elif not hit:
            stall += buffer.drain_for_miss(now)
        if not hit:
            base += t_ram_miss if region == 0 else t_flash_miss
        now = base + stall
    return WriteBufferResult(accesses=cache.stats.accesses,
                             misses=cache.stats.misses,
                             base_cycles=base, stall_cycles=stall)
