"""Configuration sweeps: the paper's 56-cache-configuration study.

§4.2: "We simulated 56 different cache configurations by varying the
cache size, line size and associativity.  The LRU replacement policy
was used in every configuration."  The grid is seven sizes (1–64 KB) x
two line sizes (16/32 B) x four associativities (1/2/4/8), and the
sweep exploits the LRU stack property to simulate each
(line size, set count) family in a single pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .cache import Cache, CacheConfig
from .hierarchy import RegionMix
from .stackdist import collapse_consecutive, misses_by_associativity, to_line_addresses

PAPER_SIZES = [1024 << i for i in range(7)]       # 1 KB .. 64 KB
PAPER_LINE_SIZES = [16, 32]
PAPER_ASSOCIATIVITIES = [1, 2, 4, 8]


def paper_configurations() -> List[CacheConfig]:
    """The 56 configurations of Figures 5 and 6."""
    return [
        CacheConfig(size=size, line_size=line, associativity=assoc)
        for line in PAPER_LINE_SIZES
        for size in PAPER_SIZES
        for assoc in PAPER_ASSOCIATIVITIES
    ]


@dataclass
class SweepPoint:
    """One configuration's results."""

    config: CacheConfig
    accesses: int
    misses: int

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def effective_access_time(self, mix: RegionMix) -> float:
        return mix.cached_time(self.miss_rate)


def sweep_reference(addresses: np.ndarray,
                    configs: Sequence[CacheConfig]) -> List[SweepPoint]:
    """Simulate each configuration independently (slow, trusted)."""
    points = []
    for config in configs:
        cache = Cache(config)
        stats = cache.run(addresses)
        points.append(SweepPoint(config, stats.accesses, stats.misses))
    return points


def sweep_paper_grid(addresses: np.ndarray,
                     sizes: Sequence[int] = PAPER_SIZES,
                     line_sizes: Sequence[int] = PAPER_LINE_SIZES,
                     associativities: Sequence[int] = PAPER_ASSOCIATIVITIES,
                     ) -> List[SweepPoint]:
    """All size x line x associativity LRU configurations, fast.

    Configurations sharing (line size, set count) are simulated in one
    stack pass; consecutive same-line references are collapsed first
    (they hit in any cache of that line size).
    """
    addresses = np.asarray(addresses, dtype=np.uint32)
    total_refs = len(addresses)
    points: List[SweepPoint] = []
    for line in line_sizes:
        line_addrs = to_line_addresses(addresses, line)
        collapsed, _guaranteed_hits = collapse_consecutive(line_addrs)
        # Group the grid by set count.
        by_sets: Dict[int, List[CacheConfig]] = {}
        for size in sizes:
            for assoc in associativities:
                if size < line * assoc:
                    continue
                config = CacheConfig(size=size, line_size=line,
                                     associativity=assoc)
                by_sets.setdefault(config.num_sets, []).append(config)
        for num_sets, family in sorted(by_sets.items()):
            assocs = sorted({c.associativity for c in family})
            misses = misses_by_associativity(collapsed, num_sets, assocs)
            for config in family:
                points.append(SweepPoint(
                    config=config,
                    accesses=total_refs,
                    misses=misses[config.associativity],
                ))
    points.sort(key=lambda p: (p.config.line_size, p.config.size,
                               p.config.associativity))
    return points


def grid_by_config(points: Sequence[SweepPoint]) -> Dict[tuple, SweepPoint]:
    return {(p.config.size, p.config.line_size, p.config.associativity): p
            for p in points}


def subsample_trace(addresses: np.ndarray, limit: int,
                    seed: Optional[int] = None) -> np.ndarray:
    """Truncate a trace for quick sweeps (contiguous prefix keeps the
    locality structure intact, unlike random sampling)."""
    if len(addresses) <= limit:
        return addresses
    if seed is None:
        return addresses[:limit]
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, len(addresses) - limit))
    return addresses[start:start + limit]
