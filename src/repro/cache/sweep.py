"""Configuration sweeps: the paper's 56-cache-configuration study.

§4.2: "We simulated 56 different cache configurations by varying the
cache size, line size and associativity.  The LRU replacement policy
was used in every configuration."  The grid is seven sizes (1–64 KB) x
two line sizes (16/32 B) x four associativities (1/2/4/8), and the
sweep exploits the LRU stack property to simulate each
(line size, set count) family in a single pass.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .cache import Cache, CacheConfig
from .hierarchy import RegionMix
from .stackdist import collapse_consecutive, misses_by_associativity, to_line_addresses

PAPER_SIZES = [1024 << i for i in range(7)]       # 1 KB .. 64 KB
PAPER_LINE_SIZES = [16, 32]
PAPER_ASSOCIATIVITIES = [1, 2, 4, 8]


def paper_configurations() -> List[CacheConfig]:
    """The 56 configurations of Figures 5 and 6."""
    return [
        CacheConfig(size=size, line_size=line, associativity=assoc)
        for line in PAPER_LINE_SIZES
        for size in PAPER_SIZES
        for assoc in PAPER_ASSOCIATIVITIES
    ]


@dataclass
class SweepPoint:
    """One configuration's results.

    ``writebacks``/``write_throughs`` stay zero for the read-only grid
    passes and are filled by the write-aware sweeps.
    """

    config: CacheConfig
    accesses: int
    misses: int
    writebacks: int = 0
    write_throughs: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def effective_access_time(self, mix: RegionMix) -> float:
        return mix.cached_time(self.miss_rate)


def sweep_reference(addresses: np.ndarray,
                    configs: Sequence[CacheConfig]) -> List[SweepPoint]:
    """Simulate each configuration independently (slow, trusted)."""
    points = []
    for config in configs:
        cache = Cache(config)
        stats = cache.run(addresses)
        points.append(SweepPoint(config, stats.accesses, stats.misses))
    return points


def sweep_paper_grid(addresses: np.ndarray,
                     sizes: Sequence[int] = PAPER_SIZES,
                     line_sizes: Sequence[int] = PAPER_LINE_SIZES,
                     associativities: Sequence[int] = PAPER_ASSOCIATIVITIES,
                     ) -> List[SweepPoint]:
    """All size x line x associativity LRU configurations, fast.

    Configurations sharing (line size, set count) are simulated in one
    stack pass; consecutive same-line references are collapsed first
    (they hit in any cache of that line size).
    """
    addresses = np.asarray(addresses, dtype=np.uint32)
    total_refs = len(addresses)
    points: List[SweepPoint] = []
    for line in line_sizes:
        line_addrs = to_line_addresses(addresses, line)
        collapsed, _guaranteed_hits = collapse_consecutive(line_addrs)
        # Group the grid by set count.
        by_sets: Dict[int, List[CacheConfig]] = {}
        for size in sizes:
            for assoc in associativities:
                if size < line * assoc:
                    continue
                config = CacheConfig(size=size, line_size=line,
                                     associativity=assoc)
                by_sets.setdefault(config.num_sets, []).append(config)
        for num_sets, family in sorted(by_sets.items()):
            assocs = sorted({c.associativity for c in family})
            misses = misses_by_associativity(collapsed, num_sets, assocs)
            for config in family:
                points.append(SweepPoint(
                    config=config,
                    accesses=total_refs,
                    misses=misses[config.associativity],
                ))
    points.sort(key=lambda p: (p.config.line_size, p.config.size,
                               p.config.associativity))
    return points


# ----------------------------------------------------------------------
# Parallel sweep engine
# ----------------------------------------------------------------------
#
# The trace is placed in a ``multiprocessing.shared_memory`` segment
# once; forked workers attach read-only numpy views instead of
# receiving pickled copies.  Work units are either whole (line size,
# set count) families of the paper grid (one stack pass each, via the
# vectorized kernels) or individual ablation configurations.  Results
# are keyed by unit index, so assembly order — and therefore the
# returned list — is identical for any job count, including the serial
# fallback.

#: Worker-side views of the shared trace, set by :func:`_pool_init`.
_SHARED: dict = {}

#: First element of a worker's in-band error report (see :func:`_guard`).
_ERROR_SENTINEL = "__sweep-worker-error__"


class SweepWorkerError(RuntimeError):
    """A sweep worker failed: it raised, was killed, or exceeded the
    per-chunk timeout.

    Deliberately a ``RuntimeError``: the serial fallback in
    :func:`_run_units` swallows ``ValueError`` (shared-memory setup
    failures), and a worker's *computation* failing must never be
    mistaken for the *fan-out machinery* being unavailable.
    """


def _guard(fn, unit):
    """Run one work unit, converting any failure into an in-band error
    report instead of letting it propagate through the pool.

    A raw exception crossing the pool boundary aborts ``Pool.map``
    wholesale and (for exotic exception types) can fail to unpickle;
    the sentinel tuple always travels, and the parent re-raises it as
    a typed :class:`SweepWorkerError` naming the unit.
    """
    try:
        return fn(unit)
    except KeyboardInterrupt:
        raise
    except BaseException as exc:  # noqa: BLE001 - report crosses a process
        return (_ERROR_SENTINEL, type(exc).__name__, str(exc),
                traceback.format_exc(limit=6))


def _check_result(result, unit) -> object:
    if (isinstance(result, tuple) and len(result) == 4
            and result[0] == _ERROR_SENTINEL):
        _, name, message, trace = result
        raise SweepWorkerError(
            f"sweep worker failed on unit {unit!r}: {name}: {message}\n"
            f"{trace}")
    return result


def _pool_init_container(container_path: str, memory_only: bool) -> None:
    """Worker init for the by-chunk sharding mode: no shared memory at
    all — each worker streams chunks straight from the PTRC container
    (or archive) on disk, so its resident footprint is one decode
    window regardless of trace size."""
    _SHARED.update(container=container_path, memory_only=memory_only,
                   addresses=None, writes=None, segments=())


def _pool_init(shm_name: str, n: int, dtype: str,
               writes_shm_name: Optional[str]) -> None:
    from multiprocessing import shared_memory

    # Workers are forked, so they share the parent's resource tracker:
    # attaching re-registers the same name idempotently and the
    # parent's unlink cleans it up exactly once.
    shm = shared_memory.SharedMemory(name=shm_name)
    addresses = np.ndarray((n,), dtype=np.dtype(dtype), buffer=shm.buf)
    writes = None
    wshm = None
    if writes_shm_name is not None:
        wshm = shared_memory.SharedMemory(name=writes_shm_name)
        writes = np.ndarray((n,), dtype=bool, buffer=wshm.buf)
    # Keep the SharedMemory objects alive for the worker's lifetime;
    # dropping them would invalidate the views.
    _SHARED.update(addresses=addresses, writes=writes,
                   segments=(shm, wshm))


def _family_unit_impl(unit: Tuple[int, int, Tuple[int, ...]]):
    """Paper-grid unit: one (line size, set count) family, all
    associativities in a single vectorized stack pass.  In container
    mode the pass streams chunk by chunk (bounded memory) and returns
    ``(total_refs, misses)`` — the parent cannot know the post-filter
    reference count without decoding the trace itself."""
    from . import kernels

    line, num_sets, assocs = unit
    container = _SHARED.get("container")
    if container is not None:
        from ..traces.container import open_chunk_source

        src = open_chunk_source(container)
        total = 0
        try:
            def line_chunks():
                nonlocal total
                for addrs, _writes in src.cache_chunks(
                        memory_only=_SHARED["memory_only"]):
                    total += len(addrs)
                    yield to_line_addresses(addrs, line)

            misses = kernels.kernel_misses_by_associativity(
                line_chunks(), num_sets, list(assocs))
        finally:
            if hasattr(src, "close"):
                src.close()
        return (total, misses)
    line_addrs = to_line_addresses(_SHARED["addresses"], line)
    return kernels.kernel_misses_by_associativity(line_addrs, num_sets,
                                                  list(assocs))


def _config_unit_impl(config: CacheConfig) -> Tuple[int, int, int, int]:
    """Ablation unit: one full configuration (any policy) through the
    kernels, with the scalar simulator as automatic fallback."""
    from . import kernels

    container = _SHARED.get("container")
    if container is not None:
        from ..traces.container import open_chunk_source

        src = open_chunk_source(container)
        try:
            stats = kernels.simulate_auto(
                src.cache_chunks(memory_only=_SHARED["memory_only"]),
                config)
        finally:
            if hasattr(src, "close"):
                src.close()
    else:
        stats = kernels.simulate_auto(_SHARED["addresses"], config,
                                      writes=_SHARED["writes"])
    return (stats.accesses, stats.misses, stats.writebacks,
            stats.write_throughs)


def _family_unit(unit):
    return _guard(_family_unit_impl, unit)


def _config_unit(config):
    return _guard(_config_unit_impl, config)


def _grid_units(sizes, line_sizes, associativities):
    """The (line, num_sets) families of the grid, largest first (better
    load balance: big families take longest), plus the config list each
    family covers."""
    units = []
    for line in line_sizes:
        by_sets: Dict[int, List[CacheConfig]] = {}
        for size in sizes:
            for assoc in associativities:
                if size < line * assoc:
                    continue
                config = CacheConfig(size=size, line_size=line,
                                     associativity=assoc)
                by_sets.setdefault(config.num_sets, []).append(config)
        for num_sets, family in sorted(by_sets.items()):
            assocs = tuple(sorted({c.associativity for c in family}))
            units.append(((line, num_sets, assocs), family))
    return units


def _run_units(worker, units, jobs: int, addresses: Optional[np.ndarray],
               writes: Optional[np.ndarray],
               chunk_timeout: Optional[float] = None,
               container: Optional[str] = None,
               memory_only: bool = True) -> List:
    """Map ``worker`` over ``units`` with ``jobs`` forked processes
    sharing the trace, or serially in-process.

    With ``container`` set (by-chunk sharding mode) there is no shared
    memory at all: workers stream chunks from the PTRC file/archive on
    disk, and ``addresses``/``writes`` are unused.

    Serial fallback triggers on ``jobs <= 1`` and whenever fork or
    shared memory is unavailable.  A worker that raises surfaces as a
    typed :class:`SweepWorkerError`; with ``chunk_timeout`` set, so
    does a worker that takes longer than that many seconds on one unit
    (the way a SIGKILLed worker shows up: its unit simply never
    finishes, because ``Pool`` respawns the process but the task is
    lost).  The shared segments are closed and unlinked on *every*
    exit path — normal, worker failure, timeout, KeyboardInterrupt —
    via the ``finally`` below, so no ``/dev/shm`` segment outlives the
    call.
    """
    units = list(units)
    if container is not None and jobs > 1:
        try:
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(jobs, initializer=_pool_init_container,
                          initargs=(container, memory_only)) as pool:
                it = pool.imap(worker, units, chunksize=1)
                results = []
                for index, unit in enumerate(units):
                    try:
                        if chunk_timeout is not None:
                            result = it.next(chunk_timeout)
                        else:
                            result = next(it)
                    except multiprocessing.TimeoutError:
                        raise SweepWorkerError(
                            f"sweep worker exceeded the {chunk_timeout:g}s "
                            f"chunk timeout on unit {index} "
                            f"({unit!r}) — worker killed or wedged"
                        ) from None
                    results.append(_check_result(result, unit))
                return results
        except (ImportError, OSError, ValueError):
            pass  # no fork: fall through to serial streaming
    if container is not None:
        _SHARED.update(container=container, memory_only=memory_only,
                       addresses=None, writes=None, segments=())
        try:
            return [_check_result(worker(u), u) for u in units]
        finally:
            _SHARED.clear()
    if jobs > 1:
        try:
            import multiprocessing
            from multiprocessing import shared_memory

            ctx = multiprocessing.get_context("fork")
            shm = shared_memory.SharedMemory(create=True,
                                             size=max(1, addresses.nbytes))
            wshm = None
            try:
                np.ndarray(addresses.shape, dtype=addresses.dtype,
                           buffer=shm.buf)[:] = addresses
                writes_name = None
                if writes is not None:
                    wshm = shared_memory.SharedMemory(
                        create=True, size=max(1, writes.nbytes))
                    np.ndarray(writes.shape, dtype=bool,
                               buffer=wshm.buf)[:] = writes
                    writes_name = wshm.name
                with ctx.Pool(
                        jobs, initializer=_pool_init,
                        initargs=(shm.name, len(addresses),
                                  addresses.dtype.str, writes_name)) as pool:
                    # imap (not map): per-unit collection makes a
                    # per-chunk timeout possible at all — map would
                    # block forever on a unit whose worker was killed.
                    it = pool.imap(worker, units, chunksize=1)
                    results = []
                    for index, unit in enumerate(units):
                        try:
                            if chunk_timeout is not None:
                                result = it.next(chunk_timeout)
                            else:
                                result = next(it)
                        except multiprocessing.TimeoutError:
                            raise SweepWorkerError(
                                f"sweep worker exceeded the {chunk_timeout:g}s "
                                f"chunk timeout on unit {index} "
                                f"({unit!r}) — worker killed or wedged"
                            ) from None
                        results.append(_check_result(result, unit))
                    return results
            finally:
                shm.close()
                shm.unlink()
                if wshm is not None:
                    wshm.close()
                    wshm.unlink()
        except (ImportError, OSError, ValueError):
            pass  # no fork / no shared memory: fall through to serial
    _SHARED.update(addresses=addresses, writes=writes, segments=())
    try:
        return [_check_result(worker(u), u) for u in units]
    finally:
        _SHARED.clear()


def sweep_parallel(addresses: Optional[np.ndarray] = None,
                   writes: Optional[np.ndarray] = None,
                   configs: Optional[Sequence[CacheConfig]] = None,
                   jobs: int = 1,
                   sizes: Sequence[int] = PAPER_SIZES,
                   line_sizes: Sequence[int] = PAPER_LINE_SIZES,
                   associativities: Sequence[int] = PAPER_ASSOCIATIVITIES,
                   chunk_timeout: Optional[float] = None,
                   container: Union[str, "os.PathLike", None] = None,
                   memory_only: bool = True,
                   ) -> List[SweepPoint]:
    """The configuration sweep, fanned out over worker processes.

    Without ``configs`` this runs the paper grid: each (line size,
    set count) family is one work unit simulated in a single vectorized
    stack pass (results match :func:`sweep_paper_grid` exactly).  With
    ``configs`` each configuration is one unit through the batch
    kernels — any policy/write-mode mix, e.g. the ablation grid — and
    the returned points carry write-back/write-through counts.

    Two trace-sharing modes:

    *  **In-RAM** (``addresses``): the trace (and write mask) is shared
       with workers through ``multiprocessing.shared_memory``.
    *  **By-chunk sharding** (``container``): pass a PTRC container
       file (or archive directory) instead of arrays.  Workers stream
       chunks from disk through the out-of-core kernels — resident
       memory stays bounded by the chunk decode window however large
       the archived trace is, and results are bit-identical to the
       in-RAM pass on the same references.  ``memory_only`` mirrors
       ``ReferenceTrace.memory_only()`` (drop hardware references).

    Result order is deterministic and independent of ``jobs``;
    ``jobs <= 1`` or an unavailable fork start method degrades
    gracefully to an in-process loop.  A failed worker raises
    :class:`SweepWorkerError`; ``chunk_timeout`` bounds how long any
    single work unit may take before the sweep gives up with the same
    error (catching killed/wedged workers).
    """
    if container is not None:
        if addresses is not None or writes is not None:
            raise ValueError(
                "pass either in-RAM arrays or container=, not both")
        container = os.fspath(container)
    else:
        if addresses is None:
            raise ValueError("pass addresses or container=")
        addresses = np.ascontiguousarray(addresses, dtype=np.uint32)
        if writes is not None:
            writes = np.ascontiguousarray(writes, dtype=bool)
            if len(writes) != len(addresses):
                raise ValueError("writes mask length != trace length")

    if configs is not None:
        results = _run_units(_config_unit, list(configs), jobs,
                             addresses, writes, chunk_timeout,
                             container=container, memory_only=memory_only)
        return [SweepPoint(config=c, accesses=acc, misses=miss,
                           writebacks=wb, write_throughs=wt)
                for c, (acc, miss, wb, wt) in zip(configs, results)]

    units = _grid_units(sizes, line_sizes, associativities)
    results = _run_units(_family_unit, [u for u, _ in units], jobs,
                         addresses, writes, chunk_timeout,
                         container=container, memory_only=memory_only)
    if container is not None:
        # Container-mode family units report (total_refs, misses).
        total_refs = results[0][0] if results else 0
        results = [misses for _total, misses in results]
    else:
        total_refs = len(addresses)
    points: List[SweepPoint] = []
    for (_, family), misses in zip(units, results):
        for config in family:
            points.append(SweepPoint(config=config, accesses=total_refs,
                                     misses=misses[config.associativity]))
    points.sort(key=lambda p: (p.config.line_size, p.config.size,
                               p.config.associativity))
    return points


def grid_by_config(points: Sequence[SweepPoint]) -> Dict[tuple, SweepPoint]:
    return {(p.config.size, p.config.line_size, p.config.associativity): p
            for p in points}


def subsample_trace(addresses: np.ndarray, limit: int,
                    seed: Optional[int] = None) -> np.ndarray:
    """Truncate a trace for quick sweeps (contiguous prefix keeps the
    locality structure intact, unlike random sampling)."""
    if len(addresses) <= limit:
        return addresses
    if seed is None:
        return addresses[:limit]
    rng = np.random.default_rng(seed)
    start = int(rng.integers(0, len(addresses) - limit))
    return addresses[start:start + limit]
