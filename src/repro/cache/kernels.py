"""Vectorized cache-simulation kernels.

The reference :class:`repro.cache.cache.Cache` walks a trace one
address at a time through Python lists; these kernels produce the exact
same :class:`~repro.cache.cache.CacheStats` from whole-trace numpy
passes.  The design is *set-major*:

1.  Byte addresses are reduced to (set, tag) pairs and the trace is
    partitioned by set index with one stable sort.  References within a
    set keep their program order; references in different sets never
    interact, so any interleaving between sets is legal.
2.  Consecutive same-line references within a set are *run-collapsed*:
    after the first reference of a run the line is resident (the head
    allocates on a miss under write-allocate), and no other reference
    in the set can evict it before the run ends, so the tail of the run
    is a guaranteed hit in every configuration.  Only run heads are
    simulated; per-run write flags are aggregated for dirty tracking.
3.  The surviving run heads are re-ordered into *waves*: wave ``r``
    holds the ``r``-th run of every set that still has one.  Each wave
    touches each set at most once, so a whole wave is simulated with a
    handful of numpy operations on a dense ``(num_sets, assoc)`` state
    matrix — tag in the high bits, write-back dirty flag in bit 0.
4.  Waves shrink as short sets run dry.  Once a wave is narrower than
    ``TAIL_WIDTH`` the numpy call overhead dominates, so the few
    remaining (hot) sets are drained by a scalar per-set loop over the
    same packed state.

Direct-mapped caches collapse further: every run head is a miss (the
resident line is by construction a different line of the same set), so
the whole simulation reduces to counting runs — no wave loop at all.

Supported: LRU and FIFO replacement, write-through and write-back,
write-allocate and no-write-allocate (the latter skips run collapsing,
since an unallocated write leaves the resident line in place).  Random
replacement consumes a Python ``random.Random`` stream per eviction and
stays on the scalar simulator; :func:`simulate_auto` hides the
difference.  Every kernel is differential-tested against the scalar
simulator for byte-for-byte equal statistics.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .cache import (
    Cache,
    CacheConfig,
    CacheStats,
    POLICY_FIFO,
    POLICY_LRU,
    WRITE_BACK,
)

#: Waves narrower than this are drained by the scalar tail loop.
TAIL_WIDTH = 24

#: Packed empty way: tag -1, dirty bit clear.
EMPTY = -2


class KernelUnsupported(ValueError):
    """The configuration needs the scalar reference simulator."""


def supports(config: CacheConfig) -> bool:
    """True if :func:`simulate` handles this configuration.

    Random replacement consumes a Python RNG stream per eviction and
    stays scalar — except direct-mapped caches, where the victim is
    forced and every replacement policy coincides.
    """
    return (config.policy in (POLICY_LRU, POLICY_FIFO)
            or config.associativity == 1)


# ----------------------------------------------------------------------
# Trace preparation
# ----------------------------------------------------------------------

def _set_tag_split(addresses: np.ndarray, config: CacheConfig
                   ) -> Tuple[np.ndarray, np.ndarray]:
    offset_bits = config.line_size.bit_length() - 1
    set_bits = (config.num_sets - 1).bit_length()
    addresses = np.asarray(addresses)
    if addresses.dtype == np.uint32 and offset_bits + set_bits >= 2:
        # 32-bit device addresses: stay in narrow integers (the sort and
        # the wave ops are markedly faster than on int64).  The packed
        # way state stores ``tag << 1 | dirty``, so the tag must fit in
        # 30 bits — true whenever at least two address bits fold into
        # the line offset and set index.
        lines = addresses >> np.uint32(offset_bits)
        sets = (lines & np.uint32(config.num_sets - 1)).astype(np.int32)
        tags = (lines >> np.uint32(set_bits)).astype(np.int32)
    else:
        lines = addresses.astype(np.int64) >> offset_bits
        sets = (lines & (config.num_sets - 1)).astype(np.int32)
        tags = lines >> set_bits
    return sets, tags


def _precollapse(addresses: np.ndarray, writes: Optional[np.ndarray],
                 offset_bits: int, allocate: bool = True):
    """Drop references to the line the previous reference just touched.

    Under write-allocate the head of a same-line run leaves the line
    resident for the rest of the run (whatever the set), so the whole
    tail collapses and per-run write flags are OR-aggregated.  Without
    write-allocate only reads guarantee residency, so a reference is
    dropped only when it *and* its predecessor are reads — a read
    leaves its line resident in every configuration, and a dropped read
    carries no dirty information.  Returns
    ``(addresses, run_writes, collapsed)`` where ``collapsed`` counts
    removed guaranteed hits.
    """
    addresses = np.asarray(addresses)
    n = len(addresses)
    if n == 0:
        return addresses, writes, 0
    lines = addresses >> (np.uint32(offset_bits)
                          if addresses.dtype == np.uint32 else offset_bits)
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    if not allocate and writes is not None:
        np.logical_or(keep[1:], writes[1:], out=keep[1:])
        np.logical_or(keep[1:], writes[:-1], out=keep[1:])
    idx = np.flatnonzero(keep)
    if len(idx) == n:
        return addresses, writes, 0
    if writes is None:
        run_writes = None
    elif allocate:
        run_writes = np.logical_or.reduceat(writes, idx)
    else:
        run_writes = writes[idx]  # dropped refs are all reads
    return addresses[idx], run_writes, n - len(idx)


def _sort_by_set(sets: np.ndarray, tags: np.ndarray,
                 writes: Optional[np.ndarray]):
    order = np.argsort(sets, kind="stable")
    return (sets[order], tags[order],
            None if writes is None else writes[order])


def _collapse_runs(sets: np.ndarray, tags: np.ndarray,
                   writes: Optional[np.ndarray], allocate: bool = True):
    """Collapse within-set runs of the same tag.

    Under write-allocate the whole tail of a run is a guaranteed hit
    and per-run write flags are OR-aggregated; without it only
    read-after-read references are dropped (see :func:`_precollapse`).
    Returns ``(sets, tags, run_writes, collapsed)`` where ``collapsed``
    is the number of guaranteed hits removed.
    """
    n = len(sets)
    if n == 0:
        return sets, tags, writes, 0
    head = np.empty(n, dtype=bool)
    head[0] = True
    np.not_equal(tags[1:], tags[:-1], out=head[1:])
    np.logical_or(head[1:], sets[1:] != sets[:-1], out=head[1:])
    if not allocate and writes is not None:
        np.logical_or(head[1:], writes[1:], out=head[1:])
        np.logical_or(head[1:], writes[:-1], out=head[1:])
    idx = np.flatnonzero(head)
    if len(idx) == n:
        return sets, tags, writes, 0
    if writes is None:
        run_writes = None
    elif allocate:
        run_writes = np.logical_or.reduceat(writes, idx)
    else:
        run_writes = writes[idx]  # dropped refs are all reads
    return sets[idx], tags[idx], run_writes, n - len(idx)


def _schedule_waves(sets: np.ndarray):
    """Order set-sorted run heads into waves.

    Returns ``(order, wave_bounds, group_start, group_len)`` where
    ``order`` re-indexes the run arrays so wave ``r`` occupies
    ``order[wave_bounds[r]:wave_bounds[r + 1]]``, and the group arrays
    describe each set's contiguous block in set-sorted order (for the
    scalar tail drain).
    """
    m = len(sets)
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    np.not_equal(sets[1:], sets[:-1], out=new_group[1:])
    starts = np.flatnonzero(new_group)
    lens = np.diff(np.append(starts, m))
    # Rank of each run within its set.
    rank = np.arange(m, dtype=np.int64) - np.repeat(starts, lens)
    order = np.argsort(rank, kind="stable")
    wave_sizes = np.bincount(rank.astype(np.int64))
    bounds = np.concatenate(([0], np.cumsum(wave_sizes)))
    return order, bounds, starts, lens


# ----------------------------------------------------------------------
# Scalar tail drains (packed state, exact mirror of the wave updates)
# ----------------------------------------------------------------------

def _drain_lru(tags, writes, row, assoc, allocate, track_dirty):
    """Finish one set's run stream on a packed LRU row (MRU first)."""
    hits = 0
    writebacks = 0
    row = list(row)
    for i in range(len(tags)):
        t = int(tags[i])
        w = 0 if writes is None else int(writes[i])
        dirty = w if track_dirty else 0
        found = -1
        for depth in range(assoc):
            if row[depth] >> 1 == t:
                found = depth
                break
        if found >= 0:
            hits += 1
            packed = row.pop(found) | dirty
        else:
            if w and not allocate:
                continue
            victim = row.pop()
            writebacks += victim & 1
            packed = (t << 1) | dirty
        row.insert(0, packed)
    return hits, writebacks, row


def _drain_fifo(tags, writes, row, ptr, assoc, allocate, track_dirty):
    """Finish one set's run stream on a packed FIFO ring."""
    hits = 0
    writebacks = 0
    row = list(row)
    for i in range(len(tags)):
        t = int(tags[i])
        w = 0 if writes is None else int(writes[i])
        dirty = w if track_dirty else 0
        found = -1
        for depth in range(assoc):
            if row[depth] >> 1 == t:
                found = depth
                break
        if found >= 0:
            hits += 1
            row[found] |= dirty
        elif allocate or not w:
            victim = row[ptr]
            writebacks += victim & 1
            row[ptr] = (t << 1) | dirty
            ptr = (ptr + 1) % assoc
    return hits, writebacks, row, ptr


def _drain_depths(tags, row, assoc, hist):
    """Finish one set's run stream recording LRU hit depths."""
    cold = 0
    row = list(row)
    for i in range(len(tags)):
        t = int(tags[i])
        found = -1
        for depth in range(assoc):
            if row[depth] >> 1 == t:
                found = depth
                break
        if found >= 0:
            hist[found] += 1
            packed = row.pop(found)
        else:
            cold += 1
            row.pop()
            packed = t << 1
        row.insert(0, packed)
    return cold, row


# ----------------------------------------------------------------------
# Wave kernels
# ----------------------------------------------------------------------

def _run_waves(sets, tags, writes, config: CacheConfig,
               state: np.ndarray, depth_hist: Optional[np.ndarray] = None,
               tail_width: int = TAIL_WIDTH,
               fifo_ptr: Optional[np.ndarray] = None):
    """Simulate set-sorted run heads; returns (hits, writebacks).

    ``state`` is the packed ``(num_sets, assoc)`` way matrix, mutated in
    place.  With ``depth_hist`` (LRU only) each hit also increments the
    histogram bucket of its stack depth.  ``fifo_ptr`` carries the
    per-set FIFO insertion pointers; passing it in (mutated in place)
    lets the out-of-core path resume replacement state across chunk
    boundaries.
    """
    assoc = state.shape[1]
    fifo = config.policy == POLICY_FIFO
    track_dirty = writes is not None and config.write_policy == WRITE_BACK
    allocate = config.write_allocate
    order, bounds, group_start, group_len = _schedule_waves(sets)
    sets_w = sets[order]
    tags_w = tags[order]
    if writes is not None and (track_dirty or not allocate):
        # No-write-allocate changes hit/miss behaviour even when dirty
        # bits are not tracked (write-through).
        writes_w = writes[order].astype(state.dtype)
    else:
        writes_w = None

    if fifo_ptr is not None:
        ptr = fifo_ptr
    else:
        ptr = np.zeros(state.shape[0], dtype=np.int64) if fifo else None
    cols = np.arange(assoc, dtype=np.int64)
    # Source columns for the LRU rotation: element j takes old j-1 when
    # it sits at or above the touched depth, else stays.  Column 0 is
    # overwritten afterwards, so its source index just needs validity.
    cols_minus = np.maximum(cols - 1, 0)

    hits = 0
    writebacks = 0
    n_waves = len(bounds) - 1
    stop_wave = n_waves
    for r in range(n_waves):
        lo, hi = bounds[r], bounds[r + 1]
        if hi - lo < tail_width:
            stop_wave = r
            break
        s = sets_w[lo:hi]
        t = tags_w[lo:hi]
        rows = state[s]
        match = (rows >> 1) == t[:, None]
        hit = match.any(axis=1)
        hits += int(np.count_nonzero(hit))
        pos = match.argmax(axis=1)
        if depth_hist is not None:
            depth_hist += np.bincount(pos[hit], minlength=assoc)
        w = writes_w[lo:hi] if writes_w is not None else None
        if fifo:
            if track_dirty:
                hw = hit & (w != 0)
                if hw.any():
                    state[s[hw], pos[hw]] |= 1
            miss = ~hit
            if allocate or w is None:
                ins = miss
            else:
                ins = miss & (w == 0)
            sm = s[ins]
            if len(sm):
                pm = ptr[sm]
                victim = state[sm, pm]
                if track_dirty:
                    writebacks += int(np.count_nonzero(victim & 1))
                packed = t[ins] << 1
                if track_dirty:
                    packed |= w[ins]
                state[sm, pm] = packed
                ptr[sm] = (pm + 1) & (assoc - 1)
        else:
            if not allocate and w is not None:
                skip = ~hit & (w != 0)   # unallocated write: no change
                if skip.any():
                    keep = ~skip
                    s, t, hit, pos = s[keep], t[keep], hit[keep], pos[keep]
                    rows = rows[keep]
                    w = w[keep]
            pos = np.where(hit, pos, assoc - 1)
            packed = t << 1
            if track_dirty:
                front = np.take_along_axis(rows, pos[:, None], axis=1)[:, 0]
                writebacks += int(np.count_nonzero(~hit & (front & 1 == 1)))
                packed |= np.where(hit, front & 1, 0) | w
            shift = cols[None, :] <= pos[:, None]
            src = np.where(shift, cols_minus[None, :], cols[None, :])
            new_rows = np.take_along_axis(rows, src, axis=1)
            new_rows[:, 0] = packed
            state[s] = new_rows
    else:
        return hits, writebacks

    # Scalar drain of the sets still holding runs at stop_wave.
    remaining = np.flatnonzero(group_len > stop_wave)
    for g in remaining:
        start = group_start[g] + stop_wave
        end = group_start[g] + group_len[g]
        t_rest = tags[start:end]
        w_rest = None if writes_w is None else writes[start:end].astype(int)
        set_index = int(sets[start])
        row = state[set_index]
        if depth_hist is not None:
            cold, new_row = _drain_depths(t_rest, row, assoc, depth_hist)
            hits += len(t_rest) - cold
        elif fifo:
            h, wb, new_row, p = _drain_fifo(t_rest, w_rest, row,
                                            int(ptr[set_index]), assoc,
                                            allocate, track_dirty)
            hits += h
            writebacks += wb
            ptr[set_index] = p
        else:
            h, wb, new_row = _drain_lru(t_rest, w_rest, row, assoc,
                                        allocate, track_dirty)
            hits += h
            writebacks += wb
        state[set_index] = new_row
    return hits, writebacks


# ----------------------------------------------------------------------
# Direct-mapped closed form
# ----------------------------------------------------------------------

def _direct_mapped(sets, tags, writes, config: CacheConfig,
                   flush: bool) -> CacheStats:
    """Every run head misses in a direct-mapped cache, so stats reduce
    to run counting (requires write-allocate; set-sorted inputs)."""
    n = len(sets)
    stats = CacheStats(accesses=n)
    if n == 0:
        return stats
    total_writes = 0 if writes is None else int(np.count_nonzero(writes))
    sets_r, _tags_r, run_writes, collapsed = _collapse_runs(
        sets, tags, writes)
    runs = len(sets_r)
    stats.misses = runs
    stats.hits = n - runs
    if config.write_policy == WRITE_BACK:
        if writes is not None:
            last_of_set = np.empty(runs, dtype=bool)
            last_of_set[-1] = True
            np.not_equal(sets_r[1:], sets_r[:-1], out=last_of_set[:-1])
            dirty = run_writes
            stats.writebacks = int(np.count_nonzero(dirty & ~last_of_set))
            if flush:
                stats.writebacks += int(np.count_nonzero(
                    dirty & last_of_set))
    else:
        stats.write_throughs = total_writes
    return stats


# ----------------------------------------------------------------------
# Out-of-core simulation (chunk streams)
# ----------------------------------------------------------------------

def as_chunk_iter(addresses):
    """The chunk iterator behind ``addresses``, or ``None`` when the
    argument is a whole in-RAM trace.

    The out-of-core entry points accept either a generator/iterator or
    a list of chunks, each chunk an address array or an ``(addresses,
    writes)`` pair.  Flat in-RAM traces (ndarray, or a plain sequence
    of scalars) keep the historical whole-trace path.
    """
    if isinstance(addresses, np.ndarray):
        return None
    if hasattr(addresses, "__next__"):
        return addresses
    if isinstance(addresses, (list, tuple)) and len(addresses) \
            and isinstance(addresses[0], (np.ndarray, tuple)):
        return iter(addresses)
    return None


def _split_chunk(chunk):
    if isinstance(chunk, tuple):
        addresses, writes = chunk
        return np.asarray(addresses), writes
    return np.asarray(chunk), None


class ChunkedSimulator:
    """:func:`simulate` with cache state carried across chunk feeds.

    Produces ``CacheStats`` **bit-identical** to the whole-trace kernel
    on the concatenated stream, for every chunking.  Two facts make
    that exact rather than approximate:

    *  The wave kernel's ``(num_sets, assoc)`` packed way matrix (plus
       the FIFO insertion pointers) *is* the cache's complete
       replacement state, so persisting it between chunks resumes the
       simulation mid-trace.
    *  Run collapsing is a pure optimization: a reference the
       whole-trace pass would have collapsed into its predecessor's
       run is, when the run straddles a chunk boundary, simulated as a
       fresh run head instead — but its line is by construction
       resident at MRU (or anywhere, for FIFO) in its set, so it scores
       the same guaranteed hit, and the hit update (MRU rotation of the
       MRU entry, dirty-bit OR) is idempotent.  Stats and final state
       match exactly; only the operation count differs.

    The direct-mapped closed form is skipped (it needs the whole trace
    to count runs); assoc-1 configurations stream through the general
    wave path, where every replacement policy coincides.
    """

    def __init__(self, config: CacheConfig, flush: bool = False,
                 tail_width: int = TAIL_WIDTH):
        if not supports(config):
            raise KernelUnsupported(
                f"no vectorized kernel for policy {config.policy!r}")
        self.config = config
        self.flush = flush
        self.tail_width = tail_width
        self._offset_bits = config.line_size.bit_length() - 1
        self._write_back = config.write_policy == WRITE_BACK
        self._state: Optional[np.ndarray] = None
        self._ptr: Optional[np.ndarray] = None
        self._accesses = 0
        self._hits = 0
        self._writebacks = 0
        self._write_throughs = 0

    def feed(self, addresses, writes=None) -> None:
        """Simulate the next chunk of the trace."""
        addresses = np.asarray(addresses)
        n = len(addresses)
        if n == 0:
            return
        config = self.config
        if writes is not None:
            writes = np.asarray(writes, dtype=bool)
            if len(writes) != n:
                raise ValueError("writes mask length != chunk length")
            if not self._write_back:
                self._write_throughs += int(np.count_nonzero(writes))
        if self._write_back and writes is None:
            # Dirty state from earlier chunks must keep being tracked
            # through write-free chunks, so the write-back path always
            # carries a mask (all-False is semantically writes=None).
            writes = np.zeros(n, dtype=bool)
        self._accesses += n
        allocate = config.write_allocate
        addresses, writes, collapsed = _precollapse(
            addresses, writes, self._offset_bits, allocate=allocate)
        sets, tags = _set_tag_split(addresses, config)
        sets, tags, writes = _sort_by_set(sets, tags, writes)
        sets, tags, writes, more = _collapse_runs(sets, tags, writes,
                                                  allocate=allocate)
        self._hits += collapsed + more
        if self._state is None:
            dtype = (tags.dtype if tags.dtype == np.int32 else np.int64)
            self._state = np.full(
                (config.num_sets, config.associativity), EMPTY, dtype=dtype)
            if config.policy == POLICY_FIFO and config.associativity > 1:
                self._ptr = np.zeros(config.num_sets, dtype=np.int64)
        elif tags.dtype != self._state.dtype:
            tags = tags.astype(self._state.dtype)
        track_dirty = writes is not None and self._write_back
        hits, writebacks = _run_waves(
            sets, tags,
            writes if (track_dirty or not allocate) else None,
            config, self._state, tail_width=self.tail_width,
            fifo_ptr=self._ptr)
        self._hits += hits
        self._writebacks += writebacks

    def finish(self) -> CacheStats:
        """The accumulated stats (with the final flush, if requested).
        The simulator may keep being fed afterwards; ``finish`` only
        snapshots."""
        stats = CacheStats(accesses=self._accesses)
        stats.hits = self._hits
        stats.misses = self._accesses - self._hits
        stats.writebacks = self._writebacks
        stats.write_throughs = self._write_throughs
        if self.flush and self._write_back and self._state is not None:
            stats.writebacks += int((self._state & 1).sum())
        return stats

    def run(self, chunks) -> CacheStats:
        for chunk in chunks:
            addresses, writes = _split_chunk(chunk)
            self.feed(addresses, writes)
        return self.finish()


class ChunkedDepthPass:
    """:func:`lru_hit_depths` with stack state carried across chunks."""

    def __init__(self, num_sets: int, max_depth: int,
                 tail_width: int = TAIL_WIDTH):
        self.num_sets = num_sets
        self.max_depth = max_depth
        self.tail_width = tail_width
        self.hist = np.zeros(max_depth, dtype=np.int64)
        self._state: Optional[np.ndarray] = None
        self._total = 0

    def feed(self, line_addrs) -> None:
        line_addrs = np.asarray(line_addrs)
        n = len(line_addrs)
        if n == 0:
            return
        self._total += n
        num_sets = self.num_sets
        set_bits = num_sets.bit_length() - 1
        if line_addrs.dtype == np.uint32 and set_bits >= 2:
            sets = (line_addrs & np.uint32(num_sets - 1)).astype(np.int32)
            tags = (line_addrs >> np.uint32(set_bits)).astype(np.int32)
        else:
            lines = line_addrs.astype(np.int64)
            sets = (lines & (num_sets - 1)).astype(np.int32)
            tags = lines >> set_bits
        sets, tags, _ = _sort_by_set(sets, tags, None)
        sets, tags, _, collapsed = _collapse_runs(sets, tags, None)
        self.hist[0] += collapsed
        if self._state is None:
            dtype = (tags.dtype if tags.dtype == np.int32 else np.int64)
            self._state = np.full((num_sets, self.max_depth), EMPTY,
                                  dtype=dtype)
        elif tags.dtype != self._state.dtype:
            tags = tags.astype(self._state.dtype)

        class _DepthPass:  # _run_waves only reads these three fields
            policy = POLICY_LRU
            write_policy = "write-through"
            write_allocate = True

        _run_waves(sets, tags, None, _DepthPass, self._state,
                   depth_hist=self.hist, tail_width=self.tail_width)

    def finish(self) -> Tuple[np.ndarray, int]:
        cold = self._total - int(self.hist.sum())
        return self.hist, cold


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------

def simulate(addresses, config: CacheConfig, writes=None,
             flush: bool = False, tail_width: int = TAIL_WIDTH
             ) -> CacheStats:
    """Simulate a whole trace; exact ``CacheStats`` of the scalar
    :class:`Cache` fed the same references (plus ``flush_dirty`` when
    ``flush`` is set).

    ``addresses`` may also be a *chunk iterator* — a generator (or
    list) of address arrays or ``(addresses, writes)`` pairs, e.g.
    ``TraceContainer.cache_chunks()`` — in which case the trace is
    simulated out of core with state carried across chunk boundaries,
    producing bit-identical stats to the in-RAM pass.  ``writes`` must
    then be ``None`` (the mask rides along inside each chunk).

    Raises :class:`KernelUnsupported` for configurations only the
    scalar simulator handles (random replacement).
    """
    chunk_iter = as_chunk_iter(addresses)
    if chunk_iter is not None:
        if writes is not None:
            raise ValueError(
                "with a chunk iterator, pass writes inside each chunk "
                "as (addresses, writes) pairs")
        return ChunkedSimulator(config, flush=flush,
                                tail_width=tail_width).run(chunk_iter)
    if not supports(config):
        raise KernelUnsupported(
            f"no vectorized kernel for policy {config.policy!r}")
    addresses = np.asarray(addresses)
    if writes is not None:
        writes = np.asarray(writes, dtype=bool)
        if len(writes) != len(addresses):
            raise ValueError("writes mask length != trace length")
        if not writes.any():
            writes = None
    n = len(addresses)
    if n == 0:
        return CacheStats()

    stats = CacheStats(accesses=n)
    total_writes = 0 if writes is None else int(np.count_nonzero(writes))
    if config.write_policy != WRITE_BACK:
        stats.write_throughs = total_writes

    allocate = config.write_allocate
    offset_bits = config.line_size.bit_length() - 1
    addresses, writes, collapsed = _precollapse(
        addresses, writes, offset_bits, allocate=allocate)
    sets, tags = _set_tag_split(addresses, config)
    sets, tags, writes = _sort_by_set(sets, tags, writes)

    if config.associativity == 1 and allocate:
        dm = _direct_mapped(sets, tags, writes, config, flush)
        stats.hits = dm.hits + collapsed
        stats.misses = dm.misses
        stats.writebacks = dm.writebacks
        return stats

    sets, tags, writes, more = _collapse_runs(sets, tags, writes,
                                              allocate=allocate)
    collapsed += more
    state = np.full((config.num_sets, config.associativity), EMPTY,
                    dtype=tags.dtype if tags.dtype == np.int32 else np.int64)
    track_dirty = writes is not None and config.write_policy == WRITE_BACK
    hits, writebacks = _run_waves(
        sets, tags,
        writes if (track_dirty or not config.write_allocate) else None,
        config, state, tail_width=tail_width)
    stats.hits = hits + collapsed
    stats.misses = n - stats.hits
    stats.writebacks = writebacks
    if flush and track_dirty:
        stats.writebacks += int((state & 1).sum())
    return stats


def simulate_auto(addresses, config: CacheConfig, writes=None,
                  flush: bool = False, rng_seed: int = 0) -> CacheStats:
    """:func:`simulate`, falling back to the scalar simulator for
    configurations without a kernel (random replacement).  Accepts the
    same chunk iterators as :func:`simulate` — the scalar fallback
    streams them too (``Cache.run`` is incremental)."""
    if supports(config):
        return simulate(addresses, config, writes=writes, flush=flush)
    cache = Cache(config, rng_seed=rng_seed)
    chunk_iter = as_chunk_iter(addresses)
    if chunk_iter is not None:
        if writes is not None:
            raise ValueError(
                "with a chunk iterator, pass writes inside each chunk "
                "as (addresses, writes) pairs")
        for chunk in chunk_iter:
            chunk_addrs, chunk_writes = _split_chunk(chunk)
            cache.run(chunk_addrs, chunk_writes)
    else:
        cache.run(addresses, None if writes is None else np.asarray(writes))
    if flush:
        cache.flush_dirty()
    return cache.stats


def lru_hit_depths(line_addrs: np.ndarray, num_sets: int, max_depth: int,
                   tail_width: int = TAIL_WIDTH
                   ) -> Tuple[np.ndarray, int]:
    """Vectorized :func:`repro.cache.stackdist.lru_depth_histogram`.

    One wave pass with ``max_depth`` ways records the stack depth of
    every hit, yielding the miss count of every associativity up to
    ``max_depth`` at once (the LRU stack property).

    ``line_addrs`` may be a chunk iterator of line-address arrays (the
    out-of-core family pass), streamed with persistent stack state.
    """
    chunk_iter = as_chunk_iter(line_addrs)
    if chunk_iter is not None:
        depth_pass = ChunkedDepthPass(num_sets, max_depth,
                                      tail_width=tail_width)
        for chunk in chunk_iter:
            depth_pass.feed(np.asarray(chunk))
        return depth_pass.finish()
    line_addrs = np.asarray(line_addrs)
    hist = np.zeros(max_depth, dtype=np.int64)
    n = len(line_addrs)
    if n == 0:
        return hist, 0
    set_bits = num_sets.bit_length() - 1
    if line_addrs.dtype == np.uint32 and set_bits >= 2:
        sets = (line_addrs & np.uint32(num_sets - 1)).astype(np.int32)
        tags = (line_addrs >> np.uint32(set_bits)).astype(np.int32)
    else:
        lines = line_addrs.astype(np.int64)
        sets = (lines & (num_sets - 1)).astype(np.int32)
        tags = lines >> set_bits
    sets, tags, _ = _sort_by_set(sets, tags, None)
    sets, tags, _, collapsed = _collapse_runs(sets, tags, None)
    hist[0] += collapsed
    state = np.full((num_sets, max_depth), EMPTY,
                    dtype=tags.dtype if tags.dtype == np.int32 else np.int64)

    class _DepthPass:  # _run_waves only reads these three fields
        policy = POLICY_LRU
        write_policy = "write-through"
        write_allocate = True

    _hits, _ = _run_waves(sets, tags, None, _DepthPass, state,
                          depth_hist=hist, tail_width=tail_width)
    cold = n - int(hist.sum())
    return hist, cold


def kernel_misses_by_associativity(line_addrs: np.ndarray, num_sets: int,
                                   associativities: Sequence[int]
                                   ) -> Dict[int, int]:
    """Vectorized counterpart of
    :func:`repro.cache.stackdist.misses_by_associativity`.  Accepts
    the same chunk iterators as :func:`lru_hit_depths`."""
    max_assoc = max(associativities)
    if as_chunk_iter(line_addrs) is not None:
        depth_pass = ChunkedDepthPass(num_sets, max_assoc)
        total = 0
        for chunk in line_addrs if hasattr(line_addrs, "__next__") \
                else iter(line_addrs):
            chunk = np.asarray(chunk)
            total += len(chunk)
            depth_pass.feed(chunk)
        hist, _cold = depth_pass.finish()
    else:
        hist, _cold = lru_hit_depths(line_addrs, num_sets, max_assoc)
        total = len(np.asarray(line_addrs))
    cumulative = np.cumsum(hist)
    return {assoc: int(total - cumulative[assoc - 1])
            for assoc in associativities}
