"""Memory (expansion) card support — the paper's deferred feature.

§2.3.1: "the insertion, removal, and name of a memory card can be
detected with our technique.  We have chosen not to use memory cards in
this study due to the extra complexity ... Allowing memory cards to be
used would require either storing the contents of the memory card that
were accessed (and the timing of such events) or the entire contents of
the memory card and simulating that interface."

This extension takes the second option: the card's *entire contents*
travel with the initial state, and insert/remove transitions are
external inputs — they raise a CARD interrupt whose service routine
broadcasts a notification (``SysNotifyBroadcast``), which is exactly
how the existing notify hack detects them.  Replay re-inserts the same
card at the recorded ticks.

The card's storage appears as a read/write window at
``CARD_WINDOW_BASE``; reads while no card is present float high (0xFF),
writes raise a bus error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..m68k.errors import BusError

CARD_WINDOW_BASE = 0x2000_0000
CARD_WINDOW_MAX = 64 << 20        # up to 64 MB mapped

#: Notification types broadcast on card transitions (logged by the
#: SysNotifyBroadcast hack, so replay can re-inject them).
NOTIFY_CARD_INSERTED = 0x63617264   # 'card'
NOTIFY_CARD_REMOVED = 0x63725F6D    # 'cr_m'

INT_CARD = 0x08


@dataclass
class MemoryCard:
    """A removable card: a name and its full contents."""

    name: str
    contents: bytearray = field(default_factory=bytearray)

    @classmethod
    def blank(cls, name: str, size: int) -> "MemoryCard":
        return cls(name=name, contents=bytearray(b"\xff" * size))

    @property
    def size(self) -> int:
        return len(self.contents)


class CardSlot:
    """The expansion slot: presence state, transition latch, storage
    window."""

    def __init__(self, intc):
        self._intc = intc
        self.card: Optional[MemoryCard] = None
        self.last_event = 0  # the notify type of the last transition

    # -- transitions (external inputs) ----------------------------------
    def insert(self, card: MemoryCard) -> None:
        if card.size > CARD_WINDOW_MAX:
            raise ValueError("card larger than the mapped window")
        self.card = card
        self.last_event = NOTIFY_CARD_INSERTED
        self._intc.raise_int(INT_CARD)

    def remove(self) -> None:
        if self.card is None:
            return
        self.card = None
        self.last_event = NOTIFY_CARD_REMOVED
        self._intc.raise_int(INT_CARD)

    @property
    def present(self) -> bool:
        return self.card is not None

    # -- storage window ---------------------------------------------------
    def read8(self, addr: int) -> int:
        offset = addr - CARD_WINDOW_BASE
        if self.card is None or offset >= self.card.size:
            return 0xFF  # floating bus
        return self.card.contents[offset]

    def read16(self, addr: int) -> int:
        return (self.read8(addr) << 8) | self.read8(addr + 1)

    def read32(self, addr: int) -> int:
        return (self.read16(addr) << 16) | self.read16(addr + 2)

    def write8(self, addr: int, value: int) -> None:
        offset = addr - CARD_WINDOW_BASE
        if self.card is None or offset >= self.card.size:
            raise BusError(addr)
        self.card.contents[offset] = value & 0xFF

    def write16(self, addr: int, value: int) -> None:
        self.write8(addr, value >> 8)
        self.write8(addr + 1, value)

    def write32(self, addr: int, value: int) -> None:
        self.write16(addr, value >> 16)
        self.write16(addr + 2, value)
