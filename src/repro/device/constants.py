"""Palm m515 hardware constants.

The paper's subject device: 33 MHz Motorola DragonBall MC68VZ328,
16 MB of RAM, 4 MB of flash, a 160x160 touch screen sampled 50 times a
second, and the standard Palm button set.
"""

from __future__ import annotations

from enum import IntEnum

# -- clocks ------------------------------------------------------------
CPU_CLOCK_HZ = 33_000_000
TICKS_PER_SECOND = 100          # Palm OS SysTicksPerSecond on 68k devices
CYCLES_PER_TICK = CPU_CLOCK_HZ // TICKS_PER_SECOND
PEN_SAMPLE_HZ = 50              # "samples pen movements 50 times a second"
PEN_SAMPLE_TICKS = TICKS_PER_SECOND // PEN_SAMPLE_HZ

# -- memory map --------------------------------------------------------
RAM_BASE = 0x0000_0000
RAM_SIZE = 16 * 1024 * 1024
FLASH_BASE = 0x1000_0000
FLASH_SIZE = 4 * 1024 * 1024
HWREG_BASE = 0xFFFF_F000
HWREG_SIZE = 0x1000

SCREEN_WIDTH = 160
SCREEN_HEIGHT = 160
SCREEN_BYTES_PER_PIXEL = 2      # the m515 has a 16-bit colour panel
FRAMEBUFFER_ADDR = 0x0001_0000
FRAMEBUFFER_SIZE = SCREEN_WIDTH * SCREEN_HEIGHT * SCREEN_BYTES_PER_PIXEL

# -- hardware registers (offsets from HWREG_BASE) ----------------------
REG_INT_STATUS = HWREG_BASE + 0x000
REG_INT_ACK = HWREG_BASE + 0x004
REG_TMR_TICKS = HWREG_BASE + 0x008
REG_RTC_SECONDS = HWREG_BASE + 0x00C
REG_PEN_SAMPLE = HWREG_BASE + 0x010
REG_KEY_STATE = HWREG_BASE + 0x014
REG_KEY_EVENT = HWREG_BASE + 0x018
REG_LCD_BASE = HWREG_BASE + 0x020
REG_DEVICE_ID = HWREG_BASE + 0x024
REG_RNG_ENTROPY = HWREG_BASE + 0x028
REG_CARD_EVENT = HWREG_BASE + 0x02C   # notify type of the last transition
REG_CARD_STATUS = HWREG_BASE + 0x030  # bit 0: card present

DEVICE_ID_M515 = 0x0515_0001

# -- interrupt bits in INT_STATUS ---------------------------------------
INT_TIMER = 0x01
INT_PEN = 0x02
INT_KEY = 0x04
INT_CARD = 0x08

IRQ_LEVEL = 4  # everything autovectors at level 4 (vector 28)

# Palm epoch: timestamps count seconds since 12:00 A.M., January 1, 1904.
PALM_EPOCH_OFFSET = 2_082_844_800  # seconds between 1904-01-01 and 1970-01-01


class Button(IntEnum):
    """Hardware buttons, as bits in KEY_STATE."""

    POWER = 0x01
    UP = 0x02
    DOWN = 0x04
    DATEBOOK = 0x08     # the four application buttons
    ADDRESS = 0x10
    TODO = 0x20
    MEMO = 0x40
    HOTSYNC = 0x80      # cradle button
