"""The Palm m515 hardware model: memory map, peripherals, virtual time."""

from . import constants
from .constants import Button
from .device import PalmDevice
from .memcard import CardSlot, MemoryCard
from .memmap import (
    KIND_FETCH,
    KIND_READ,
    KIND_WRITE,
    MemoryMap,
    REGION_FLASH,
    REGION_HW,
    REGION_RAM,
)
from .peripherals import (
    Buttons,
    Digitizer,
    InterruptController,
    PenSample,
    RealTimeClock,
    TickTimer,
)

__all__ = [
    "constants",
    "Button",
    "PalmDevice",
    "MemoryMap",
    "CardSlot",
    "MemoryCard",
    "REGION_RAM",
    "REGION_FLASH",
    "REGION_HW",
    "KIND_FETCH",
    "KIND_READ",
    "KIND_WRITE",
    "Buttons",
    "Digitizer",
    "InterruptController",
    "PenSample",
    "RealTimeClock",
    "TickTimer",
]
