"""The Palm m515 device model: CPU + memory + peripherals + virtual time.

The device owns the *stimulus queue*: a schedule of stylus and button
actions in tick time.  During collection the synthetic user fills it;
during replay the playback driver does.  Either way the hardware behaves
identically — pen interrupts fire at the 50 Hz sample rate, button
transitions latch and interrupt, and the CPU sleeps ("dozes") whenever
the guest executes STOP, with virtual time skipping ahead to the next
scheduled event.  Dozing is what lets a multi-hour session replay in
seconds, mirroring how real sessions are overwhelmingly idle.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..m68k.cpu import CPU
from . import constants as C
from .memmap import MemoryMap
from .peripherals import (
    Buttons,
    Digitizer,
    InterruptController,
    RealTimeClock,
    TickTimer,
)


class PalmDevice:
    """A complete Palm m515.

    Parameters
    ----------
    aline_handler, fline_handler:
        Host hooks installed on the CPU (supplied by the Palm OS kernel
        layer and the emulator).
    rtc_base:
        RTC value (Palm-epoch seconds) at tick 0.
    entropy_seed:
        Seed for the deterministic "entropy" register the kernel reads
        at boot to seed ``SysRandom``.
    core:
        Replay core: ``"fast"`` (predecoded basic-block interpreter,
        the default) or ``"simple"`` (per-instruction stepping).  Both
        are bit-exact with each other.
    """

    def __init__(
        self,
        aline_handler=None,
        fline_handler=None,
        ram_size: int = C.RAM_SIZE,
        flash_size: int = C.FLASH_SIZE,
        rtc_base: Optional[int] = None,
        entropy_seed: int = 0x1234_5678,
        core: str = "fast",
    ):
        from .memcard import CardSlot

        self.intc = InterruptController()
        self.digitizer = Digitizer(self.intc)
        self.buttons = Buttons(self.intc)
        self.card_slot = CardSlot(self.intc)
        self.rtc = RealTimeClock(rtc_base)
        self.timer = TickTimer(self.intc)
        self.lcd_base = C.FRAMEBUFFER_ADDR
        self._entropy_state = entropy_seed & 0xFFFFFFFF

        self.mem = MemoryMap(self, ram_size=ram_size, flash_size=flash_size)
        self.cpu = CPU(self.mem, aline_handler=aline_handler,
                       fline_handler=fline_handler)
        self.intc.attach_cpu(self.cpu)

        self.core = None
        self.set_core(core)

        self._stimuli: List[Tuple[int, int, Callable[[], None]]] = []
        self._wakes: List[int] = []
        self._seq = 0
        #: Guest tick = wall tick - offset.  The offset advances at each
        #: warm (mid-session) reset: the guest's tick counter restarts
        #: while the stimulus schedule keeps running on wall time.
        self.tick_offset = 0

    # ------------------------------------------------------------------
    # Entropy register (deterministic)
    # ------------------------------------------------------------------
    def entropy(self) -> int:
        self._entropy_state = (self._entropy_state * 1_664_525 + 1_013_904_223) & 0xFFFFFFFF
        return self._entropy_state

    # ------------------------------------------------------------------
    # Stimulus scheduling (tick time)
    # ------------------------------------------------------------------
    @property
    def tick(self) -> int:
        """Wall tick: monotonic across warm resets (drives scheduling)."""
        return self.timer.tick

    @property
    def guest_tick(self) -> int:
        """The tick counter the guest sees; restarts at every reset."""
        return self.timer.tick - self.tick_offset

    def schedule_call(self, tick: int, fn: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._stimuli, (tick, self._seq, fn))

    def schedule_pen_down(self, tick: int, x: int, y: int) -> None:
        self.schedule_call(tick, lambda: self.digitizer.pen_down(x, y))

    def schedule_pen_move(self, tick: int, x: int, y: int) -> None:
        self.schedule_call(tick, lambda: self.digitizer.move(x, y))

    def schedule_pen_up(self, tick: int) -> None:
        self.schedule_call(tick, self.digitizer.pen_up)

    def schedule_button_press(self, tick: int, button: int) -> None:
        self.schedule_call(tick, lambda: self.buttons.press(button))

    def schedule_button_release(self, tick: int, button: int) -> None:
        self.schedule_call(tick, lambda: self.buttons.release(button))

    def schedule_card_insert(self, tick: int, card) -> None:
        self.schedule_call(tick, lambda: self.card_slot.insert(card))

    def schedule_card_remove(self, tick: int) -> None:
        self.schedule_call(tick, self.card_slot.remove)

    def request_wake(self, tick: int) -> None:
        """Ask for a timer interrupt at ``tick`` (EvtGetEvent timeouts)."""
        heapq.heappush(self._wakes, tick)

    # ------------------------------------------------------------------
    # The scheduler
    # ------------------------------------------------------------------
    def _apply_due_stimuli(self, now: int) -> None:
        while self._stimuli and self._stimuli[0][0] <= now:
            _, _, fn = heapq.heappop(self._stimuli)
            fn()

    def _fire_due_wakes(self, now: int) -> None:
        fired = False
        while self._wakes and self._wakes[0] <= now:
            heapq.heappop(self._wakes)
            fired = True
        if fired:
            self.intc.raise_int(C.INT_TIMER)

    def _next_event_tick(self, now: int) -> Optional[int]:
        """The earliest tick > now at which anything is scheduled."""
        candidates = []
        if self._stimuli:
            candidates.append(max(now + 1, self._stimuli[0][0]))
        if self._wakes:
            candidates.append(max(now + 1, self._wakes[0]))
        pen = self.digitizer.next_sample_tick(now + 1)
        if pen is not None:
            candidates.append(pen)
        return min(candidates) if candidates else None

    def advance(self, target_tick: int) -> None:
        """Run the device until the tick counter reaches ``target_tick``."""
        cpu = self.cpu
        while self.timer.tick < target_tick:
            now = self.timer.tick
            self._apply_due_stimuli(now)
            self._fire_due_wakes(now)
            if self.digitizer.wants_sample(now):
                self.digitizer.take_sample(now)

            serviceable = self.intc.status and (
                C.IRQ_LEVEL > cpu.imask or C.IRQ_LEVEL == 7)
            if cpu.stopped and not serviceable:
                # Doze: skip to the next scheduled event (or the target).
                nxt = self._next_event_tick(now)
                jump = target_tick if nxt is None else min(nxt, target_tick)
                jump = max(jump, now + 1)
                self.timer.tick = min(jump, target_tick)
                cpu.cycles = max(cpu.cycles, self.timer.tick * C.CYCLES_PER_TICK)
                continue

            # Awake (or waking): execute until the next tick boundary.
            boundary = (now + 1) * C.CYCLES_PER_TICK
            self._run_cpu_until_cycles(boundary)
            self.timer.advance_to(now + 1, cpu_awake=not cpu.stopped)

    def set_core(self, name: str) -> None:
        """Install the named replay core (``fast`` or ``simple``)."""
        from ..m68k.blockcore import BlockCore, SimpleCore
        if self.core is not None:
            self.core.detach()
        if name == "fast":
            self.core = BlockCore(self.cpu, self.mem)
        elif name == "simple":
            self.core = SimpleCore(self.cpu, self.mem)
        else:
            raise ValueError(f"unknown replay core {name!r}")

    def _run_cpu_until_cycles(self, limit: int) -> None:
        self.core.run_until_cycles(limit)

    def run_ticks(self, ticks: int) -> None:
        self.advance(self.timer.tick + ticks)

    def run_until_idle(self, max_ticks: int = 1_000_000) -> int:
        """Advance until the CPU sleeps with nothing scheduled.

        Returns the tick at which the device went idle.  Raises if the
        budget is exhausted first (a guest livelock).
        """
        deadline = self.timer.tick + max_ticks
        while self.timer.tick < deadline:
            if (self.cpu.stopped and not self.intc.status
                    and not self._stimuli and not self._wakes
                    and self.digitizer.next_sample_tick(self.timer.tick + 1) is None):
                return self.timer.tick
            nxt = self._next_event_tick(self.timer.tick)
            target = min(deadline, nxt if nxt is not None else self.timer.tick + 1)
            self.advance(max(target, self.timer.tick + 1))
        raise RuntimeError(f"device did not go idle within {max_ticks} ticks")

    # ------------------------------------------------------------------
    # Reset
    # ------------------------------------------------------------------
    def soft_reset(self) -> None:
        """Soft reset: the CPU restarts from the flash reset vector while
        RAM contents persist (exactly the state the paper collects
        sessions from).

        The reset vector pair lives at the start of flash; the memory
        map's vector fetch at address 0 is redirected there by copying
        the two longwords into RAM, which is how the DragonBall's boot
        overlay behaves in effect.
        """
        ssp = self.mem.flash.read32(C.FLASH_BASE)
        entry = self.mem.flash.read32(C.FLASH_BASE + 4)
        self.mem.ram.write32(0, ssp)
        self.mem.ram.write32(4, entry)
        self.cpu.reset()
        self.intc.status = 0
        self.intc.attach_cpu(self.cpu)
        # The tick counter restarts at reset (Palm OS TimGetTicks counts
        # from boot), keeping cycle and tick time consistent.
        self.timer.tick = 0
        self.tick_offset = 0
        self._wakes.clear()
        self.digitizer.last_sample_tick = -C.PEN_SAMPLE_TICKS

    def warm_reset(self) -> None:
        """Mid-session soft reset (the guest pressed reset / called
        SysReset): the guest tick counter restarts but wall time — and
        with it the stimulus schedule — keeps running.

        This is the "future work" reset support the paper defers: the
        inherent problem it mentions is exactly the restarted tick
        counter, solved here by separating wall time from guest time.
        """
        ssp = self.mem.flash.read32(C.FLASH_BASE)
        entry = self.mem.flash.read32(C.FLASH_BASE + 4)
        self.mem.ram.write32(0, ssp)
        self.mem.ram.write32(4, entry)
        cycles = self.cpu.cycles
        self.cpu.reset()
        self.cpu.cycles = cycles          # wall cycle time keeps running
        self.intc.status = 0
        self.intc.attach_cpu(self.cpu)
        self.tick_offset = self.timer.tick
        self._wakes.clear()               # pending alarms die with the OS
