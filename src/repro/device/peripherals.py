"""Peripheral models for the Palm m515.

Each peripheral keeps plain Python state; the guest sees it through the
hardware-register window that :class:`repro.device.memmap.MemoryMap`
routes here.  Interrupts are level-triggered: a peripheral sets a bit in
the interrupt controller's status word and the controller asserts the
CPU's IRQ line until the guest acknowledges the bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import constants as C


class InterruptController:
    """Funnels peripheral interrupts onto one autovectored IRQ level."""

    def __init__(self):
        self.status = 0
        self._cpu = None

    def attach_cpu(self, cpu) -> None:
        self._cpu = cpu

    def raise_int(self, bit: int) -> None:
        self.status |= bit
        self._update()

    def ack(self, mask: int) -> None:
        """Guest write to INT_ACK: clear the given status bits."""
        self.status &= ~mask
        self._update()

    def _update(self) -> None:
        if self._cpu is not None:
            self._cpu.set_irq(C.IRQ_LEVEL if self.status else 0)


@dataclass
class PenSample:
    down: bool
    x: int
    y: int

    def pack(self) -> int:
        flags = 0x80 if self.down else 0
        return (flags << 24) | ((self.x & 0xFF) << 8) | (self.y & 0xFF)


class Digitizer:
    """The touch screen.

    The stylus state is set by the workload driver (or the replay
    driver); the device samples it every ``PEN_SAMPLE_TICKS`` ticks while
    the pen is down, raising a PEN interrupt per sample — which is how a
    held stylus produces exactly 50 pen events per second, the rate the
    paper's overhead test observes.
    """

    def __init__(self, intc: InterruptController):
        self._intc = intc
        self.down = False
        self.x = 0
        self.y = 0
        self.sample = PenSample(False, 0, 0)
        self.last_sample_tick = -C.PEN_SAMPLE_TICKS
        self._pending_up = False

    # -- driver-facing API ------------------------------------------------
    def pen_down(self, x: int, y: int) -> None:
        self.down = True
        self.move(x, y)

    def move(self, x: int, y: int) -> None:
        self.x = max(0, min(C.SCREEN_WIDTH - 1, x))
        self.y = max(0, min(C.SCREEN_HEIGHT - 1, y))

    def pen_up(self) -> None:
        if self.down:
            self.down = False
            self._pending_up = True

    # -- device scheduler hooks --------------------------------------------
    def wants_sample(self, tick: int) -> bool:
        if self._pending_up:
            return True
        return self.down and tick - self.last_sample_tick >= C.PEN_SAMPLE_TICKS

    def next_sample_tick(self, tick: int) -> int | None:
        """The next tick at which this digitizer needs servicing."""
        if self._pending_up:
            return tick
        if self.down:
            return max(tick, self.last_sample_tick + C.PEN_SAMPLE_TICKS)
        return None

    def take_sample(self, tick: int) -> None:
        """Latch the current stylus state and raise the PEN interrupt."""
        if self._pending_up:
            self.sample = PenSample(False, self.x, self.y)
            self._pending_up = False
        else:
            self.sample = PenSample(True, self.x, self.y)
        self.last_sample_tick = tick
        self._intc.raise_int(C.INT_PEN)

    def read_sample_register(self) -> int:
        return self.sample.pack()


class Buttons:
    """The m515 button set: a held-state bit field plus a transition
    latch that the key interrupt service routine reads."""

    def __init__(self, intc: InterruptController):
        self._intc = intc
        self.state = 0
        self.last_event = 0  # byte3 = down flag, byte0 = button bit

    def press(self, button: int) -> None:
        if not self.state & button:
            self.state |= button
            self.last_event = 0x8000_0000 | (button & 0xFF)
            self._intc.raise_int(C.INT_KEY)

    def release(self, button: int) -> None:
        if self.state & button:
            self.state &= ~button
            self.last_event = button & 0xFF
            self._intc.raise_int(C.INT_KEY)


class RealTimeClock:
    """Real-time clock, in seconds since the Palm epoch (1904-01-01).

    Deterministically derived from the tick counter so that a replayed
    session observes an identical clock (the paper's emulator had to
    *approximate* the RTC from host time; see the jitter model in
    :mod:`repro.emulator` for a reproduction of that behaviour).
    """

    DEFAULT_BASE = 3_124_137_600  # 2003-01-01 00:00:00 in Palm epoch seconds

    def __init__(self, base_seconds: int | None = None):
        self.base_seconds = self.DEFAULT_BASE if base_seconds is None else base_seconds

    def seconds_at(self, tick: int) -> int:
        return (self.base_seconds + tick // C.TICKS_PER_SECOND) & 0xFFFFFFFF


class TickTimer:
    """The 100 Hz system tick source.

    ``tick`` is derived from the CPU cycle counter; while the CPU sleeps
    the device scheduler advances cycles directly (dozing costs no
    instructions, exactly like the DragonBall's doze mode).
    """

    def __init__(self, intc: InterruptController):
        self._intc = intc
        self.tick = 0

    def advance_to(self, tick: int, cpu_awake: bool) -> None:
        if tick > self.tick:
            self.tick = tick
            if cpu_awake:
                self._intc.raise_int(C.INT_TIMER)
