"""The Palm m515 memory map: 16 MB RAM, 4 MB flash, hardware registers.

This is the single point through which every guest memory access flows,
which makes it the natural place to hang the reference tracer (the
paper's modified POSE records memory references the same way, at the
bus).  Long accesses count as two references: the DragonBall has a
16-bit external bus.
"""

from __future__ import annotations

from typing import Optional, Protocol

from ..m68k.bus import FlatMemory, WriteWatch, check_aligned
from ..m68k.errors import AddressError, BusError
from . import constants as C

#: Region codes used by tracers and the cache study.
REGION_RAM = 0
REGION_FLASH = 1
REGION_HW = 2
REGION_CARD = 3

#: Access kinds.
KIND_FETCH = 0
KIND_READ = 1
KIND_WRITE = 2

from .memcard import CARD_WINDOW_BASE as _CARD_BASE  # noqa: E402
from .memcard import CARD_WINDOW_MAX as _CARD_MAX  # noqa: E402

_CARD_LIMIT = _CARD_BASE + _CARD_MAX


class Tracer(Protocol):
    """Receives one call per bus-width reference."""

    def reference(self, addr: int, kind: int, region: int) -> None: ...


class SanitizerHook(Protocol):
    """Shadow-state checker for guest data accesses (see
    :mod:`repro.analysis.sanitizer`).  Called once per CPU data access
    with the architectural width — not per bus-width reference, and
    never for instruction fetches."""

    def check_read(self, addr: int, size: int) -> None: ...

    def check_write(self, addr: int, size: int) -> None: ...


class HardwareRegs:
    """Routes the 0xFFFFF000 register window to the peripherals."""

    def __init__(self, device):
        self._device = device

    def read32(self, addr: int) -> int:
        d = self._device
        if addr == C.REG_INT_STATUS:
            return d.intc.status
        if addr == C.REG_TMR_TICKS:
            return d.guest_tick & 0xFFFFFFFF
        if addr == C.REG_RTC_SECONDS:
            return d.rtc.seconds_at(d.timer.tick)
        if addr == C.REG_PEN_SAMPLE:
            return d.digitizer.read_sample_register()
        if addr == C.REG_KEY_STATE:
            return d.buttons.state
        if addr == C.REG_KEY_EVENT:
            return d.buttons.last_event
        if addr == C.REG_LCD_BASE:
            return d.lcd_base
        if addr == C.REG_DEVICE_ID:
            return C.DEVICE_ID_M515
        if addr == C.REG_RNG_ENTROPY:
            return d.entropy()
        if addr == C.REG_CARD_EVENT:
            return d.card_slot.last_event
        if addr == C.REG_CARD_STATUS:
            return 1 if d.card_slot.present else 0
        raise BusError(addr)

    def write32(self, addr: int, value: int) -> None:
        d = self._device
        if addr == C.REG_INT_ACK:
            d.intc.ack(value)
            return
        if addr == C.REG_LCD_BASE:
            d.lcd_base = value & 0xFFFFFFFF
            return
        raise BusError(addr)


class MemoryMap:
    """Implements the :class:`repro.m68k.bus.Bus` protocol for the m515."""

    def __init__(self, device, ram_size: int = C.RAM_SIZE,
                 flash_size: int = C.FLASH_SIZE):
        self._device = device
        self.ram = FlatMemory(ram_size, base=C.RAM_BASE)
        self.flash = FlatMemory(flash_size, base=C.FLASH_BASE)
        self.hw = HardwareRegs(device)
        self.ram_limit = C.RAM_BASE + ram_size
        self.flash_limit = C.FLASH_BASE + flash_size
        self.tracer: Optional[Tracer] = None
        #: When True, guest writes to flash raise (real flash needs a
        #: programming sequence; a stray write is a guest bug).
        self.flash_write_protect = True
        #: Mirror of ``self.ram.watch`` consulted by the inline RAM
        #: write paths below (which bypass ``FlatMemory``); a replay
        #: core installing a code watch must set both.
        self.ram_watch: Optional[WriteWatch] = None
        #: Memory sanitizer consulted by the inline RAM arms (reads and
        #: writes only; fetches are covered by the static layer).
        self.san: Optional[SanitizerHook] = None
        # The RAM/flash fast paths index the backing bytearrays
        # directly.  FlatMemory mutates its buffer only in place (slice
        # assignment), so these aliases stay valid for the lifetime of
        # the map.
        self._ram_data = self.ram.data
        self._ram_base = self.ram.base
        self._flash_data = self.flash.data
        self._flash_base = self.flash.base

    def __setattr__(self, name: str, value) -> None:
        # Assigning ``tracer`` also caches a paired-reference callable:
        # a 32-bit access emits two consecutive bus-width references,
        # and the hot 32-bit arms fold them into one call.  Tracers may
        # provide ``reference_pair`` (the profiler's fast path does);
        # anything else gets a wrapper that calls ``reference`` twice,
        # preserving the one-call-per-reference contract exactly.
        if name == "tracer":
            pair = getattr(value, "reference_pair", None)
            if pair is None and value is not None:
                ref = value.reference

                def pair(addr, kind, region, _ref=ref):
                    _ref(addr, kind, region)
                    _ref(addr + 2, kind, region)
            object.__setattr__(self, "_tracer_pair", pair)
        object.__setattr__(self, name, value)

    # -- region helpers -----------------------------------------------------
    def region_of(self, addr: int) -> int:
        if addr < self.ram_limit:
            return REGION_RAM
        if C.FLASH_BASE <= addr < self.flash_limit:
            return REGION_FLASH
        if _CARD_BASE <= addr < _CARD_LIMIT:
            return REGION_CARD
        if addr >= C.HWREG_BASE:
            return REGION_HW
        raise BusError(addr)

    def _backing(self, addr: int):
        if addr < self.ram_limit:
            return self.ram
        if C.FLASH_BASE <= addr < self.flash_limit:
            return self.flash
        if _CARD_BASE <= addr < _CARD_LIMIT:
            return self._device.card_slot
        raise BusError(addr)

    def _trace(self, addr: int, kind: int, count: int = 1) -> None:
        tracer = self.tracer
        if tracer is not None:
            region = self.region_of(addr)
            tracer.reference(addr, kind, region)
            if count == 2:
                tracer.reference(addr + 2, kind, region)

    # -- Bus protocol ---------------------------------------------------------
    # The RAM and flash arms below are inline copies of the generic
    # `_trace` + `_backing` + FlatMemory accessor chain — the replay hot
    # path spends most of its bus time here, and each inlined arm saves
    # four or five method calls per reference.  Observable ordering is
    # preserved exactly: references are traced *before* an alignment
    # fault is raised, as the generic chain does.
    def read8(self, addr: int) -> int:
        if addr < self.ram_limit:
            tracer = self.tracer
            if tracer is not None:
                tracer.reference(addr, KIND_READ, REGION_RAM)
            s = self.san
            if s is not None:
                s.check_read(addr, 1)
            return self._ram_data[addr - self._ram_base]
        if C.FLASH_BASE <= addr < self.flash_limit:
            tracer = self.tracer
            if tracer is not None:
                tracer.reference(addr, KIND_READ, REGION_FLASH)
            return self._flash_data[addr - self._flash_base]
        self._trace(addr, KIND_READ)
        return self._backing(addr).read8(addr)

    def read16(self, addr: int) -> int:
        if addr < self.ram_limit:
            tracer = self.tracer
            if tracer is not None:
                tracer.reference(addr, KIND_READ, REGION_RAM)
            s = self.san
            if s is not None:
                s.check_read(addr, 2)
            if addr & 1:
                raise AddressError(addr, 2)
            d = self._ram_data
            off = addr - self._ram_base
            return (d[off] << 8) | d[off + 1]
        if C.FLASH_BASE <= addr < self.flash_limit:
            tracer = self.tracer
            if tracer is not None:
                tracer.reference(addr, KIND_READ, REGION_FLASH)
            if addr & 1:
                raise AddressError(addr, 2)
            d = self._flash_data
            off = addr - self._flash_base
            return (d[off] << 8) | d[off + 1]
        self._trace(addr, KIND_READ)
        return self._backing(addr).read16(addr)

    def read32(self, addr: int) -> int:
        if addr < self.ram_limit:
            pair = self._tracer_pair
            if pair is not None:
                pair(addr, KIND_READ, REGION_RAM)
            s = self.san
            if s is not None:
                s.check_read(addr, 4)
            if addr & 1:
                raise AddressError(addr, 4)
            d = self._ram_data
            off = addr - self._ram_base
            return ((d[off] << 24) | (d[off + 1] << 16)
                    | (d[off + 2] << 8) | d[off + 3])
        if C.FLASH_BASE <= addr < self.flash_limit:
            pair = self._tracer_pair
            if pair is not None:
                pair(addr, KIND_READ, REGION_FLASH)
            if addr & 1:
                raise AddressError(addr, 4)
            d = self._flash_data
            off = addr - self._flash_base
            return ((d[off] << 24) | (d[off + 1] << 16)
                    | (d[off + 2] << 8) | d[off + 3])
        if addr >= C.HWREG_BASE:
            check_aligned(addr, 4)
            self._trace(addr, KIND_READ, count=2)
            return self.hw.read32(addr)
        self._trace(addr, KIND_READ, count=2)
        return self._backing(addr).read32(addr)

    def write8(self, addr: int, value: int) -> None:
        if addr < self.ram_limit:
            tracer = self.tracer
            if tracer is not None:
                tracer.reference(addr, KIND_WRITE, REGION_RAM)
            s = self.san
            if s is not None:
                s.check_write(addr, 1)
            w = self.ram_watch
            if w is not None and (addr >> 8) in w.pages:
                w.hit(addr)
            self._ram_data[addr - self._ram_base] = value & 0xFF
            return
        self._trace(addr, KIND_WRITE)
        self._writable(addr).write8(addr, value)

    def write16(self, addr: int, value: int) -> None:
        if addr < self.ram_limit:
            tracer = self.tracer
            if tracer is not None:
                tracer.reference(addr, KIND_WRITE, REGION_RAM)
            s = self.san
            if s is not None:
                s.check_write(addr, 2)
            w = self.ram_watch
            if w is not None and (addr >> 8) in w.pages:
                w.hit(addr)
            if addr & 1:
                raise AddressError(addr, 2)
            d = self._ram_data
            off = addr - self._ram_base
            d[off] = (value >> 8) & 0xFF
            d[off + 1] = value & 0xFF
            return
        self._trace(addr, KIND_WRITE)
        self._writable(addr).write16(addr, value)

    def write32(self, addr: int, value: int) -> None:
        if addr < self.ram_limit:
            pair = self._tracer_pair
            if pair is not None:
                pair(addr, KIND_WRITE, REGION_RAM)
            s = self.san
            if s is not None:
                s.check_write(addr, 4)
            w = self.ram_watch
            if w is not None and ((addr >> 8) in w.pages
                                  or ((addr + 2) >> 8) in w.pages):
                w.hit(addr)
                w.hit(addr + 2)
            if addr & 1:
                raise AddressError(addr, 4)
            d = self._ram_data
            off = addr - self._ram_base
            d[off] = (value >> 24) & 0xFF
            d[off + 1] = (value >> 16) & 0xFF
            d[off + 2] = (value >> 8) & 0xFF
            d[off + 3] = value & 0xFF
            return
        if addr >= C.HWREG_BASE:
            check_aligned(addr, 4)
            self._trace(addr, KIND_WRITE, count=2)
            self.hw.write32(addr, value)
            return
        self._trace(addr, KIND_WRITE, count=2)
        self._writable(addr).write32(addr, value)

    def fetch16(self, addr: int) -> int:
        if addr < self.ram_limit:
            tracer = self.tracer
            if tracer is not None:
                tracer.reference(addr, KIND_FETCH, REGION_RAM)
            if addr & 1:
                raise AddressError(addr, 2)
            d = self._ram_data
            off = addr - self._ram_base
            return (d[off] << 8) | d[off + 1]
        if C.FLASH_BASE <= addr < self.flash_limit:
            tracer = self.tracer
            if tracer is not None:
                tracer.reference(addr, KIND_FETCH, REGION_FLASH)
            if addr & 1:
                raise AddressError(addr, 2)
            d = self._flash_data
            off = addr - self._flash_base
            return (d[off] << 8) | d[off + 1]
        self._trace(addr, KIND_FETCH)
        return self._backing(addr).read16(addr)

    def _writable(self, addr: int) -> FlatMemory:
        backing = self._backing(addr)
        if backing is self.flash and self.flash_write_protect:
            raise BusError(addr)
        return backing

    # -- host-side (untraced) access ------------------------------------------
    # Loading the initial state and exporting images are host operations
    # (ROMTransfer / HotSync run over the USB cable, not through the CPU
    # bus) and must not pollute the reference trace.
    def load_flash_image(self, blob: bytes, offset: int = 0) -> None:
        self.flash.load(C.FLASH_BASE + offset, blob)

    def dump_flash_image(self) -> bytes:
        return self.flash.dump(C.FLASH_BASE, len(self.flash))

    def load_ram(self, addr: int, blob: bytes) -> None:
        self.ram.load(addr, blob)

    def dump_ram(self, addr: int, length: int) -> bytes:
        return self.ram.dump(addr, length)
