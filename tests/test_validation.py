"""Tests for the §3 validation framework, including the end-to-end
three-workload validation mirroring the paper's test setup."""

import pytest

from repro import (
    JitterModel,
    correlate_final_states,
    correlate_logs,
    replay_session,
    standard_apps,
)
from repro.device import Button
from repro.palmos.database import DatabaseImage, RecordImage
from repro.tracelog import ActivityLog, LogEventType, LogRecord, read_activity_log
from repro.validation import BURST_TICK_BOUND
from repro.workloads import UserScript, collect_session, preload_contacts

EMU_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}


def _log(*records):
    return ActivityLog(records=list(records))


class TestLogCorrelationUnit:
    def test_identical_logs_valid(self):
        log = _log(LogRecord(LogEventType.PEN, 10, 0, 0x8000_1010),
                   LogRecord(LogEventType.KEY, 20, 0, 2))
        corr = correlate_logs(log, log)
        assert corr.valid
        assert corr.exact_matches == 2
        assert corr.max_tick_delta == 0

    def test_burst_delay_within_bound_still_valid(self):
        original = _log(LogRecord(LogEventType.PEN, 10, 0, 1))
        replayed = _log(LogRecord(LogEventType.PEN, 24, 0, 1))
        corr = correlate_logs(original, replayed)
        assert corr.valid
        assert corr.exact_matches == 0
        assert corr.max_tick_delta == 14

    def test_slip_beyond_bound_invalid(self):
        original = _log(LogRecord(LogEventType.PEN, 10, 0, 1))
        replayed = _log(LogRecord(LogEventType.PEN, 10 + BURST_TICK_BOUND, 0, 1))
        assert not correlate_logs(original, replayed).valid

    def test_payload_mismatch_invalid(self):
        original = _log(LogRecord(LogEventType.PEN, 10, 0, 1))
        replayed = _log(LogRecord(LogEventType.PEN, 10, 0, 2))
        corr = correlate_logs(original, replayed)
        assert not corr.valid
        assert corr.payload_matches == 0

    def test_missing_record_invalid(self):
        original = _log(LogRecord(LogEventType.PEN, 10, 0, 1),
                        LogRecord(LogEventType.PEN, 12, 0, 2))
        replayed = _log(LogRecord(LogEventType.PEN, 10, 0, 1))
        assert not correlate_logs(original, replayed).valid

    def test_summary_renders(self):
        log = _log(LogRecord(LogEventType.KEY, 5, 0, 2))
        text = correlate_logs(log, log).summary()
        assert "VALID" in text and "KEY" in text


class TestStateCorrelationUnit:
    def _db(self, name="DB", **kwargs):
        defaults = dict(creation_date=100, modification_date=200,
                        last_backup_date=50,
                        records=[RecordImage(0, 1, b"abc")])
        defaults.update(kwargs)
        return DatabaseImage(name=name, **defaults)

    def test_identical_states_valid(self):
        state = [self._db()]
        corr = correlate_final_states(state, state)
        assert corr.valid and not corr.diffs

    def test_date_diffs_are_expected(self):
        device = [self._db()]
        emulated = [self._db(creation_date=0, last_backup_date=0,
                             modification_date=0)]
        corr = correlate_final_states(device, emulated)
        assert corr.valid
        assert len(corr.expected_diffs) == 3

    def test_record_diff_is_unexpected(self):
        device = [self._db()]
        emulated = [self._db(records=[RecordImage(0, 1, b"xyz")])]
        corr = correlate_final_states(device, emulated)
        assert not corr.valid
        assert corr.unexpected_diffs[0].field == "record[0].data"

    def test_psyslaunchdb_record_diff_is_expected(self):
        device = [self._db(name="psysLaunchDB")]
        emulated = [self._db(name="psysLaunchDB",
                             records=[RecordImage(0, 1, b"xyz")])]
        assert correlate_final_states(device, emulated).valid

    def test_missing_database_invalid(self):
        corr = correlate_final_states([self._db()], [])
        assert not corr.valid
        assert corr.missing_databases == ["DB"]


# ----------------------------------------------------------------------
# End-to-end: the paper's three test workloads (§3.1-3.2), chained so
# each starts from the previous one's final state like the paper's.
# ----------------------------------------------------------------------
def _workload_scripts():
    w1 = (UserScript("w1").at(60)
          .press(Button.MEMO).wait(30)
          .tap(40, 120).wait(40).tap(90, 130).wait(30)
          .press(Button.UP).wait(40))
    w2 = (UserScript("w2").at(60)
          .press(Button.ADDRESS).wait(30)
          .press(Button.DOWN).wait(20).press(Button.DOWN).wait(20)
          .tap(30, 50).wait(40)
          .press(Button.MEMO).wait(30).press(Button.DOWN).wait(30))
    w3 = (UserScript("w3-puzzle").at(60)
          .press(Button.DATEBOOK).wait(40)
          .tap(50, 10).wait(25).tap(90, 50).wait(25)
          .tap(130, 90).wait(25).tap(10, 10).wait(25)
          .press(Button.UP).wait(40).tap(60, 60).wait(30))
    return [w1, w2, w3]


@pytest.fixture(scope="module")
def validation_runs():
    apps = standard_apps()
    runs = []
    for script in _workload_scripts():
        session = collect_session(
            apps, script, name=script.name,
            setup=lambda k: preload_contacts(k, 8),
            ram_size=EMU_KW["ram_size"])
        emulator, _, _ = replay_session(session.initial_state, session.log,
                                        apps=apps, profile=False,
                                        emulator_kwargs=EMU_KW)
        runs.append((session, emulator))
    return runs


class TestEndToEndValidation:
    def test_activity_logs_correlate(self, validation_runs):
        """§3.3 across all three workloads."""
        for session, emulator in validation_runs:
            replayed = read_activity_log(emulator.kernel)
            corr = correlate_logs(session.log, replayed)
            assert corr.valid, f"{session.name}\n{corr.summary()}"
            assert corr.exact_matches == corr.total_original  # bit exact

    def test_final_states_correlate(self, validation_runs):
        """§3.4: only the expected benign differences."""
        for session, emulator in validation_runs:
            corr = correlate_final_states(session.final_state,
                                          emulator.final_state())
            assert corr.valid, f"{session.name}\n{corr.summary()}"
            # The import artifacts actually occur (dates were zeroed).
            assert corr.expected_diffs

    def test_jittered_replay_still_validates(self):
        """With the POSE-realism jitter model the correlation shows the
        paper's artifacts (late bursts) yet still passes."""
        apps = standard_apps()
        script = _workload_scripts()[0]
        session = collect_session(apps, script, name="jitter",
                                  ram_size=EMU_KW["ram_size"])
        emulator, _, result = replay_session(
            session.initial_state, session.log, apps=apps, profile=False,
            jitter=JitterModel(seed=5, burst_probability=0.4),
            emulator_kwargs=EMU_KW)
        replayed = read_activity_log(emulator.kernel)
        corr = correlate_logs(session.log, replayed)
        assert corr.valid
        assert corr.exact_matches < corr.total_original  # bursts visible
        assert 0 < corr.max_tick_delta < BURST_TICK_BOUND
