"""Tests for the cache simulator: hit/miss behaviour, replacement
policies, write policies, the timing equations, and agreement between
the single-pass sweep and the reference simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    Cache,
    CacheConfig,
    POLICY_FIFO,
    POLICY_RANDOM,
    RegionMix,
    WRITE_BACK,
    collapse_consecutive,
    effective_access_time,
    misses_by_associativity,
    no_cache_access_time,
    paper_configurations,
    sweep_paper_grid,
    sweep_reference,
    to_line_addresses,
)
from repro.traces import generate_desktop_trace


def small_cache(**kwargs) -> Cache:
    defaults = dict(size=256, line_size=16, associativity=2)
    defaults.update(kwargs)
    return Cache(CacheConfig(**defaults))


class TestBasics:
    def test_first_access_misses_second_hits(self):
        cache = small_cache()
        assert not cache.access(0x1000)
        assert cache.access(0x1000)

    def test_same_line_hits(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x100F)  # same 16-byte line
        assert not cache.access(0x1010)  # next line

    def test_capacity_eviction(self):
        # Direct-mapped, 4 lines of 16B: addresses 0 and 64 collide.
        cache = small_cache(size=64, line_size=16, associativity=1)
        cache.access(0x00)
        cache.access(0x40)  # evicts 0x00
        assert not cache.access(0x00)

    def test_associativity_avoids_conflict(self):
        cache = small_cache(size=128, line_size=16, associativity=2)
        cache.access(0x00)
        cache.access(0x40)
        assert cache.access(0x00)  # both fit in the 2-way set

    def test_lru_evicts_least_recent(self):
        cache = small_cache(size=32, line_size=16, associativity=2)
        cache.access(0x00)   # A
        cache.access(0x100)  # B (same set)
        cache.access(0x00)   # touch A
        cache.access(0x200)  # C evicts B
        assert cache.access(0x00)
        assert not cache.access(0x100)

    def test_stats_add_up(self):
        cache = small_cache()
        for addr in [0, 0, 16, 0, 32, 16]:
            cache.access(addr)
        stats = cache.stats
        assert stats.accesses == 6
        assert stats.hits + stats.misses == 6
        assert stats.miss_rate == pytest.approx(3 / 6)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1000, line_size=16, associativity=1)
        with pytest.raises(ValueError):
            CacheConfig(size=16, line_size=16, associativity=2)
        with pytest.raises(ValueError):
            CacheConfig(size=64, line_size=16, associativity=1,
                        policy="mru")

    def test_label(self):
        config = CacheConfig(size=8192, line_size=32, associativity=4)
        assert config.label() == "8K/32B/4w"


class TestPolicies:
    def test_fifo_differs_from_lru(self):
        # Sequence where LRU and FIFO diverge: A B A C A
        seq = [0x00, 0x100, 0x00, 0x200, 0x00]
        lru = small_cache(size=32, line_size=16, associativity=2)
        fifo = small_cache(size=32, line_size=16, associativity=2,
                           policy=POLICY_FIFO)
        lru_hits = sum(lru.access(a) for a in seq)
        fifo_hits = sum(fifo.access(a) for a in seq)
        # LRU: A- B- A+ C-(evicts B) A+  -> 2 hits.
        # FIFO: A- B- A+ C-(evicts A, oldest) A-  -> 1 hit.
        assert lru_hits == 2
        assert fifo_hits == 1

    def test_random_policy_is_seeded(self):
        trace = np.random.default_rng(7).integers(
            0, 1 << 14, 3000).astype(np.uint32)
        runs = []
        for _ in range(2):
            cache = small_cache(size=512, line_size=16, associativity=4,
                                policy=POLICY_RANDOM)
            cache.run(trace)
            runs.append(cache.stats.misses)
        assert runs[0] == runs[1]


class TestWritePolicies:
    def test_write_through_counts_memory_writes(self):
        cache = small_cache()
        cache.access(0x00, write=True)
        cache.access(0x00, write=True)
        assert cache.stats.write_throughs == 2
        assert cache.stats.writebacks == 0

    def test_write_back_defers_until_eviction(self):
        cache = small_cache(size=32, line_size=16, associativity=2,
                            write_policy=WRITE_BACK)
        cache.access(0x00, write=True)
        cache.access(0x100, write=True)
        assert cache.stats.writebacks == 0
        cache.access(0x200)  # evicts dirty 0x00
        cache.access(0x300)  # evicts dirty 0x100
        assert cache.stats.writebacks == 2

    def test_flush_dirty(self):
        cache = small_cache(write_policy=WRITE_BACK)
        cache.access(0x00, write=True)
        cache.access(0x40, write=True)
        assert cache.flush_dirty() == 2
        assert cache.flush_dirty() == 0

    def test_no_write_allocate_skips_fill(self):
        cache = small_cache(write_allocate=False)
        cache.access(0x00, write=True)  # miss, no allocation
        assert not cache.access(0x00)   # still a miss


class TestEquations:
    def test_no_cache_time_matches_table1_range(self):
        # Two thirds flash -> ~2.33 cycles, as in Table 1 (2.35-2.39).
        assert no_cache_access_time(100, 200) == pytest.approx(2.333, abs=1e-3)
        assert no_cache_access_time(100, 0) == 1.0
        assert no_cache_access_time(0, 100) == 3.0

    def test_effective_access_time_limits(self):
        # MR=0: all hits, one cycle.  MR=1: Thit + blended miss cost.
        assert effective_access_time(0.0, 100, 200) == 1.0
        assert effective_access_time(1.0, 100, 200) == pytest.approx(1 + 2.333,
                                                                     abs=1e-3)

    def test_region_mix_reduction(self):
        mix = RegionMix(ram_refs=1_000_000, flash_refs=2_000_000)
        assert mix.no_cache_time() == pytest.approx(2.333, abs=1e-3)
        # A 5% miss rate cuts Teff by more than half.
        assert mix.reduction(0.05) > 0.5


class TestStackDistance:
    def test_collapse_consecutive(self):
        lines = np.array([1, 1, 2, 2, 2, 3, 1], dtype=np.uint32)
        collapsed, removed = collapse_consecutive(lines)
        assert list(collapsed) == [1, 2, 3, 1]
        assert removed == 3

    def test_line_addresses(self):
        addrs = np.array([0, 15, 16, 31, 32], dtype=np.uint32)
        assert list(to_line_addresses(addrs, 16)) == [0, 0, 1, 1, 2]

    def test_monotone_in_associativity(self):
        trace = generate_desktop_trace(20_000, seed=1)
        lines = to_line_addresses(trace, 16)
        misses = misses_by_associativity(lines, num_sets=16,
                                         associativities=[1, 2, 4, 8])
        assert misses[1] >= misses[2] >= misses[4] >= misses[8]

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 2**31), st.sampled_from([16, 32]),
           st.sampled_from([1, 2, 4, 8]), st.sampled_from([256, 1024, 4096]))
    def test_fast_path_matches_reference(self, seed, line, assoc, size):
        """The single-pass stack simulation must agree exactly with the
        reference simulator for every configuration."""
        if size < line * assoc:
            return
        trace = generate_desktop_trace(4_000, seed=seed)
        config = CacheConfig(size=size, line_size=line, associativity=assoc)
        reference = Cache(config)
        reference.run(trace)

        lines = to_line_addresses(trace, line)
        collapsed, _removed = collapse_consecutive(lines)
        fast = misses_by_associativity(collapsed, config.num_sets, [assoc])
        assert fast[assoc] == reference.stats.misses


class TestSweep:
    def test_paper_grid_has_56_configurations(self):
        configs = paper_configurations()
        assert len(configs) == 56
        assert len(set(configs)) == 56

    def test_sweep_covers_grid(self):
        trace = generate_desktop_trace(15_000, seed=3)
        points = sweep_paper_grid(trace)
        assert len(points) == 56
        assert all(0.0 <= p.miss_rate <= 1.0 for p in points)

    def test_sweep_matches_reference_on_sample(self):
        trace = generate_desktop_trace(8_000, seed=4)
        fast = {(p.config.size, p.config.line_size, p.config.associativity):
                p.misses for p in sweep_paper_grid(trace)}
        sample = [CacheConfig(4096, 16, 2), CacheConfig(1024, 32, 8),
                  CacheConfig(65536, 16, 1)]
        for point in sweep_reference(trace, sample):
            key = (point.config.size, point.config.line_size,
                   point.config.associativity)
            assert fast[key] == point.misses, point.config.label()

    def test_bigger_caches_never_miss_more(self):
        """LRU inclusion: within a line size and associativity, a larger
        cache's misses are <= a smaller one's."""
        trace = generate_desktop_trace(15_000, seed=5)
        from repro.cache import grid_by_config
        grid = grid_by_config(sweep_paper_grid(trace))
        for line in (16, 32):
            for assoc in (1, 2, 4, 8):
                rates = [grid[(size, line, assoc)].misses
                         for size in [1024 << i for i in range(7)]]
                assert all(a >= b for a, b in zip(rates, rates[1:]))


class TestDesktopTrace:
    def test_deterministic_per_seed(self):
        a = generate_desktop_trace(5_000, seed=9)
        b = generate_desktop_trace(5_000, seed=9)
        assert np.array_equal(a, b)

    def test_length_exact(self):
        assert len(generate_desktop_trace(12_345, seed=0)) == 12_345

    def test_has_locality(self):
        """The trace must be far more cacheable than random addresses."""
        trace = generate_desktop_trace(30_000, seed=2)
        cache = Cache(CacheConfig(8192, 16, 2))
        cache.run(trace)
        assert cache.stats.miss_rate < 0.2

        rng = np.random.default_rng(0)
        noise = rng.integers(0, 1 << 26, 30_000).astype(np.uint32)
        noisy = Cache(CacheConfig(8192, 16, 2))
        noisy.run(noise)
        assert noisy.stats.miss_rate > 5 * cache.stats.miss_rate
