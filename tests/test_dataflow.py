"""Tests for the abstract-interpretation dataflow engine
(repro.analysis.static.dataflow).

The centrepiece is the differential soundness test: hypothesis
generates guest programs, the interpreter executes them with a
per-instruction hook, and every value the static analysis claims
constant at an instruction entry must equal the value the interpreter
actually has there.  Soundness, not completeness — the analysis may
say "unknown", it may never say a wrong constant.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.static import walk
from repro.analysis.static.dataflow import (ENTRY_SP, AbsState,
                                            analyze_constprop, join,
                                            nondet_reachability, val_add,
                                            val_sub, widen)
from repro.m68k import CPU, FlatMemory
from repro.m68k.asm import assemble

CODE_BASE = 0x1000
STACK_TOP = 0x20000
RAM_SIZE = 0x40000
M32 = 0xFFFFFFFF


def _assemble(source: str):
    """Assemble ``source`` with the host-exit marker appended (the same
    convention as tests/m68k_utils.py) and return (program, blob)."""
    program = assemble(source + "\n    dc.w $ffff\n    stop #$2700\n",
                       origin=CODE_BASE)
    return program, bytes(program.blob)


def _fetch_of(blob: bytes):
    def fetch(addr: int) -> int:
        off = addr - CODE_BASE
        if 0 <= off + 1 < len(blob) + 1:
            hi = blob[off] if off < len(blob) else 0
            lo = blob[off + 1] if off + 1 < len(blob) else 0
            return (hi << 8) | lo
        return 0
    return fetch


def _analyze(source: str, roots=(CODE_BASE,), **kw):
    program, blob = _assemble(source)
    fetch = _fetch_of(blob)
    addrs = [program.symbols[r] if isinstance(r, str) else r for r in roots]
    cfg = walk(fetch, addrs, code_range=(CODE_BASE, CODE_BASE + len(blob)))
    return program, cfg, analyze_constprop(cfg, fetch, **kw)


# ----------------------------------------------------------------------
# Lattice algebra
# ----------------------------------------------------------------------
class TestLattice:
    def test_join_pointwise(self):
        x = AbsState(d=(1,) + (None,) * 7, a=(None,) * 7 + (ENTRY_SP,),
                     slots=((-4, 7),))
        y = AbsState(d=(1,) + (None,) * 7, a=(None,) * 7 + (ENTRY_SP,),
                     slots=((-4, 7), (-8, 9)))
        j = join(x, y)
        assert j.dreg(0) == 1
        assert j.sp == ENTRY_SP
        assert j.slot(-4) == 7
        assert j.slot(-8) is None      # only on one side

    def test_join_conflicting_goes_top(self):
        x = AbsState(d=(1,) + (None,) * 7, a=(None,) * 8)
        y = AbsState(d=(2,) + (None,) * 7, a=(None,) * 8)
        assert join(x, y).dreg(0) is None

    def test_widen_drops_slots_keeps_registers(self):
        x = AbsState(d=(5,) + (None,) * 7, a=(None,) * 7 + (ENTRY_SP,),
                     slots=((-4, 7),))
        w = widen(x)
        assert w.dreg(0) == 5
        assert w.sp == ENTRY_SP
        assert w.slots == ()

    def test_symbolic_arithmetic_signed(self):
        # Adding an unsigned-32 encoding of -4 must move the symbolic
        # offset down, not up by 4 billion.
        assert val_add(ENTRY_SP, 0xFFFFFFFC) == ("s", -4)
        assert val_sub(("s", -4), 0xFFFFFFFC) == ("s", 0)
        assert val_sub(("s", 12), ("s", 4)) == 8


# ----------------------------------------------------------------------
# Constant propagation
# ----------------------------------------------------------------------
class TestConstProp:
    def test_straight_line_arithmetic(self):
        src = """
start:  moveq   #5,d0
        move.l  d0,d1
        addq.l  #2,d1
        lsl.l   #4,d1
        not.l   d0
here:   nop
"""
        program, cfg, res = _analyze(src)
        consts = res.constants_at(program.symbols["here"])
        assert consts["d1"] == 0x70
        assert consts["d0"] == 5 ^ M32

    def test_join_keeps_agreeing_constant_only(self):
        src = """
start:  moveq   #3,d1
        moveq   #9,d2
        tst.l   d0
        beq.s   other
        moveq   #4,d2
        bra.s   done
other:  nop
done:   nop
"""
        program, cfg, res = _analyze(src)
        consts = res.constants_at(program.symbols["done"])
        assert consts["d1"] == 3          # same on both paths
        assert "d2" not in consts         # 9 on one path, 4 on the other

    def test_stack_slot_roundtrip(self):
        src = """
start:  moveq   #42,d3
        move.l  d3,-(sp)
        moveq   #0,d3
        move.l  (sp)+,d4
here:   nop
"""
        program, cfg, res = _analyze(src)
        consts = res.constants_at(program.symbols["here"])
        assert consts["d4"] == 42
        assert consts["d3"] == 0

    def test_call_havocs_registers_but_not_sp(self):
        src = """
start:  moveq   #1,d0
        movea.l d0,a2
        bsr.s   sub
here:   nop
        bra.s   out
sub:    rts
out:    nop
"""
        program, cfg, res = _analyze(src)
        state = res.insn_in[program.symbols["here"]]
        assert state.dreg(0) is None      # callee may clobber
        assert state.areg(2) is None
        assert state.sp == ENTRY_SP       # balanced-call convention

    def test_loop_head_terminates_and_claims_nothing_false(self):
        src = """
start:  moveq   #10,d1
        moveq   #0,d2
loop:   addq.l  #1,d2
        subq.l  #1,d1
        bne.s   loop
after:  nop
"""
        program, cfg, res = _analyze(src)
        # d1/d2 vary around the loop: no constant may be claimed at the
        # loop head (except on the first entry they would be wrong).
        head = res.constants_at(program.symbols["loop"])
        assert "d1" not in head
        assert "d2" not in head

    def test_readonly_image_reads_fold(self):
        src = """
start:  lea     table,a0
        move.l  (a0),d5
here:   nop
        bra.s   here2
table:  dc.l    $11223344
here2:  nop
"""
        program, blob = _assemble(src)
        fetch = _fetch_of(blob)
        cfg = walk(fetch, [CODE_BASE],
                   code_range=(CODE_BASE, CODE_BASE + len(blob)))
        res = analyze_constprop(
            cfg, fetch,
            readonly_ranges=((CODE_BASE, CODE_BASE + len(blob)),))
        consts = res.constants_at(program.symbols["here"])
        assert consts["d5"] == 0x11223344
        # Without the readonly promise the same read must stay unknown.
        res2 = analyze_constprop(cfg, fetch)
        assert "d5" not in res2.constants_at(program.symbols["here"])

    def test_dead_store_detected(self):
        src = """
start:  moveq   #1,d0
        move.l  d0,-(sp)
        moveq   #2,d0
        move.l  d0,(sp)
        move.l  (sp)+,d1
here:   nop
"""
        program, cfg, res = _analyze(src)
        assert len(res.dead_stores) == 1
        dead, overwriter = res.dead_stores[0]
        assert dead < overwriter

    def test_read_between_stores_is_not_dead(self):
        src = """
start:  moveq   #1,d0
        move.l  d0,-(sp)
        move.l  (sp),d1
        move.l  d0,(sp)
        move.l  (sp)+,d2
here:   nop
"""
        program, cfg, res = _analyze(src)
        assert res.dead_stores == []


# ----------------------------------------------------------------------
# Trap-argument recovery
# ----------------------------------------------------------------------
class TestTrapArguments:
    def test_arguments_recovered_in_c_order(self):
        src = """
start:  move.l  #$10,-(sp)
        move.l  #$20,-(sp)
        dc.w    $a010
here:   nop
"""
        program, cfg, res = _analyze(src)
        assert len(res.trap_sites) == 1
        site = res.trap_sites[0]
        assert site.trap == 0x010
        # Last pushed = lowest address = first C argument.
        assert site.args == (0x20, 0x10)

    def test_unknown_argument_is_none_and_trailing_trimmed(self):
        src = """
start:  move.l  #$77,-(sp)
        move.l  d0,-(sp)
        move.l  #$99,-(sp)
        dc.w    $a018
here:   nop
"""
        program, cfg, res = _analyze(src)
        # Middle argument is unknown (None); a trailing unknown would
        # simply be trimmed (the analysis cannot know the arity).
        assert res.trap_sites[0].args == (0x99, None, 0x77)


# ----------------------------------------------------------------------
# Nondeterminism reachability
# ----------------------------------------------------------------------
class TestNondetReachability:
    def test_backward_propagation_over_branches_and_calls(self):
        src = """
start:  bsr.s   helper
        tst.l   d0
        beq.s   clean
        dc.w    $a010
clean:  rts
helper: dc.w    $a018
        rts
"""
        program, cfg, res = _analyze(src)
        reach = nondet_reachability(cfg, {0x010, 0x018})
        start = program.symbols["start"]
        clean = program.symbols["clean"]
        helper = program.symbols["helper"]
        # start reaches both (its own trap and the callee's).
        assert reach[start] == frozenset({0x010, 0x018})
        assert reach[helper] == frozenset({0x018})
        assert reach.get(clean, frozenset()) == frozenset()

    def test_unreachable_trap_not_attributed(self):
        src = """
start:  nop
        rts
unused: dc.w    $a010
        rts
"""
        program, cfg, res = _analyze(src, roots=("start", "unused"))
        reach = nondet_reachability(cfg, {0x010})
        assert reach.get(program.symbols["start"], frozenset()) == frozenset()
        assert reach[program.symbols["unused"]] == frozenset({0x010})


# ----------------------------------------------------------------------
# Differential soundness (hypothesis)
# ----------------------------------------------------------------------
_DREG = st.integers(0, 7)
#: a0-a5 only: generated code must never redirect a7 (pushes through an
#: arbitrary pointer could land in the code image or the vector table).
_AREG = st.integers(0, 5)

_OPS = st.one_of(
    st.builds(lambda r, v: f"    moveq   #{v},d{r}",
              _DREG, st.integers(-128, 127)),
    st.builds(lambda a, b: f"    move.l  d{a},d{b}", _DREG, _DREG),
    st.builds(lambda a, b: f"    add.l   d{a},d{b}", _DREG, _DREG),
    st.builds(lambda a, b: f"    sub.l   d{a},d{b}", _DREG, _DREG),
    st.builds(lambda a, b: f"    and.l   d{a},d{b}", _DREG, _DREG),
    st.builds(lambda a, b: f"    or.l    d{a},d{b}", _DREG, _DREG),
    st.builds(lambda a, b: f"    eor.l   d{a},d{b}", _DREG, _DREG),
    st.builds(lambda a, b: f"    move.w  d{a},d{b}", _DREG, _DREG),
    st.builds(lambda a, b: f"    add.b   d{a},d{b}", _DREG, _DREG),
    st.builds(lambda a, b: f"    exg     d{a},d{b}", _DREG, _DREG),
    st.builds(lambda a, b: f"    muls    d{a},d{b}", _DREG, _DREG),
    st.builds(lambda r: f"    not.l   d{r}", _DREG),
    st.builds(lambda r: f"    neg.l   d{r}", _DREG),
    st.builds(lambda r: f"    swap    d{r}", _DREG),
    st.builds(lambda r: f"    tst.l   d{r}", _DREG),
    st.builds(lambda r, n: f"    lsl.l   #{n},d{r}",
              _DREG, st.integers(1, 8)),
    st.builds(lambda r, n: f"    lsr.l   #{n},d{r}",
              _DREG, st.integers(1, 8)),
    st.builds(lambda r, n: f"    asr.l   #{n},d{r}",
              _DREG, st.integers(1, 8)),
    st.builds(lambda r, n: f"    ror.l   #{n},d{r}",
              _DREG, st.integers(1, 8)),
    st.builds(lambda r, n: f"    addq.l  #{n},d{r}",
              _DREG, st.integers(1, 8)),
    st.builds(lambda r, n: f"    subq.l  #{n},d{r}",
              _DREG, st.integers(1, 8)),
    st.builds(lambda d, a: f"    movea.l d{d},a{a}", _DREG, _AREG),
    st.builds(lambda a, n: f"    addq.l  #{n},a{a}",
              _AREG, st.integers(1, 8)),
    st.builds(lambda r: f"    move.l  d{r},-(sp)", _DREG),
    st.builds(lambda r: f"    move.l  (sp)+,d{r}", _DREG),
    st.builds(lambda r: f"    move.l  sp,a{r}", _AREG),
)

_SEGMENT = st.lists(_OPS, min_size=0, max_size=10)


def _diamond_program(pre, then, els, post) -> str:
    lines = ["start:"]
    lines += pre
    lines += ["    tst.l   d0", "    beq.s   elsel"]
    lines += then
    # The nops keep every short branch's displacement non-zero even
    # when hypothesis shrinks a segment to empty.
    lines += ["    nop", "    bra.s   joinl", "elsel:"]
    lines += els
    lines += ["    nop", "joinl:"]
    lines += post
    return "\n".join(lines) + "\n"


def _check_soundness(source: str):
    """Run ``source`` on the interpreter while checking every static
    constant claim at every executed instruction entry."""
    program, blob = _assemble(source)
    fetch = _fetch_of(blob)
    cfg = walk(fetch, [CODE_BASE],
               code_range=(CODE_BASE, CODE_BASE + len(blob)))
    res = analyze_constprop(cfg, fetch)

    mem = FlatMemory(RAM_SIZE)
    mem.write32(0, STACK_TOP)
    mem.write32(4, CODE_BASE)
    for addr, seg in program.segments:
        mem.load(addr, seg)

    def exit_handler(cpu, op):
        if op == 0xFFFF:
            cpu.stopped = True
            return True
        return False

    cpu = CPU(mem, fline_handler=exit_handler)
    cpu.reset()
    violations = []

    def hook(op):
        pc = (cpu.pc - 2) & M32
        state = res.insn_in.get(pc)
        if state is None:
            return
        for i in range(8):
            v = state.dreg(i)
            if isinstance(v, int) and cpu.d[i] != v:
                violations.append((pc, f"d{i}", v, cpu.d[i]))
        for i in range(8):
            v = state.areg(i)
            if isinstance(v, int):
                if cpu.a[i] != v:
                    violations.append((pc, f"a{i}", v, cpu.a[i]))
            elif isinstance(v, tuple):
                expect = (STACK_TOP + v[1]) & M32
                if cpu.a[i] != expect:
                    violations.append((pc, f"a{i}", expect, cpu.a[i]))
        for off, v in state.slots:
            actual = mem.read32((STACK_TOP + off) & M32)
            expect = (v if isinstance(v, int)
                      else (STACK_TOP + v[1]) & M32)
            if actual != expect:
                violations.append((pc, f"slot{off:+d}", expect, actual))

    cpu.opcode_hook = hook
    cpu.run(100_000)
    assert cpu.stopped, "program did not reach the exit marker"
    assert not violations, (
        "unsound constant claims (pc, loc, claimed, actual):\n" +
        "\n".join(f"  {pc:#06x} {loc}: claimed {claim:#x}, "
                  f"actual {actual:#x}"
                  for pc, loc, claim, actual in violations[:10]) +
        "\n" + source)


class TestDifferentialSoundness:
    @settings(max_examples=60, deadline=None)
    @given(_SEGMENT, _SEGMENT, _SEGMENT, _SEGMENT)
    def test_claimed_constants_match_interpreter(self, pre, then, els, post):
        """Every register/stack-slot value the analysis claims constant
        at an instruction entry equals the interpreted machine's value
        whenever that instruction executes."""
        _check_soundness(_diamond_program(pre, then, els, post))

    def test_soundness_harness_catches_a_planted_lie(self):
        """The harness itself must fail when fed a wrong claim — guard
        against a vacuously-green differential test."""
        source = _diamond_program(["    moveq   #7,d3"], [], [], [])
        program, blob = _assemble(source)
        fetch = _fetch_of(blob)
        cfg = walk(fetch, [CODE_BASE],
                   code_range=(CODE_BASE, CODE_BASE + len(blob)))
        res = analyze_constprop(cfg, fetch)
        target = program.symbols["joinl"]
        state = res.insn_in[target]
        lie = AbsState(d=(99,) + state.d[1:], a=state.a, slots=state.slots)
        res.insn_in[target] = lie
        mem = FlatMemory(RAM_SIZE)
        mem.write32(0, STACK_TOP)
        mem.write32(4, CODE_BASE)
        for addr, seg in program.segments:
            mem.load(addr, seg)
        cpu = CPU(mem, fline_handler=lambda c, op: (
            setattr(c, "stopped", True) or True if op == 0xFFFF else False))
        cpu.reset()
        caught = []
        def hook(op):
            pc = (cpu.pc - 2) & M32
            state = res.insn_in.get(pc)
            if state is not None:
                for i in range(8):
                    v = state.dreg(i)
                    if isinstance(v, int) and cpu.d[i] != v:
                        caught.append(pc)
        cpu.opcode_hook = hook
        cpu.run(10_000)
        assert caught, "planted lie was not detected by the harness"
