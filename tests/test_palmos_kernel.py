"""Kernel integration tests: real 68k applications receiving hardware
input through the full trap path (events, databases, RNG, app switch,
reset persistence, and the native-vs-dispatcher equivalence POSE's
design depends on)."""

import pytest

from repro.device import Button
from repro.palmos import EventType, LAUNCH_DB_NAME, PalmOS, Trap
from repro.palmos import layout as L
from repro.palmos.database import fourcc

from tests.palmos_utils import BLANK_APP, RECORDER_APP, make_kernel, recorded_events


class TestBoot:
    def test_boot_reaches_idle_in_recorder_app(self):
        kernel = make_kernel()
        assert kernel.current_app_name() == "recorder"
        assert kernel.device.cpu.stopped

    def test_boot_creates_launch_db(self):
        kernel = make_kernel()
        assert kernel.dm_host.find(LAUNCH_DB_NAME)

    def test_storage_survives_reboot_dynamic_does_not(self):
        kernel = make_kernel()
        db = kernel.dm_host.create("UserData")
        addr = kernel.dm_host.new_record(db, 0, 4)
        kernel.host.write32(addr, 0x12345678)
        ptr = kernel.dyn_heap.with_access(kernel.host).alloc(64)
        assert ptr
        kernel.boot()
        db2 = kernel.dm_host.find("UserData")
        assert db2
        assert kernel.dm_host.read_record(db2, 0) == b"\x124Vx"
        # Dynamic heap was reformatted: one free chunk again.
        chunks = list(kernel.dyn_heap.with_access(kernel.host).chunks())
        assert len(chunks) == 1 and chunks[0].free

    def test_rand_seeded_through_trap_at_boot(self):
        # Two kernels with different entropy develop different RNG state.
        k1 = make_kernel(entropy_seed=111)
        k2 = make_kernel(entropy_seed=222)
        s1 = k1.host.read32(L.G_RAND_SEED)
        s2 = k2.host.read32(L.G_RAND_SEED)
        assert s1 != s2
        # Same entropy -> identical state (determinism).
        k3 = make_kernel(entropy_seed=111)
        assert k3.host.read32(L.G_RAND_SEED) == s1


class TestEventFlow:
    def test_pen_tap_produces_down_and_up(self):
        kernel = make_kernel()
        kernel.device.schedule_pen_down(10, 42, 77)
        kernel.device.schedule_pen_up(12)
        kernel.device.run_until_idle()
        events = recorded_events(kernel)
        etypes = [e[0] for e in events]
        assert etypes[0] == EventType.penDownEvent
        assert etypes[-1] == EventType.penUpEvent
        assert events[0][1:3] == (42, 77)

    def test_held_stylus_streams_move_events(self):
        kernel = make_kernel()
        kernel.device.schedule_pen_down(10, 10, 10)
        kernel.device.schedule_pen_move(30, 60, 60)
        kernel.device.schedule_pen_up(50)
        kernel.device.run_until_idle()
        events = recorded_events(kernel)
        moves = [e for e in events if e[0] == EventType.penMoveEvent]
        # 40 ticks held at 50 Hz sampling = ~19 move samples after the
        # down event.
        assert 15 <= len(moves) <= 22
        assert any(e[1] == 60 for e in moves)

    def test_button_press_events(self):
        kernel = make_kernel()
        kernel.device.schedule_button_press(10, Button.UP)
        kernel.device.schedule_button_release(15, Button.UP)
        kernel.device.run_until_idle()
        events = recorded_events(kernel)
        assert (EventType.keyDownEvent, 0, 0, Button.UP, 0) in events
        assert (EventType.keyUpEvent, 0, 0, Button.UP, 0) in events

    def test_nil_event_on_timeout(self):
        # An app that asks for a 20-tick timeout receives nilEvent.
        from repro.palmos import AppSpec
        app = AppSpec(name="timeouter", source="""
app_timeouter:
        link    a6,#-16
        move.l  #20,-(sp)               ; 20-tick timeout
        pea     -16(a6)
        dc.w    SYS_EvtGetEvent
        addq.l  #8,sp
        move.w  -16(a6),d0
        move.l  d0,$30000               ; record the event type
tm_stop:
        move.l  #$ffffffff,-(sp)
        pea     -16(a6)
        dc.w    SYS_EvtGetEvent
        addq.l  #8,sp
        move.w  -16(a6),d0
        cmpi.w  #22,d0
        bne.s   tm_stop
        unlk    a6
        rts
""")
        kernel = make_kernel(apps=[app])
        assert kernel.host.read32(0x30000) == EventType.nilEvent
        assert kernel.device.tick >= 20

    def test_event_order_preserved(self):
        kernel = make_kernel()
        kernel.device.schedule_button_press(10, Button.UP)
        kernel.device.schedule_button_release(12, Button.UP)
        kernel.device.schedule_button_press(14, Button.DOWN)
        kernel.device.schedule_button_release(16, Button.DOWN)
        kernel.device.run_until_idle()
        keys = [e[3] for e in recorded_events(kernel)
                if e[0] == EventType.keyDownEvent]
        assert keys == [Button.UP, Button.DOWN]


class TestAppSwitching:
    def test_hard_button_switches_app(self):
        kernel = make_kernel(apps=[
            RECORDER_APP,
            type(BLANK_APP)(name="blank", source=BLANK_APP.source,
                            button=Button.MEMO),
        ])
        assert kernel.current_app_name() == "recorder"
        kernel.device.schedule_button_press(20, Button.MEMO)
        kernel.device.schedule_button_release(22, Button.MEMO)
        kernel.device.run_until_idle()
        assert kernel.current_app_name() == "blank"
        # The recorder saw an appStopEvent as its final event.
        assert recorded_events(kernel)[-1][0] == EventType.appStopEvent

    def test_launch_db_records_switches(self):
        kernel = make_kernel(apps=[
            RECORDER_APP,
            type(BLANK_APP)(name="blank", source=BLANK_APP.source,
                            button=Button.MEMO),
        ])
        db = kernel.dm_host.find(LAUNCH_DB_NAME)
        before = kernel.dm_host.read_record(db, 0)
        kernel.device.schedule_button_press(20, Button.MEMO)
        kernel.device.schedule_button_release(22, Button.MEMO)
        kernel.device.run_until_idle()
        after = kernel.dm_host.read_record(db, 0)
        assert after != before  # launch count/app updated


class TestTrapSemantics:
    """Direct trap calls through the host thunk driver."""

    def test_ticks_and_seconds(self):
        kernel = make_kernel()
        kernel.device.run_ticks(300)
        ticks = kernel.call_trap(Trap.TimGetTicks)
        assert ticks >= 300
        seconds = kernel.call_trap(Trap.TimGetSeconds)
        assert seconds == kernel.device.rtc.seconds_at(kernel.device.tick)

    def test_ticks_per_second(self):
        kernel = make_kernel()
        assert kernel.call_trap(Trap.SysTicksPerSecond) == 100

    def test_sysrandom_sequence_and_seeding(self):
        kernel = make_kernel()
        a = kernel.call_trap(Trap.SysRandom, 0)
        b = kernel.call_trap(Trap.SysRandom, 0)
        assert a != b
        # Re-seeding restarts the sequence.
        c1 = kernel.call_trap(Trap.SysRandom, 777)
        c2 = kernel.call_trap(Trap.SysRandom, 0)
        d1 = kernel.call_trap(Trap.SysRandom, 777)
        d2 = kernel.call_trap(Trap.SysRandom, 0)
        assert (c1, c2) == (d1, d2)
        assert all(0 <= v <= 0x7FFF for v in (a, b, c1, c2))

    def test_key_current_state(self):
        kernel = make_kernel()
        kernel.device.buttons.press(Button.UP)
        assert kernel.call_trap(Trap.KeyCurrentState) == Button.UP
        kernel.device.buttons.release(Button.UP)
        assert kernel.call_trap(Trap.KeyCurrentState) == 0

    def test_mem_ptr_new_and_free(self):
        kernel = make_kernel()
        ptr = kernel.call_trap(Trap.MemPtrNew, 128)
        assert L.DYNAMIC_HEAP_BASE < ptr < L.DYNAMIC_HEAP_LIMIT
        assert kernel.call_trap(Trap.MemPtrSize, ptr) >= 128
        assert kernel.call_trap(Trap.MemPtrFree, ptr) == 0

    def test_memmove_via_guest_copy_loop(self):
        kernel = make_kernel()
        src = kernel.call_trap(Trap.MemPtrNew, 64)
        dst = kernel.call_trap(Trap.MemPtrNew, 64)
        kernel.host.write_bytes(src, bytes(range(64)))
        kernel.allow_native = False  # force the 68k data plane
        assert kernel.call_trap(Trap.MemMove, dst, src, 64) == 0
        kernel.allow_native = True
        assert kernel.host.read_bytes(dst, 64) == bytes(range(64))

    def test_memmove_overlapping_forward(self):
        kernel = make_kernel()
        buf = kernel.call_trap(Trap.MemPtrNew, 32)
        kernel.host.write_bytes(buf, bytes(range(16)) + bytes(16))
        kernel.allow_native = False
        kernel.call_trap(Trap.MemMove, buf + 4, buf, 16)
        kernel.allow_native = True
        assert kernel.host.read_bytes(buf + 4, 16) == bytes(range(16))

    def test_memset(self):
        kernel = make_kernel()
        buf = kernel.call_trap(Trap.MemPtrNew, 40)
        kernel.allow_native = False
        kernel.call_trap(Trap.MemSet, buf, 40, 0xAB)
        kernel.allow_native = True
        assert kernel.host.read_bytes(buf, 40) == b"\xab" * 40

    def test_database_traps_end_to_end(self):
        kernel = make_kernel()
        # Write a name string into guest scratch.
        name_addr = 0x38000
        kernel.host.write_bytes(name_addr, b"TrapDB\x00")
        db = kernel.call_trap(Trap.DmCreateDatabase, name_addr,
                              fourcc("DATA"), fourcc("test"), 0)
        assert db
        assert kernel.call_trap(Trap.DmFindDatabase, name_addr) == db
        rec = kernel.call_trap(Trap.DmNewRecord, db,
                               L.DM_MAX_RECORD_INDEX, 16)
        assert rec
        assert kernel.call_trap(Trap.DmNumRecords, db) == 1
        # Write through the trap, read back host-side.
        src = 0x38100
        kernel.host.write_bytes(src, b"0123456789abcdef")
        err = kernel.call_trap(Trap.DmWriteRecord, db, 0, 0, src, 16)
        assert err == 0
        db_host = kernel.dm_host.find("TrapDB")
        assert kernel.dm_host.read_record(db_host, 0) == b"0123456789abcdef"
        got = kernel.call_trap(Trap.DmGetRecord, db, 0)
        assert got == rec

    def test_database_traps_through_dispatcher(self):
        """Same operations with the native fast path disabled: the ROM
        dispatcher, stub walk loops, and F-line callbacks must agree."""
        kernel = make_kernel()
        kernel.allow_native = False
        name_addr = 0x38000
        kernel.host.write_bytes(name_addr, b"SlowDB\x00")
        db = kernel.call_trap(Trap.DmCreateDatabase, name_addr,
                              fourcc("DATA"), fourcc("test"), 0)
        values = [5, 6, 7, 8]
        for value in values:
            rec = kernel.call_trap(Trap.DmNewRecord, db,
                                   L.DM_MAX_RECORD_INDEX, 1)
            assert rec
            kernel.host.write8(rec, value)
        assert kernel.call_trap(Trap.DmNumRecords, db) == 4
        err = kernel.call_trap(Trap.DmRemoveRecord, db, 1)
        assert err == 0
        kernel.allow_native = True
        db_host = kernel.dm_host.find("SlowDB")
        got = [kernel.dm_host.read_record(db_host, i)[0] for i in range(3)]
        assert got == [5, 7, 8]

    def test_invalid_record_index_errors(self):
        kernel = make_kernel()
        name_addr = 0x38000
        kernel.host.write_bytes(name_addr, b"ErrDB\x00")
        db = kernel.call_trap(Trap.DmCreateDatabase, name_addr, 0, 0, 0)
        for native in (True, False):
            kernel.allow_native = native
            assert kernel.call_trap(Trap.DmGetRecord, db, 3) == 0
            assert kernel.call_trap(Trap.DmGetLastErr) != 0
        kernel.allow_native = True

    def test_trap_address_get_set(self):
        kernel = make_kernel()
        orig = kernel.call_trap(Trap.SysGetTrapAddress, int(Trap.SysRandom))
        assert orig == kernel.default_stubs[int(Trap.SysRandom)]
        old = kernel.call_trap(Trap.SysSetTrapAddress,
                               int(Trap.SysRandom), 0x123456)
        assert old == orig
        assert kernel.call_trap(Trap.SysGetTrapAddress,
                                int(Trap.SysRandom)) == 0x123456
        kernel.call_trap(Trap.SysSetTrapAddress, int(Trap.SysRandom), orig)

    def test_drawing_traps_write_framebuffer(self):
        kernel = make_kernel()
        kernel.allow_native = False
        kernel.call_trap(Trap.WinDrawRectangle, 10, 10, 4, 3, 0x1234)
        kernel.allow_native = True
        fb = L.FRAMEBUFFER
        assert kernel.host.read16(fb + (10 * 160 + 10) * 2) == 0x1234
        assert kernel.host.read16(fb + (12 * 160 + 13) * 2) == 0x1234
        assert kernel.host.read16(fb + (12 * 160 + 14) * 2) == 0

    def test_drawing_native_matches_guest(self):
        k1 = make_kernel()
        k2 = make_kernel()
        k2.allow_native = False
        for k in (k1, k2):
            k.call_trap(Trap.WinDrawRectangle, 5, 6, 7, 8, 0xBEEF)
            k.call_trap(Trap.WinDrawPixel, 100, 100, 0x0F0F)
        fb1 = k1.host.read_bytes(L.FRAMEBUFFER, 160 * 160 * 2)
        fb2 = k2.host.read_bytes(L.FRAMEBUFFER, 160 * 160 * 2)
        assert fb1 == fb2

    def test_erase_window_fills_white(self):
        kernel = make_kernel()
        kernel.allow_native = False
        kernel.call_trap(Trap.WinEraseWindow, max_ticks=200_000)
        kernel.allow_native = True
        assert kernel.host.read_bytes(L.FRAMEBUFFER, 64) == b"\xff" * 64


class TestDeterminism:
    def _run_session(self, seed):
        kernel = make_kernel(entropy_seed=seed)
        kernel.device.schedule_pen_down(10, 30, 30)
        kernel.device.schedule_pen_up(14)
        kernel.device.schedule_button_press(30, Button.UP)
        kernel.device.schedule_button_release(33, Button.UP)
        kernel.device.run_until_idle()
        return recorded_events(kernel), kernel.device.cpu.instructions

    def test_identical_runs_are_bit_identical(self):
        """The deterministic state machine model, verified: same initial
        state + same inputs = same execution."""
        events1, instr1 = self._run_session(seed=9)
        events2, instr2 = self._run_session(seed=9)
        assert events1 == events2
        assert instr1 == instr2
