"""Property-based tests: the interpreter's arithmetic and flags must
agree with reference big-integer arithmetic for all operand values."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.m68k import CPU, FlatMemory
from repro.m68k.instructions import (
    MASKS,
    MSBS,
    flags_add,
    flags_sub,
    sext32,
    to_signed,
)


class _FlagBox:
    """A minimal stand-in for the CPU where flag helpers are concerned."""

    def __init__(self):
        self.x = self.n = self.z = self.v = self.c = 0


sizes = st.sampled_from([1, 2, 4])


@given(sizes, st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
def test_add_flags_match_reference(size, a, b):
    a &= MASKS[size]
    b &= MASKS[size]
    box = _FlagBox()
    r = flags_add(box, a, b, size)
    assert r == (a + b) & MASKS[size]
    assert box.c == (1 if a + b > MASKS[size] else 0)
    assert box.x == box.c
    sa, sb = to_signed(a, size), to_signed(b, size)
    signed_sum = sa + sb
    bound = MSBS[size]
    assert box.v == (1 if signed_sum >= bound or signed_sum < -bound else 0)
    assert box.z == (1 if r == 0 else 0)
    assert box.n == (1 if r & MSBS[size] else 0)


@given(sizes, st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
def test_sub_flags_match_reference(size, a, b):
    a &= MASKS[size]
    b &= MASKS[size]
    box = _FlagBox()
    r = flags_sub(box, a, b, size)
    assert r == (a - b) & MASKS[size]
    assert box.c == (1 if b > a else 0)
    sa, sb = to_signed(a, size), to_signed(b, size)
    diff = sa - sb
    bound = MSBS[size]
    assert box.v == (1 if diff >= bound or diff < -bound else 0)
    assert box.z == (1 if r == 0 else 0)


@given(sizes, st.integers(0, 0xFFFFFFFF))
def test_sext32_roundtrip(size, value):
    extended = sext32(value, size)
    assert extended & MASKS[size] == value & MASKS[size]
    assert to_signed(extended, 4) == to_signed(value, size)


def _exit_handler(cpu, op):
    # 0xFFFF = host exit marker; preserves condition codes unlike STOP.
    if op == 0xFFFF:
        cpu.stopped = True
        return True
    return False


def _exec_binary(op_words, d0, d1):
    mem = FlatMemory(0x1000)
    mem.write32(0, 0x800)
    mem.write32(4, 0x100)
    addr = 0x100
    for w in op_words + [0xFFFF]:
        mem.write16(addr, w)
        addr += 2
    cpu = CPU(mem, fline_handler=_exit_handler)
    cpu.reset()
    cpu.d[0] = d0
    cpu.d[1] = d1
    cpu.run(10)
    assert cpu.stopped
    return cpu


@settings(max_examples=60)
@given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
def test_add_instruction_matches_reference(d0, d1):
    cpu = _exec_binary([0xD081], d0, d1)  # add.l d1,d0
    assert cpu.d[0] == (d0 + d1) & 0xFFFFFFFF


@settings(max_examples=60)
@given(st.integers(0, 0xFFFFFFFF), st.integers(0, 0xFFFFFFFF))
def test_sub_instruction_matches_reference(d0, d1):
    cpu = _exec_binary([0x9081], d0, d1)  # sub.l d1,d0
    assert cpu.d[0] == (d0 - d1) & 0xFFFFFFFF


@settings(max_examples=60)
@given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
def test_mulu_matches_reference(d0, d1):
    cpu = _exec_binary([0xC0C1], d0, d1)  # mulu d1,d0
    assert cpu.d[0] == d0 * d1


@settings(max_examples=60)
@given(st.integers(0, 0xFFFFFFFF), st.integers(1, 0xFFFF))
def test_divu_matches_reference(d0, d1):
    cpu = _exec_binary([0x80C1], d0, d1)  # divu d1,d0
    quot, rem = d0 // d1, d0 % d1
    if quot > 0xFFFF:
        assert cpu.v == 1
        assert cpu.d[0] == d0
    else:
        assert cpu.d[0] == (rem << 16) | quot


@settings(max_examples=60)
@given(st.integers(0, 0xFFFFFFFF), st.integers(0, 31))
def test_lsl_matches_reference(value, count):
    # Use a register count; immediate form caps at 8.
    cpu = _exec_binary([0xE3A8 | 0], value, count)  # lsl.l d1,d0
    assert cpu.d[0] == (value << count) & 0xFFFFFFFF


@settings(max_examples=60)
@given(st.integers(0, 0xFFFFFFFF), st.integers(0, 31))
def test_asr_matches_reference(value, count):
    cpu = _exec_binary([0xE2A0], value, count)  # asr.l d1,d0
    assert cpu.d[0] == (to_signed(value, 4) >> count) & 0xFFFFFFFF
