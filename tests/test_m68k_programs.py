"""Integration tests: nontrivial guest programs running on the 68k
core.  These exercise instruction interactions (flag chains, loops,
subroutines, memory addressing) that single-instruction unit tests
cannot."""

import pytest

from tests.m68k_utils import run_asm, run_asm_mem


class TestMultiPrecision:
    def test_64bit_addition_chain(self):
        # (0x00000001_FFFFFFFF + 0x00000002_00000001) = 0x4_00000000
        cpu = run_asm("""
            move.l  #$ffffffff,d0   ; a low
            move.l  #1,d1           ; a high
            move.l  #1,d2           ; b low
            move.l  #2,d3           ; b high
            add.l   d2,d0
            addx.l  d3,d1
        """)
        assert cpu.d[0] == 0x00000000
        assert cpu.d[1] == 0x00000004

    def test_64bit_subtraction_chain(self):
        # 0x2_00000000 - 0x0_00000001 = 0x1_FFFFFFFF
        cpu = run_asm("""
            moveq   #0,d0           ; a low
            move.l  #2,d1           ; a high
            moveq   #1,d2           ; b low
            moveq   #0,d3           ; b high
            sub.l   d2,d0
            subx.l  d3,d1
        """)
        assert cpu.d[0] == 0xFFFFFFFF
        assert cpu.d[1] == 0x00000001

    def test_addx_z_flag_accumulates(self):
        # Multi-word result of zero keeps Z set throughout the chain.
        cpu = run_asm("""
            move.l  #1,d0
            moveq   #0,d1
            moveq   #-1,d2          ; $ffffffff
            moveq   #0,d3
            add.l   d2,d0           ; 1 + ffffffff = 0, carry
            addx.l  d3,d1           ; 0 + 0 + 1 = 1 -> Z clear
            seq     d7
        """)
        assert cpu.d[1] == 1
        assert cpu.d[7] & 0xFF == 0

    def test_64bit_zero_result_z_set(self):
        cpu = run_asm("""
            moveq   #0,d0
            moveq   #0,d1
            moveq   #0,d2
            moveq   #0,d3
            move    #$04,ccr        ; pre-set Z (accumulating)
            add.l   d2,d0
            addx.l  d3,d1
            seq     d7
        """)
        assert cpu.d[7] & 0xFF == 0xFF


class TestStringRoutines:
    def test_strlen(self):
        cpu = run_asm("""
            lea     text,a0
            moveq   #-1,d0
    sl_loop: addq.l #1,d0
            tst.b   (a0)+
            bne.s   sl_loop
            bra.s   done
    text:   dc.b    "hello palm",0
            even
    done:
        """)
        assert cpu.d[0] == 10

    def test_memcmp_equal_and_differs(self):
        cpu = run_asm("""
            lea     s1,a0
            lea     s2,a1
            moveq   #4,d1
    cmploop: cmpm.b (a0)+,(a1)+
            bne.s   diff
            subq.l  #1,d1
            bne.s   cmploop
            moveq   #0,d0           ; equal
            bra.s   done
    diff:   moveq   #1,d0
            bra.s   done
    s1:     dc.b    "abcd"
    s2:     dc.b    "abcd"
            even
    done:
        """)
        assert cpu.d[0] == 0

    def test_reverse_copy(self):
        cpu, mem = run_asm_mem("""
            lea     src,a0
            lea     $3008,a1        ; destination end
            moveq   #7,d1
    rc_loop: move.b (a0)+,-(a1)
            dbra    d1,rc_loop
            bra.s   done
    src:    dc.b    "ABCDEFGH"
            even
    done:
        """)
        assert mem.dump(0x3000, 8) == b"HGFEDCBA"


class TestSortAndSearch:
    def test_bubble_sort(self):
        source = """
            lea     data,a0
            moveq   #6,d5           ; n-1 passes
    outer:  lea     data,a0
            moveq   #6,d6           ; n-1 comparisons
    inner:  move.w  (a0),d0
            move.w  2(a0),d1
            cmp.w   d0,d1
            bge.s   no_swap
            move.w  d1,(a0)
            move.w  d0,2(a0)
    no_swap: addq.l #2,a0
            dbra    d6,inner
            dbra    d5,outer
            bra.s   done
    data:   dc.w    507, 13, 8000, 2, 42, 999, 1, 300
            even
    done:
        """
        cpu, mem = run_asm_mem(source)
        data_addr = None
        # Locate the sorted block by scanning for the known values.
        values = [mem.read16(0x1000 + i) for i in range(0, 0x100, 2)]
        expected = sorted([507, 13, 8000, 2, 42, 999, 1, 300])
        for start in range(len(values) - 7):
            if values[start:start + 8] == expected:
                data_addr = start
                break
        assert data_addr is not None, values[:40]

    def test_binary_search(self):
        cpu = run_asm("""
            moveq   #0,d2           ; lo
            moveq   #9,d3           ; hi
            move.w  #77,d4          ; needle
    bs_loop: cmp.l  d3,d2
            bgt.s   bs_fail
            move.l  d2,d0
            add.l   d3,d0
            lsr.l   #1,d0           ; mid
            lea     table,a0
            move.l  d0,d1
            add.l   d1,d1
            move.w  0(a0,d1.l),d5
            cmp.w   d4,d5
            beq.s   bs_found
            blt.s   bs_right
            move.l  d0,d3
            subq.l  #1,d3
            bra.s   bs_loop
    bs_right: move.l d0,d2
            addq.l  #1,d2
            bra.s   bs_loop
    bs_found: move.l d0,d7
            moveq   #1,d6
            bra.s   done
    bs_fail: moveq   #0,d6
            bra.s   done
    table:  dc.w    2, 5, 9, 21, 40, 77, 81, 90, 95, 99
            even
    done:
        """)
        assert cpu.d[6] == 1
        assert cpu.d[7] == 5


class TestRecursion:
    def test_recursive_factorial(self):
        cpu = run_asm("""
            moveq   #6,d0
            bsr.s   fact
            bra.s   done
    ; fact(d0) -> d0, recursive, uses the stack
    fact:   cmpi.l  #1,d0
            ble.s   fact_base
            move.l  d0,-(sp)
            subq.l  #1,d0
            bsr.s   fact
            move.l  (sp)+,d1
            mulu    d1,d0
            rts
    fact_base:
            moveq   #1,d0
            rts
    done:
        """)
        assert cpu.d[0] == 720

    def test_fibonacci_iterative(self):
        cpu = run_asm("""
            moveq   #0,d0
            moveq   #1,d1
            move.w  #19,d2          ; 20 iterations -> fib(20)
    fib:    move.l  d1,d3
            add.l   d0,d1
            move.l  d3,d0
            dbra    d2,fib
        """)
        assert cpu.d[0] == 6765


class TestInterruptInteraction:
    def test_nested_subroutine_with_interrupts(self):
        """Interrupts firing mid-computation must not corrupt it."""
        from tests.m68k_utils import make_cpu
        cpu, mem = make_cpu("""
            lea     isr,a0
            move.l  a0,$64          ; level 1 autovector
            move    #$2000,sr
            moveq   #0,d0
            move.w  #999,d1
    loop:   addq.l  #1,d0
            dbra    d1,loop
            bra.s   done
    isr:    addq.l  #1,$3000        ; count interrupts
            rte
    done:
        """)
        fired = 0
        while not cpu.stopped and cpu.instructions < 100_000:
            cpu.run(100)
            if fired < 5 and not cpu.stopped:
                cpu.set_irq(1)
                cpu.step()
                cpu.set_irq(0)
                fired += 1
        assert cpu.d[0] == 1000  # computation unharmed
        assert mem.read32(0x3000) == 5


class TestDisassemblerCoverage:
    def test_disassembles_whole_test_programs(self):
        """The disassembler round-trips every instruction the assembler
        emits for a representative program."""
        from repro.m68k.asm import assemble
        from repro.m68k.disasm import disassemble_one

        source = """
            lea     table(pc),a0
            moveq   #4,d0
    loop:   move.w  (a0)+,d1
            mulu    #3,d1
            move.w  d1,-(sp)
            addq.l  #2,sp
            dbra    d0,loop
            movem.l d0-d2/a0,-(sp)
            movem.l (sp)+,d0-d2/a0
            jsr     sub
            bra.s   over
    sub:    rts
    table:  dc.w    1, 2, 3, 4, 5
    over:   nop
        """
        program = assemble(source, origin=0x1000)
        blob = program.blob

        def fetch(addr):
            off = addr - 0x1000
            return (blob[off] << 8) | blob[off + 1]

        addr = 0x1000
        seen = []
        while addr < 0x1000 + program.symbols["table"] - 0x1000:
            text, length = disassemble_one(fetch, addr)
            assert not text.startswith("dc.w"), f"undecoded at {addr:#x}: {text}"
            seen.append(text)
            addr += length
        assert any("mulu" in t for t in seen)
        assert any("movem" in t for t in seen)
