"""Stable, versioned JSON round-trips for the fleet's two payload
types (CollectedSession, ResilientReplayResult) and the gremlins
entropy-seed derivation fix."""

import json

import pytest

from repro.emulator.playback import PlaybackResult
from repro.resilience import (
    ReplayFormatError,
    ResilientReplayResult,
    resilient_replay,
)
from repro.resilience.salvage import salvage_log
from repro.resilience.watchdog import (
    Divergence,
    DivergenceKind,
    DivergenceReport,
)
from repro.tracelog import ActivityLog
from repro.tracelog.records import LogEventType, LogRecord
from repro.workloads import (
    CollectedSession,
    SessionFormatError,
    derive_entropy_seed,
    gremlin_session,
)
from repro.workloads.sessions import SESSION_JSON_VERSION


@pytest.fixture(scope="module")
def session():
    return gremlin_session(seed=13, events=40)


class TestCollectedSessionJson:
    def test_round_trip_is_stable(self, session):
        blob = session.to_json()
        wire = json.loads(json.dumps(blob))  # force a real JSON trip
        clone = CollectedSession.from_json(wire)
        assert clone.to_json() == blob

    def test_round_trip_preserves_replayability(self, session):
        clone = CollectedSession.from_json(session.to_json())
        assert clone.name == session.name
        assert clone.events == session.events
        assert len(clone.final_state) == len(session.final_state)
        assert [(int(r.type), r.tick, r.rtc, r.data) for r in clone.log] \
            == [(int(r.type), r.tick, r.rtc, r.data) for r in session.log]
        outcome = resilient_replay(
            clone.initial_state, clone.log,
            apps=__import__("repro.apps", fromlist=["x"]).standard_apps(),
            profile=False,
            emulator_kwargs={"ram_size": 8 << 20, "flash_size": 1 << 20})
        assert outcome.clean

    def test_rejects_wrong_format_and_version(self, session):
        with pytest.raises(SessionFormatError):
            CollectedSession.from_json({"_format": "something-else"})
        blob = session.to_json()
        blob["_version"] = SESSION_JSON_VERSION + 1
        with pytest.raises(SessionFormatError):
            CollectedSession.from_json(blob)

    def test_rejects_truncated_container(self, session):
        blob = session.to_json()
        del blob["initial_state"]
        with pytest.raises(SessionFormatError):
            CollectedSession.from_json(blob)


class TestResilientReplayResultJson:
    def _result(self) -> ResilientReplayResult:
        report = DivergenceReport(
            divergences=[Divergence(
                kind=DivergenceKind.PAYLOAD_MISMATCH,
                event_type=int(LogEventType.PEN), index=3,
                expected=LogRecord(LogEventType.PEN, 100, 7, 0xDEAD),
                actual=LogRecord(LogEventType.PEN, 100, 7, 0xBEEF),
                tick=104, detail="payload differs")],
            last_good_tick=80, first_bad_tick=110, retries=2,
            static_hints=["SysRandom reachable without hack"])
        return ResilientReplayResult(
            result=PlaybackResult(events_injected=5, seeds_served=2,
                                  start_tick=10, end_tick=900,
                                  instructions=12345,
                                  delays_applied=[3, 0, 7]),
            report=report, tainted=True, retries=2,
            salvage=salvage_log(ActivityLog()),
            fault_notes=["bitflip: corrupted record 3"])

    def test_round_trip_is_stable(self):
        blob = self._result().to_json()
        wire = json.loads(json.dumps(blob))
        clone = ResilientReplayResult.from_json(wire)
        assert clone.to_json() == blob
        assert clone.tainted and clone.retries == 2
        first = clone.report.divergences[0]
        assert first.kind is DivergenceKind.PAYLOAD_MISMATCH
        assert first.expected.data == 0xDEAD
        assert first.actual.data == 0xBEEF

    def test_minimal_result_round_trips(self):
        outcome = ResilientReplayResult(result=PlaybackResult())
        blob = outcome.to_json()
        clone = ResilientReplayResult.from_json(blob)
        assert clone.to_json() == blob
        assert clone.report is None and clone.salvage is None
        assert clone.clean

    def test_rejects_wrong_format_and_version(self):
        with pytest.raises(ReplayFormatError):
            ResilientReplayResult.from_json({"_format": "nope"})
        blob = ResilientReplayResult(result=PlaybackResult()).to_json()
        blob["_version"] = 99
        with pytest.raises(ReplayFormatError):
            ResilientReplayResult.from_json(blob)


class TestGremlinSeedDerivation:
    def test_distinct_configs_get_distinct_entropy_streams(self):
        from repro.apps import standard_apps

        apps = standard_apps()
        subset = apps[:2]
        base = derive_entropy_seed(5, apps, 300)
        assert derive_entropy_seed(5, apps, 300) == base  # deterministic
        assert derive_entropy_seed(6, apps, 300) != base      # seed
        assert derive_entropy_seed(5, subset, 300) != base    # app mix
        assert derive_entropy_seed(5, apps, 400) != base      # events
        # App order within a mix is irrelevant (sorted names).
        assert derive_entropy_seed(5, list(reversed(apps)), 300) == base

    def test_seed_is_nonzero_u32(self):
        from repro.apps import standard_apps

        for seed in range(20):
            value = derive_entropy_seed(seed, standard_apps(), 100)
            assert 0 < value < (1 << 32)
