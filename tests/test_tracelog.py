"""Tests for activity-log records, parsing, and state transfer."""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.palmos.database import DatabaseImage
from repro.tracelog import (
    ActivityLog,
    InitialState,
    LogEventType,
    LogRecord,
    parse_log,
)

log_types = st.sampled_from(list(LogEventType))
records = st.builds(
    LogRecord,
    type=log_types,
    tick=st.integers(0, 0xFFFFFFFF),
    rtc=st.integers(0, 0xFFFFFFFF),
    data=st.integers(0, 0xFFFF),  # fits both record widths
)


class TestRecords:
    def test_sizes(self):
        assert LogRecord(LogEventType.PEN, 1, 2, 3).size == 16
        assert LogRecord(LogEventType.KEYSTATE, 1, 2, 3).size == 12

    def test_encode_lengths(self):
        assert len(LogRecord(LogEventType.PEN, 1, 2, 3).encode()) == 16
        assert len(LogRecord(LogEventType.KEYSTATE, 1, 2, 3).encode()) == 12

    def test_pen_accessors(self):
        rec = LogRecord(LogEventType.PEN, 0, 0, 0x8000_3C28)
        assert rec.pen_down
        assert rec.pen_x == 0x3C
        assert rec.pen_y == 0x28

    def test_key_accessors(self):
        rec = LogRecord(LogEventType.KEY, 0, 0, 0x8000_0040)
        assert rec.key_down and rec.key_code == 0x40
        rec = LogRecord(LogEventType.KEY, 0, 0, 0x40)
        assert not rec.key_down

    @settings(max_examples=100)
    @given(records)
    def test_roundtrip(self, record):
        assert LogRecord.decode(record.encode()) == record

    @given(st.builds(LogRecord, type=st.just(LogEventType.PEN),
                     tick=st.integers(0, 2**32 - 1),
                     rtc=st.integers(0, 2**32 - 1),
                     data=st.integers(0, 2**32 - 1)))
    def test_roundtrip_full_width_data(self, record):
        assert LogRecord.decode(record.encode()) == record


class TestActivityLog:
    def _sample(self):
        return ActivityLog(records=[
            LogRecord(LogEventType.PEN, 100, 5, 0x8000_1010),
            LogRecord(LogEventType.KEY, 110, 5, 0x8000_0002),
            LogRecord(LogEventType.KEYSTATE, 120, 5, 0x0002),
            LogRecord(LogEventType.RANDOM, 130, 5, 999),
            LogRecord(LogEventType.NOTIFY, 140, 5, 7),
            LogRecord(LogEventType.PEN, 150, 6, 0x1010),
        ])

    def test_counts_and_span(self):
        log = self._sample()
        assert len(log) == 6
        assert log.elapsed_ticks() == 50
        assert log.counts_by_type()[LogEventType.PEN] == 2

    def test_storage_bytes(self):
        log = self._sample()
        assert log.storage_bytes() == 5 * 16 + 12

    def test_database_roundtrip(self):
        log = self._sample()
        image = log.to_database_image()
        back = ActivityLog.from_database_image(image)
        assert back.records == log.records

    def test_file_roundtrip(self, tmp_path):
        log = self._sample()
        path = tmp_path / "session.pdb"
        log.save(path)
        assert ActivityLog.load(path).records == log.records

    def test_parse_groups(self):
        """§2.4.2: the parsed log divides into synchronous events plus
        the KeyCurrentState and SysRandom queues."""
        parsed = parse_log(self._sample())
        assert [r.type for r in parsed.synchronous] == [
            LogEventType.PEN, LogEventType.KEY, LogEventType.PEN]
        assert len(parsed.keystate_queue) == 1
        assert len(parsed.random_queue) == 1
        assert len(parsed.notifications) == 1
        assert parsed.total == 6

    def test_parse_sorts_synchronous_by_tick(self):
        log = ActivityLog(records=[
            LogRecord(LogEventType.KEY, 200, 0, 1),
            LogRecord(LogEventType.PEN, 100, 0, 1),
        ])
        parsed = parse_log(log)
        assert [r.tick for r in parsed.synchronous] == [100, 200]


class TestInitialState:
    def test_capture_contains_flash_and_databases(self):
        from tests.palmos_utils import make_kernel
        kernel = make_kernel()
        kernel.dm_host.create("UserStuff")
        state = InitialState.capture(kernel)
        assert len(state.flash_image) == 1 << 20
        names = [db.name for db in state.databases]
        assert "UserStuff" in names
        assert "psysLaunchDB" in names

    def test_capture_sets_backup_bits(self):
        from tests.palmos_utils import make_kernel
        from repro.palmos import layout as L
        kernel = make_kernel()
        kernel.dm_host.create("Plain")
        InitialState.capture(kernel)
        db = kernel.dm_host.find("Plain")
        assert kernel.dm_host.attributes(db) & L.DM_ATTR_BACKUP

    def test_save_load_roundtrip(self, tmp_path):
        state = InitialState(
            flash_image=b"\x12\x34" * 100,
            databases=[DatabaseImage(name="One"), DatabaseImage(name="Two")],
            rtc_base=12345,
        )
        state.save(tmp_path / "session1")
        back = InitialState.load(tmp_path / "session1")
        assert back.flash_image == state.flash_image
        assert back.rtc_base == 12345
        assert [d.name for d in back.databases] == ["One", "Two"]
