"""Hardened sweep fan-out: typed worker errors, per-chunk timeouts,
and shared-memory cleanup on every exit path."""

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.cache import SweepWorkerError, sweep_paper_grid, sweep_parallel
from repro.cache import sweep as sweep_mod


def _shm_segments() -> set:
    return set(glob.glob("/dev/shm/psm_*") + glob.glob("/dev/shm/wnsm_*"))


def _addresses(n: int = 5000) -> np.ndarray:
    rng = np.random.default_rng(7)
    return rng.integers(0, 1 << 18, n, dtype=np.uint32)


# Module-level so the fork-based pool can resolve them by name.
def _raising_unit(unit):
    raise RuntimeError(f"injected failure on {unit}")


def _guarded_raising_unit(unit):
    return sweep_mod._guard(_raising_unit, unit)


def _suicide_unit(unit):
    # Simulates a worker killed out from under the pool (OOM killer,
    # operator): SIGKILL leaves the pool to respawn the process, but
    # the task itself is lost forever — only the chunk timeout notices.
    os.kill(os.getpid(), signal.SIGKILL)


def _guarded_suicide_unit(unit):
    return sweep_mod._guard(_suicide_unit, unit)


def _slow_unit(unit):
    time.sleep(30.0)
    return unit


def _guarded_slow_unit(unit):
    return sweep_mod._guard(_slow_unit, unit)


class TestSweepWorkerError:
    def test_is_not_a_value_error(self):
        """The serial fallback swallows ValueError (shared-memory setup
        failures); a worker *computation* failure must never qualify."""
        assert issubclass(SweepWorkerError, RuntimeError)
        assert not issubclass(SweepWorkerError, ValueError)

    def test_serial_worker_failure_is_typed(self):
        with pytest.raises(SweepWorkerError, match="injected failure"):
            sweep_mod._run_units(_guarded_raising_unit, ["u0"], 1,
                                 _addresses(), None)

    def test_parallel_worker_failure_is_typed_and_cleans_shm(self):
        before = _shm_segments()
        with pytest.raises(SweepWorkerError, match="injected failure"):
            sweep_mod._run_units(_guarded_raising_unit, ["u0", "u1"], 2,
                                 _addresses(), None, 60.0)
        assert _shm_segments() - before == set()

    def test_sigkilled_worker_hits_chunk_timeout_and_cleans_shm(self):
        before = _shm_segments()
        start = time.monotonic()
        with pytest.raises(SweepWorkerError, match="chunk timeout"):
            sweep_mod._run_units(_guarded_suicide_unit, ["u0"], 2,
                                 _addresses(), None, 2.0)
        assert time.monotonic() - start < 25.0
        assert _shm_segments() - before == set()

    def test_wedged_worker_hits_chunk_timeout(self):
        with pytest.raises(SweepWorkerError, match="chunk timeout"):
            sweep_mod._run_units(_guarded_slow_unit, ["u0"], 2,
                                 _addresses(), None, 1.0)


class TestSweepStillCorrect:
    def test_parallel_with_timeout_matches_grid(self):
        addresses = _addresses()
        fast = sweep_parallel(addresses, jobs=2, chunk_timeout=120.0,
                              sizes=[1024, 4096], line_sizes=[16],
                              associativities=[1, 2])
        reference = sweep_paper_grid(addresses, sizes=[1024, 4096],
                                     line_sizes=[16],
                                     associativities=[1, 2])
        assert [(p.config.size, p.config.associativity, p.misses)
                for p in fast] == \
               [(p.config.size, p.config.associativity, p.misses)
                for p in reference]
