"""Tests for the data manager: database and record operations, PDB
serialisation, HotSync export/import semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.m68k import FlatMemory
from repro.palmos import layout as L
from repro.palmos.access import HostAccess
from repro.palmos.database import (
    DatabaseImage,
    DatabaseManager,
    DmError,
    RecordImage,
    fourcc,
    fourcc_str,
)
from repro.palmos.heap import Heap


def make_dm(now=lambda: 1_000_000) -> DatabaseManager:
    mem = FlatMemory(1 << 21)
    heap = Heap(HostAccess(mem), 0x10000, 0x200000, rover_global=0x100)
    heap.format()
    return DatabaseManager(HostAccess(mem), heap, now)


class TestDatabaseLifecycle:
    def test_create_and_find(self):
        dm = make_dm()
        db = dm.create("TestDB", "DATA", "test")
        assert db
        assert dm.find("TestDB") == db
        assert dm.find("Other") == 0

    def test_create_duplicate_raises(self):
        dm = make_dm()
        dm.create("TestDB")
        with pytest.raises(DmError):
            dm.create("TestDB")

    def test_creation_stamps_dates(self):
        dm = make_dm(now=lambda: 42_000)
        db = dm.create("TestDB")
        image = dm.export_database(db)
        assert image.creation_date == 42_000
        assert image.modification_date == 42_000
        assert image.last_backup_date == 0

    def test_delete_unlinks_and_frees(self):
        dm = make_dm()
        dm.create("A")
        dm.create("C")
        before = dm.heap.free_bytes()
        db_b = dm.create("B")
        dm.new_record(db_b, 0, 100)
        dm.delete("B")  # must return both the header and record chunks
        assert dm.find("B") == 0
        assert [dm.name_of(d) for d in dm.list_databases()] == ["A", "C"]
        assert dm.heap.free_bytes() == before

    def test_delete_missing_raises(self):
        dm = make_dm()
        with pytest.raises(DmError):
            dm.delete("Nope")

    def test_name_truncated_to_31_chars(self):
        dm = make_dm()
        long_name = "X" * 50
        db = dm.create(long_name)
        assert dm.name_of(db) == "X" * 31

    def test_list_preserves_creation_order(self):
        dm = make_dm()
        for name in ["one", "two", "three"]:
            dm.create(name)
        assert [dm.name_of(d) for d in dm.list_databases()] == [
            "one", "two", "three"]


class TestRecords:
    def test_new_record_append_and_read(self):
        dm = make_dm()
        db = dm.create("DB")
        addr = dm.new_record(db, 0, 8)
        dm.access.write_bytes(addr, b"ABCDEFGH")
        assert dm.num_records(db) == 1
        assert dm.read_record(db, 0) == b"ABCDEFGH"

    def test_append_via_max_index(self):
        dm = make_dm()
        db = dm.create("DB")
        for i in range(5):
            addr = dm.new_record(db, L.DM_MAX_RECORD_INDEX, 1)
            dm.access.write8(addr, i)
        assert [dm.read_record(db, i)[0] for i in range(5)] == [0, 1, 2, 3, 4]

    def test_insert_at_front_and_middle(self):
        dm = make_dm()
        db = dm.create("DB")
        for value in [10, 30]:
            addr = dm.new_record(db, L.DM_MAX_RECORD_INDEX, 1)
            dm.access.write8(addr, value)
        addr = dm.new_record(db, 1, 1)
        dm.access.write8(addr, 20)
        addr = dm.new_record(db, 0, 1)
        dm.access.write8(addr, 5)
        assert [dm.read_record(db, i)[0] for i in range(4)] == [5, 10, 20, 30]

    def test_out_of_range_index_raises(self):
        dm = make_dm()
        db = dm.create("DB")
        dm.new_record(db, 0, 4)
        with pytest.raises(DmError):
            dm.get_record(db, 1)
        with pytest.raises(DmError):
            dm.new_record(db, 5, 4)

    def test_remove_record(self):
        dm = make_dm()
        db = dm.create("DB")
        for value in [1, 2, 3]:
            addr = dm.new_record(db, L.DM_MAX_RECORD_INDEX, 1)
            dm.access.write8(addr, value)
        dm.remove_record(db, 1)
        assert dm.num_records(db) == 2
        assert [dm.read_record(db, i)[0] for i in range(2)] == [1, 3]

    def test_write_record_bounds_checked(self):
        dm = make_dm()
        db = dm.create("DB")
        dm.new_record(db, 0, 4)
        with pytest.raises(DmError):
            dm.write_record(db, 0, 2, b"ABCD")  # over the end

    def test_unique_ids_increase(self):
        dm = make_dm()
        db = dm.create("DB")
        for _ in range(3):
            dm.new_record(db, L.DM_MAX_RECORD_INDEX, 1)
        uids = [dm.record_info(db, i)[1] for i in range(3)]
        assert uids == sorted(uids)
        assert len(set(uids)) == 3

    def test_record_info_and_set(self):
        dm = make_dm()
        db = dm.create("DB")
        dm.new_record(db, 0, 10)
        dm.set_record_info(db, 0, attr=0x40, uid=0x123456)
        attr, uid, size = dm.record_info(db, 0)
        assert (attr, uid, size) == (0x40, 0x123456, 10)

    def test_modification_tracking(self):
        times = iter(range(1000, 2000))
        dm = make_dm(now=lambda: next(times))
        db = dm.create("DB")
        img0 = dm.export_database(db)
        dm.new_record(db, 0, 4)
        img1 = dm.export_database(db)
        assert img1.modification_number == img0.modification_number + 1
        assert img1.modification_date > img0.modification_date


class TestBackupAndTransfer:
    def test_set_backup_bits_all(self):
        dm = make_dm()
        for name in ["A", "B"]:
            dm.create(name)
        dm.set_backup_bits_all()
        for db in dm.list_databases():
            assert dm.attributes(db) & L.DM_ATTR_BACKUP

    def test_export_import_roundtrip(self):
        dm = make_dm()
        db = dm.create("Data", "DATA", "mine")
        for i in range(4):
            addr = dm.new_record(db, L.DM_MAX_RECORD_INDEX, 3)
            dm.access.write_bytes(addr, bytes([i, i + 1, i + 2]))
        image = dm.export_database(db)

        dm2 = make_dm()
        db2 = dm2.import_database(image, imported=False)
        image2 = dm2.export_database(db2)
        assert image == image2

    def test_import_zeroes_dates(self):
        """The paper's §3.4 observation: imported databases have zero
        CREATION/LAST BACKUP dates."""
        dm = make_dm(now=lambda: 99_999)
        db = dm.create("Data")
        image = dm.export_database(db)
        assert image.creation_date == 99_999

        dm2 = make_dm()
        db2 = dm2.import_database(image, imported=True)
        image2 = dm2.export_database(db2)
        assert image2.creation_date == 0
        assert image2.last_backup_date == 0
        assert image2.modification_date == 0

    def test_import_replaces_existing(self):
        dm = make_dm()
        dm.create("Data")
        image = DatabaseImage(name="Data",
                              records=[RecordImage(0, 1, b"xy")])
        dm.import_database(image)
        db = dm.find("Data")
        assert dm.num_records(db) == 1
        assert dm.read_record(db, 0) == b"xy"


class TestPdbFormat:
    def test_roundtrip(self):
        image = DatabaseImage(
            name="MemoDB", type="DATA", creator="memo",
            attributes=0x0008, version=1,
            creation_date=123, modification_date=456, last_backup_date=789,
            modification_number=7, unique_id_seed=42,
            records=[RecordImage(0x40, 1, b"hello"),
                     RecordImage(0x00, 2, b""),
                     RecordImage(0x00, 3, bytes(range(100)))],
        )
        blob = image.to_pdb_bytes()
        back = DatabaseImage.from_pdb_bytes(blob)
        assert back == image

    def test_header_is_78_bytes(self):
        image = DatabaseImage(name="X")
        blob = image.to_pdb_bytes()
        assert len(blob) == 78

    def test_fourcc(self):
        assert fourcc("DATA") == 0x44415441
        assert fourcc_str(0x44415441) == "DATA"

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=50), max_size=10))
    def test_roundtrip_property(self, payloads):
        image = DatabaseImage(
            name="P", records=[RecordImage(0, i + 1, p)
                               for i, p in enumerate(payloads)])
        assert DatabaseImage.from_pdb_bytes(image.to_pdb_bytes()) == image


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["append", "insert0", "remove"]),
                          st.integers(0, 255)), max_size=40))
def test_record_list_matches_model(ops):
    """The guest record list behaves like a plain Python list."""
    dm = make_dm()
    db = dm.create("Model")
    model = []
    for op, value in ops:
        if op == "append":
            addr = dm.new_record(db, L.DM_MAX_RECORD_INDEX, 1)
            dm.access.write8(addr, value)
            model.append(value)
        elif op == "insert0":
            addr = dm.new_record(db, 0, 1)
            dm.access.write8(addr, value)
            model.insert(0, value)
        elif op == "remove" and model:
            index = value % len(model)
            dm.remove_record(db, index)
            model.pop(index)
    assert dm.num_records(db) == len(model)
    assert [dm.read_record(db, i)[0] for i in range(len(model))] == model
