"""Tests for the guest memory sanitizer: shadow encoding, heap
integration, the static elision prover, and one deterministic
regression test per defect class (exact address and severity)."""

import pytest

from repro.analysis.sanitizer import (
    A_BIT,
    D_BIT,
    MemorySanitizer,
    OK,
    ShadowMap,
    compute_elision,
)
from repro.analysis.sanitizer import corpus
from repro.analysis.sanitizer.elide import STACK_SLACK
from repro.analysis.static.dataflow import analyze_constprop
from repro.analysis.static.findings import Severity
from repro.analysis.static.walker import walk
from repro.m68k.asm import assemble
from repro.palmos import layout as L
from repro.palmos.heap import HeapError
from repro.palmos.kernel import PalmOS
from repro.palmos.traps import Trap


# ----------------------------------------------------------------------
# Shadow map
# ----------------------------------------------------------------------
class TestShadowMap:
    def test_everything_starts_ok(self):
        sh = ShadowMap(0x1000, 0x2000)
        assert sh.state(0x1000) == OK
        assert sh.state(0x1FFF) == OK

    def test_mark_and_query(self):
        sh = ShadowMap(0x1000, 0x2000)
        sh.mark_noaccess(0x1100, 0x10)
        sh.mark_undefined(0x1200, 0x10)
        assert sh.state(0x1100) == 0
        assert sh.state(0x1200) == A_BIT
        assert sh.state(0x1210) == OK

    def test_set_defined_preserves_noaccess(self):
        """A write into a red zone must not make it addressable."""
        sh = ShadowMap(0x1000, 0x2000)
        sh.mark_noaccess(0x1100, 4)
        sh.mark_undefined(0x1104, 4)
        sh.set_defined(0x1100, 8)
        assert sh.state(0x1100) == D_BIT          # still unaddressable
        assert sh.state(0x1104) == OK             # now defined

    def test_fill_clamps_to_window(self):
        sh = ShadowMap(0x1000, 0x1100)
        sh.mark_noaccess(0x0F00, 0x1000)          # spans the whole window
        assert sh.state(0x1000) == 0
        assert sh.state(0x10FF) == 0

    def test_first_missing(self):
        sh = ShadowMap(0x1000, 0x2000)
        sh.mark_undefined(0x1104, 2)
        assert sh.first_missing(0x1100, 8, OK) == 0x1104
        assert sh.first_missing(0x1104, 2, A_BIT) == 0x1104

    def test_wide_probe_at_window_end_is_safe(self):
        sh = ShadowMap(0x1000, 0x2000)
        raw = sh.raw
        off = 0x1FFF - 0x1000
        # The +4 padding keeps the widest access in range.
        assert raw[off] & raw[off + 1] & raw[off + 2] & raw[off + 3] is not None

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            ShadowMap(0x2000, 0x2000)


# ----------------------------------------------------------------------
# Defect corpus: one deterministic regression test per class
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def corpus_results():
    return {r.program.name: r for r in corpus.run_corpus()}


def _single_finding(result):
    assert len(result.findings) == 1, result.findings
    return result.findings[0]


class TestDefectCorpus:
    def test_oob_read(self, corpus_results):
        r = corpus_results["oob-read"]
        code, severity, address = _single_finding(r)
        assert code == "san-oob-read"
        assert severity == "ERROR"
        assert address == r.ptr + 32          # first byte past the payload

    def test_oob_write(self, corpus_results):
        r = corpus_results["oob-write"]
        code, severity, address = _single_finding(r)
        assert code == "san-oob-write"
        assert severity == "ERROR"
        assert address == r.ptr + 16

    def test_use_after_free(self, corpus_results):
        r = corpus_results["uaf"]
        code, severity, address = _single_finding(r)
        assert code == "san-uaf"
        assert severity == "ERROR"
        assert address == r.ptr

    def test_double_free(self, corpus_results):
        r = corpus_results["double-free"]
        code, severity, address = _single_finding(r)
        assert code == "san-double-free"
        assert severity == "ERROR"
        assert address == r.ptr

    def test_uninit_read(self, corpus_results):
        r = corpus_results["uninit-read"]
        code, severity, address = _single_finding(r)
        assert code == "san-uninit-read"
        assert severity == "WARNING"
        assert address == r.ptr

    def test_leak(self, corpus_results):
        r = corpus_results["leak"]
        code, severity, address = _single_finding(r)
        assert code == "san-leak"
        assert severity == "WARNING"
        assert address == r.ptr

    def test_clean_program_reports_nothing(self, corpus_results):
        assert corpus_results["clean"].findings == []

    def test_allocations_are_deterministic(self, corpus_results):
        """Baselines store absolute addresses; the heap walk must hand
        every program the same pointer on every run."""
        ptrs = {r.ptr for r in corpus_results.values()}
        assert len(ptrs) == 1
        assert ptrs.pop() == L.DYNAMIC_HEAP_BASE + L.CHUNK_HEADER_SIZE + 16

    def test_every_program_elides_something(self, corpus_results):
        for r in corpus_results.values():
            assert r.elision.proven_insns > 0
            assert r.san_stats["elided"] > 0

    def test_differential_elided_vs_full(self):
        assert corpus.differential() == []

    def test_baseline_round_trip(self, corpus_results):
        results = list(corpus_results.values())
        baseline = corpus.baseline_keys(results)
        assert corpus.new_findings_against(results, baseline) == []
        assert corpus.missing_classes(results) == []
        # A finding absent from the baseline is reported as new.
        baseline["oob-read"] = []
        fresh = corpus.new_findings_against(results, baseline)
        assert ("oob-read", "san-oob-read",
                results[0].ptr + 32) in fresh


# ----------------------------------------------------------------------
# Heap integration through the real trap path
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sanitized_kernel():
    kernel = PalmOS(ram_size=2 << 20)
    kernel.boot()
    san = MemorySanitizer()
    san.attach(kernel)
    return kernel, san


class TestHeapIntegration:
    def test_red_zones_surround_payload(self, sanitized_kernel):
        kernel, san = sanitized_kernel
        ptr = kernel.call_trap(Trap.MemPtrNew, 32)
        assert ptr
        info = san.live[ptr]
        assert info.chunk == ptr - san.redzone
        # Front red zone, undefined payload, tail red zone.
        assert san._shadow.state(ptr - 1) == 0
        assert san._shadow.state(ptr) == A_BIT
        assert san._shadow.state(ptr + 32) == 0
        kernel.call_trap(Trap.MemPtrFree, ptr)

    def test_freed_chunk_is_quarantined_noaccess(self, sanitized_kernel):
        kernel, san = sanitized_kernel
        ptr = kernel.call_trap(Trap.MemPtrNew, 16)
        kernel.call_trap(Trap.MemPtrFree, ptr)
        assert ptr in san._quarantined
        assert san._shadow.state(ptr) == 0

    def test_double_free_returns_error_code(self, sanitized_kernel):
        kernel, san = sanitized_kernel
        ptr = kernel.call_trap(Trap.MemPtrNew, 16)
        assert kernel.call_trap(Trap.MemPtrFree, ptr) == 0
        before = len(san.report)
        err = kernel.call_trap(Trap.MemPtrFree, ptr)
        assert err != 0                      # ERR_MEM_INVALID_PTR
        assert len(san.report) == before + 1

    def test_mem_ptr_size_reports_requested_size(self, sanitized_kernel):
        kernel, san = sanitized_kernel
        ptr = kernel.call_trap(Trap.MemPtrNew, 40)
        # Red zones pad the chunk, but the guest-visible size is exact.
        assert kernel.call_trap(Trap.MemPtrSize, ptr) == 40
        kernel.call_trap(Trap.MemPtrFree, ptr)

    def test_kernel_writes_mark_defined(self, sanitized_kernel):
        kernel, san = sanitized_kernel
        ptr = kernel.call_trap(Trap.MemPtrNew, 8)
        assert san._shadow.state(ptr) == A_BIT
        # MemSet runs as kernel microcode: exempt from checking but the
        # bytes it writes become defined.
        kernel.call_trap(Trap.MemSet, ptr, 8, 0xAA)
        assert san._shadow.state(ptr) == OK
        kernel.call_trap(Trap.MemPtrFree, ptr)

    def test_quarantine_drains_under_pressure(self, sanitized_kernel):
        kernel, san = sanitized_kernel
        ptrs = [kernel.call_trap(Trap.MemPtrNew, 24) for _ in range(20)]
        for ptr in ptrs:
            kernel.call_trap(Trap.MemPtrFree, ptr)
        assert len(san._quarantined) <= san.quarantine_chunks


# ----------------------------------------------------------------------
# Static elision prover
# ----------------------------------------------------------------------
def _elision_of(source, heap_hi=0x200000):
    program = assemble(source, origin=0x14000)
    blob = program.image(0x14000, 0x100)

    def fetch(addr):
        off = addr - 0x14000
        return (blob[off] << 8) | blob[off + 1]

    end = 0x14000 + max(len(b) + a - 0x14000 for a, b in program.segments)
    cfg = walk(fetch, [0x14000], code_range=(0x14000, end))
    const = analyze_constprop(cfg, fetch)
    return compute_elision(cfg, const, heap_hi=heap_hi)


class TestElision:
    def test_stack_slot_proven(self):
        res = _elision_of("move.l d0,-(sp)\n rts")
        assert res.proven_insns == 1
        assert res.by_rule["stack"] == 1

    def test_const_outside_window_proven(self):
        res = _elision_of("move.l d0,$13ffc\n rts")
        assert res.proven_insns == 1
        assert res.by_rule["const"] == 1

    def test_const_inside_window_not_proven(self):
        res = _elision_of(f"move.l d0,${L.DYNAMIC_HEAP_BASE + 0x100:x}\n rts")
        assert res.proven_insns == 0
        assert res.candidate_insns == 1

    def test_unknown_base_not_proven(self):
        res = _elision_of("move.l (a0),d0\n rts")
        assert res.proven_insns == 0

    def test_deep_stack_offset_not_proven(self):
        # Beyond the slack the entry-A7 assumption no longer bounds it.
        deep = STACK_SLACK + 4
        res = _elision_of(f"lea -{deep}(sp),a1\n move.l d0,-{deep}(sp)\n rts")
        assert res.by_rule["stack"] == 0

    def test_pc_window_covers_extension_words(self):
        res = _elision_of("move.l d0,$13ffc\n rts")
        insn_addr = 0x14000
        # move.l d0,(xxx).l = opcode + two extension words (6 bytes):
        # pc sweeps [addr+2, addr+6] during execution.
        for pc in (insn_addr + 2, insn_addr + 4, insn_addr + 6):
            assert pc in res.safe_pcs
        assert insn_addr not in res.safe_pcs

    def test_attribution_maps_pc_to_insn(self):
        res = _elision_of("move.l d0,$13ffc\n rts")
        assert res.attribution[0x14002] == 0x14000
        assert res.attribution[0x14006] == 0x14000


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_detach_restores_hooks(self):
        kernel = PalmOS(ram_size=2 << 20)
        kernel.boot()
        san = MemorySanitizer()
        san.attach(kernel)
        assert kernel.device.mem.san is san
        assert kernel.dyn_heap.san is san
        san.detach()
        assert kernel.device.mem.san is None
        assert kernel.dyn_heap.san is None
        assert kernel.sanitizer is None

    def test_double_attach_rejected(self):
        kernel = PalmOS(ram_size=2 << 20)
        kernel.boot()
        san = MemorySanitizer()
        san.attach(kernel)
        with pytest.raises(RuntimeError):
            san.attach(kernel)
        san.detach()

    def test_leak_check_only_flags_app_chunks(self):
        kernel = PalmOS(ram_size=2 << 20)
        kernel.boot()
        san = MemorySanitizer()
        san.attach(kernel)
        ptr = kernel.call_trap(Trap.MemPtrNew, 24)   # OWNER_APP
        report = san.detach()
        leaks = [f for f in report if f.code == "san-leak"]
        assert len(leaks) == 1
        assert leaks[0].address == ptr
        assert leaks[0].severity == Severity.WARNING
