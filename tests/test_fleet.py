"""Fleet orchestration: campaign expansion, aggregates, journal,
supervision, chaos recovery, and the kill-and-resume guarantee.

The expensive acceptance tests (worker crash → quarantine, SIGKILL the
orchestrator → resume → bit-identical aggregates) run real worker
processes over tiny gremlin sessions, so this file leans on small
campaigns (2–6 sessions, ~100 events each) to stay inside the tier-1
budget.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    AggregateError,
    CampaignFormatError,
    CampaignJournal,
    CampaignSpec,
    ChaosPlan,
    JournalError,
    PopulationAggregate,
    read_journal,
    replay_journal,
    run_campaign,
    verify_chaos,
)
from repro.fleet.aggregate import STATS_KEYS, percentile
from repro.fleet.journal import JOURNAL_NAME
from repro.fleet.supervisor import resume_campaign

# A deliberately tiny campaign: one cell, short gremlin sessions.
TINY = dict(
    app_mixes=(("launcher", "memopad"),),
    behaviors=("gremlins",),
    durations=(0.01,),
    caches=((8192, 32, 4),),
)


def tiny_spec(sessions: int, seed: int = 11, **kw) -> CampaignSpec:
    merged = dict(TINY)
    merged.update(kw)
    return CampaignSpec(name="tiny", sessions=sessions, seed=seed, **merged)


def fake_stats(index: int, **overrides) -> dict:
    stats = {
        "session_id": f"s{index:05d}",
        "cell_index": index % 3,
        "cell": f"cell-{index % 3}",
        "behavior": "gremlins",
        "seed": 100 + index,
        "events": 50 + index,
        "elapsed_ticks": 1000 * (index + 1),
        "collect_instructions": 10_000 + index,
        "replay_instructions": 20_000 + index,
        "events_injected": 40 + index,
        "accesses": 5000 + index,
        "hits": 4900 + index,
        "misses": 100,
        "writebacks": 0,
        "miss_rate": 0.02 + index * 1e-4,
        "energy_cached": 5.0,
        "energy_no_cache": 40.0,
        "energy_savings": 0.87 - index * 1e-3,
        "replay_overhead": 2.0 + index * 0.1,
        "divergences": 0,
        "tainted": False,
        "salvage_dropped": 0,
        "salvage_repaired": 0,
    }
    stats.update(overrides)
    return stats


# ----------------------------------------------------------------------
# Campaign spec
# ----------------------------------------------------------------------

class TestCampaignSpec:
    def test_expansion_is_deterministic(self):
        a = tiny_spec(12).expand()
        b = tiny_spec(12).expand()
        assert a == b
        assert [p.index for p in a] == list(range(12))
        assert len({p.seed for p in a}) == 12

    def test_grid_round_robin_and_growth_stability(self):
        spec = CampaignSpec(name="g", sessions=8, seed=3,
                            app_mixes=(("launcher", "memopad"),),
                            behaviors=("scripted", "gremlins"),
                            durations=(0.01,), caches=((4096, 16, 2),))
        cells = spec.cells()
        assert len(cells) == 2
        plans = spec.expand()
        assert [p.cell.index for p in plans] == [0, 1, 0, 1, 0, 1, 0, 1]
        # Growing the campaign never renumbers existing sessions.
        bigger = CampaignSpec.from_json(spec.to_json())
        bigger.sessions = 12
        assert bigger.expand()[:8] == plans

    def test_json_round_trip_and_digest(self):
        spec = tiny_spec(5)
        clone = CampaignSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert clone == spec
        assert clone.digest() == spec.digest()
        clone.sessions += 1
        assert clone.digest() != spec.digest()

    def test_rejects_mix_without_launcher(self):
        with pytest.raises(CampaignFormatError):
            tiny_spec(2, app_mixes=(("memopad",),))

    def test_rejects_unknown_behavior(self):
        with pytest.raises(CampaignFormatError):
            tiny_spec(2, behaviors=("chaotic",))


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------

class TestAggregate:
    def test_stats_keys_complete(self):
        assert set(fake_stats(0)) == set(STATS_KEYS)

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile([], 50) == 0.0

    def test_conflicting_stats_rejected(self):
        agg = PopulationAggregate()
        agg.add(0, fake_stats(0))
        agg.add(0, fake_stats(0))  # idempotent
        with pytest.raises(AggregateError):
            agg.add(0, fake_stats(0, misses=999))

    def test_done_beats_quarantine_regardless_of_order(self):
        a = PopulationAggregate()
        a.quarantine(1, "boom")
        a.add(1, fake_stats(1))
        assert 1 not in a.quarantined
        b = PopulationAggregate()
        b.add(1, fake_stats(1))
        b.quarantine(1, "boom")
        assert b.to_json() == a.to_json()

    def test_json_round_trip(self):
        agg = PopulationAggregate()
        for i in (3, 0, 2):
            agg.add(i, fake_stats(i))
        agg.quarantine(7, "poisoned")
        clone = PopulationAggregate.from_json(
            json.loads(json.dumps(agg.to_json())))
        assert clone.to_json() == agg.to_json()

    @given(st.permutations(list(range(8))),
           st.permutations(list(range(8))))
    @settings(max_examples=20, deadline=None)
    def test_merge_is_order_independent(self, order_a, order_b):
        """The resume guarantee's algebra: any arrival order, any
        split into partial aggregates, same canonical serialization."""
        def build(order):
            agg = PopulationAggregate()
            for i in order:
                if i % 4 == 3:
                    agg.quarantine(i, f"reason-{i}")
                else:
                    agg.add(i, fake_stats(i))
            return agg

        split = len(order_a) // 2
        left, right = build(order_a[:split]), build(order_a[split:])
        merged = left.merge(right)
        rebuilt = build(order_b)
        assert merged.to_json() == rebuilt.to_json()
        # Merging is also commutative and idempotent.
        assert right.merge(left).to_json() == merged.to_json()
        assert merged.merge(merged).to_json() == merged.to_json()


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------

class TestJournal:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        with CampaignJournal(path) as journal:
            journal.append({"kind": "start", "index": 0, "attempt": 0})
            journal.append({"kind": "done", "index": 0,
                            "stats": fake_stats(0)})
        entries = read_journal(path)
        assert [e["kind"] for e in entries] == ["start", "done"]
        completed, quarantined = replay_journal(iter(entries))
        assert set(completed) == {0} and not quarantined

    def test_torn_tail_tolerated_and_sealed(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        with CampaignJournal(path) as journal:
            journal.append({"kind": "start", "index": 0, "attempt": 0})
        with open(path, "a") as handle:
            handle.write('{"kind": "done", "index": 0, "sta')  # torn write
        assert [e["kind"] for e in read_journal(path)] == ["start"]
        # A resumed journal truncates the tear before appending.
        with CampaignJournal(path) as journal:
            journal.append({"kind": "quarantine", "index": 1,
                            "reason": "x"})
        kinds = [e["kind"] for e in read_journal(path)]
        assert kinds == ["start", "quarantine"]

    def test_edited_journal_rejected(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_text('{"kind": "surprise"}\n')
        with pytest.raises(JournalError):
            read_journal(path)

    def test_midfile_corruption_rejected(self, tmp_path):
        # A torn *final* line is a crash artifact; an undecodable line
        # anywhere earlier is corruption and must not be skipped.
        path = tmp_path / JOURNAL_NAME
        path.write_text('{"kind": "start", "index": 0, "attempt": 0}\n'
                        '{"kind": "done", "index": 0, "sta\n'
                        '{"kind": "quarantine", "index": 1, "reason": "x"}\n')
        with pytest.raises(JournalError):
            read_journal(path)

    def test_quarantine_then_done_is_rescued(self):
        entries = [
            {"kind": "quarantine", "index": 2, "reason": "flaky"},
            {"kind": "done", "index": 2, "stats": fake_stats(2)},
        ]
        completed, quarantined = replay_journal(iter(entries))
        assert set(completed) == {2} and not quarantined


# ----------------------------------------------------------------------
# Chaos planning
# ----------------------------------------------------------------------

class TestChaosPlan:
    def test_victims_disjoint_and_deterministic(self):
        a = ChaosPlan.plan(16, seed=4, crashes=2, stalls=2, poisons=2)
        b = ChaosPlan.plan(16, seed=4, crashes=2, stalls=2, poisons=2)
        assert a == b
        all_victims = (a.crash_victims + a.stall_victims + a.poison_victims)
        assert len(all_victims) == len(set(all_victims)) == 6
        directives = a.directives()
        assert set(directives) == set(all_victims)
        for index in a.crash_victims:
            assert directives[index]["mode"] == "crash"
            assert directives[index]["attempts"] == [0]

    def test_plan_rejects_oversubscription(self):
        with pytest.raises(ValueError):
            ChaosPlan.plan(2, crashes=1, stalls=1, poisons=1)


# ----------------------------------------------------------------------
# Live campaigns (real worker processes)
# ----------------------------------------------------------------------

class TestLiveCampaign:
    def test_clean_campaign_completes(self, tmp_path):
        result = run_campaign(tiny_spec(2), tmp_path / "c", jobs=2,
                              hang_timeout=300.0)
        assert result.complete
        assert result.completed == 2 and result.quarantined == 0
        data = json.loads((tmp_path / "c" / "aggregates.json").read_text())
        assert sorted(data["sessions"]) == ["0", "1"]
        for stats in data["sessions"].values():
            assert stats["events"] > 0
            assert 0.0 < stats["miss_rate"] < 1.0
            assert stats["energy_savings"] > 0.5

    def test_worker_crash_is_retried_then_quarantined(self, tmp_path):
        # Crash on EVERY attempt: the session must exhaust its retry
        # budget and land in quarantine without sinking the campaign.
        chaos = {1: {"mode": "crash", "stage": "collect",
                     "attempts": [0, 1, 2, 3]}}
        result = run_campaign(tiny_spec(2), tmp_path / "c", jobs=1,
                              retries=1, backoff_base=0.05,
                              hang_timeout=300.0, chaos=chaos)
        assert result.complete
        assert result.completed == 1
        assert result.quarantined == 1
        assert result.crashes >= 2  # attempt 0 and the retry
        assert 1 in result.aggregate.quarantined
        entries = read_journal(tmp_path / "c" / JOURNAL_NAME)
        kinds = [e["kind"] for e in entries if e.get("index") == 1]
        assert kinds.count("fail") == 2
        assert kinds[-1] == "quarantine"

    def test_crash_once_recovers_bit_identically(self, tmp_path):
        chaos = {0: {"mode": "crash", "stage": "replay", "attempts": [0]}}
        faulty = run_campaign(tiny_spec(2), tmp_path / "faulty", jobs=1,
                              retries=2, backoff_base=0.05,
                              hang_timeout=300.0, chaos=chaos)
        clean = run_campaign(tiny_spec(2), tmp_path / "clean", jobs=1,
                             hang_timeout=300.0)
        assert faulty.complete and clean.complete
        assert faulty.crashes == 1
        assert ((tmp_path / "faulty" / "aggregates.json").read_bytes()
                == (tmp_path / "clean" / "aggregates.json").read_bytes())

    def test_resume_refuses_mismatched_spec(self, tmp_path):
        run_campaign(tiny_spec(2), tmp_path / "c", jobs=1,
                     hang_timeout=300.0)
        other = tiny_spec(3)
        with pytest.raises(JournalError):
            run_campaign(other, tmp_path / "c", jobs=1, resume=True,
                         hang_timeout=300.0)


@pytest.mark.slow
class TestKillAndResume:
    def test_sigkilled_orchestrator_resumes_bit_identically(self, tmp_path):
        """The tentpole acceptance test: SIGKILL the orchestrator
        mid-campaign, resume, and require merged aggregates
        byte-identical to an uninterrupted --jobs 1 run."""
        sessions = 4
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        base = [sys.executable, "-m", "repro", "fleet",
                "--sessions", str(sessions), "--seed", "21",
                "--behaviors", "gremlins", "--durations", "0.01",
                "--caches", "8192:32:4", "--app-mixes", "launcher+memopad",
                "--quiet"]

        ref_dir = tmp_path / "ref"
        subprocess.run(base + ["--out", str(ref_dir), "--jobs", "1"],
                       env=env, check=True, capture_output=True)

        kill_dir = tmp_path / "killed"
        proc = subprocess.Popen(
            base + ["--out", str(kill_dir), "--jobs", "2"],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        journal = kill_dir / JOURNAL_NAME
        deadline = time.monotonic() + 240
        killed = False
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before we could kill it — still valid
            if journal.exists() and sum(
                    1 for line in journal.read_text().splitlines()
                    if '"kind":"done"' in line) >= 1:
                os.kill(proc.pid, signal.SIGKILL)
                killed = True
                break
            time.sleep(0.05)
        proc.wait(timeout=240)

        result = resume_campaign(kill_dir, jobs=1, hang_timeout=300.0)
        assert result.complete
        assert ((kill_dir / "aggregates.json").read_bytes()
                == (ref_dir / "aggregates.json").read_bytes())
        if killed:
            # The resumed run must not have re-run journaled sessions.
            assert result.ran < sessions


@pytest.mark.slow
class TestChaosRecovery:
    def test_chaos_campaign_recovers_and_quarantines_poison(self, tmp_path):
        spec = tiny_spec(6, seed=2)
        plan = ChaosPlan.plan(6, seed=1, crashes=1, stalls=1, poisons=1,
                              stall_seconds=120.0)
        result = run_campaign(spec, tmp_path / "c", jobs=2,
                              hang_timeout=6.0, retries=2,
                              backoff_base=0.05,
                              chaos=plan.directives())
        assert verify_chaos(plan, result) == []
        assert result.complete
        assert result.quarantined == 1
        assert result.completed == 5
