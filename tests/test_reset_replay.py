"""Tests for the soft-reset extension (the paper's deferred future
work): mid-session resets are logged, epochs split correctly, and
replay reproduces sessions across resets bit-exactly."""

import pytest

from repro import UserScript, collect_session, replay_session, standard_apps
from repro.device import Button
from repro.palmos import PalmOS, Trap
from repro.tracelog import (
    ActivityLog,
    LogEventType,
    LogRecord,
    read_activity_log,
    split_epochs,
)
from repro.validation import correlate_final_states, correlate_logs

EMU_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}


def reset_script() -> UserScript:
    """Tap the launcher's reset corner, then (epoch 2) use MemoPad."""
    return (UserScript("with-reset").at(80)
            .tap(150, 150).wait(150)     # launcher corner -> soft reset
            .tap(60, 40).wait(60)        # epoch 2: row 1 -> memopad
            .tap(40, 120).wait(60)       # epoch 2: write a memo
            .press(Button.UP).wait(60))  # epoch 2: list memos


class TestWarmReset:
    def test_sysreset_trap_restarts_guest_clock(self):
        kernel = PalmOS(apps=standard_apps(), **EMU_KW,
                        default_app="launcher")
        kernel.boot()
        kernel.device.run_ticks(500)
        wall_before = kernel.device.tick
        boots_before = kernel.boot_count
        kernel.device.warm_reset()
        kernel.device.run_until_idle()
        assert kernel.boot_count == boots_before + 1
        assert kernel.device.tick >= wall_before       # wall time continues
        assert kernel.device.guest_tick < 100          # guest clock restarted

    def test_storage_survives_warm_reset(self):
        kernel = PalmOS(apps=standard_apps(), **EMU_KW,
                        default_app="launcher")
        kernel.boot()
        db = kernel.dm_host.create("Keep")
        addr = kernel.dm_host.new_record(db, 0, 4)
        kernel.host.write32(addr, 0x5EED)
        kernel.device.warm_reset()
        kernel.device.run_until_idle()
        db = kernel.dm_host.find("Keep")
        assert kernel.dm_host.read_record(db, 0) == (0x5EED).to_bytes(4, "big")

    def test_launcher_corner_triggers_reset(self):
        kernel = PalmOS(apps=standard_apps(), **EMU_KW,
                        default_app="launcher")
        kernel.boot()
        before = kernel.boot_count
        kernel.device.schedule_pen_down(50, 150, 150)
        kernel.device.schedule_pen_up(54)
        kernel.device.run_until_idle()
        # A held stylus may re-sample as a fresh penDown after the reset
        # clears pen state, so one physical tap can produce more than
        # one reset — deterministically, which is all replay requires.
        assert kernel.boot_count > before

    def test_rtc_continues_across_warm_reset(self):
        kernel = PalmOS(apps=standard_apps(), **EMU_KW,
                        default_app="launcher")
        kernel.boot()
        kernel.device.run_ticks(500)
        seconds_before = kernel.now_seconds()
        kernel.device.warm_reset()
        kernel.device.run_until_idle()
        assert kernel.now_seconds() >= seconds_before


class TestEpochSplitting:
    def test_split_no_resets_is_one_epoch(self):
        log = ActivityLog(records=[LogRecord(LogEventType.PEN, 1, 0, 0)])
        assert len(split_epochs(log)) == 1

    def test_split_at_reset_records(self):
        log = ActivityLog(records=[
            LogRecord(LogEventType.PEN, 1, 0, 0),
            LogRecord(LogEventType.RESET, 2, 0, 0),
            LogRecord(LogEventType.RANDOM, 0, 0, 99),
            LogRecord(LogEventType.PEN, 5, 0, 0),
        ])
        epochs = split_epochs(log)
        assert len(epochs) == 2
        assert epochs[0].records[-1].type == LogEventType.RESET
        assert len(epochs[1]) == 2

    def test_trailing_reset_makes_no_empty_epoch(self):
        log = ActivityLog(records=[
            LogRecord(LogEventType.PEN, 1, 0, 0),
            LogRecord(LogEventType.RESET, 2, 0, 0),
        ])
        assert len(split_epochs(log)) == 1

    def test_reset_record_is_short(self):
        assert LogRecord(LogEventType.RESET, 0, 0, 0).size == 12


class TestResetReplay:
    @pytest.fixture(scope="class")
    def run(self):
        apps = standard_apps()
        session = collect_session(apps, reset_script(), name="reset",
                                  ram_size=EMU_KW["ram_size"])
        emulator, _, result = replay_session(
            session.initial_state, session.log, apps=apps, profile=False,
            emulator_kwargs=dict(EMU_KW, entropy_seed=0xFACE))
        return session, emulator, result

    def test_reset_recorded_in_log(self, run):
        session, _, _ = run
        resets = session.log.of_type(LogEventType.RESET)
        assert len(resets) >= 1

    def test_epoch_ticks_restart(self, run):
        session, _, _ = run
        epochs = split_epochs(session.log)
        assert len(epochs) >= 2
        # Second epoch's first records carry restarted (small) ticks.
        later = [r for r in epochs[1] if r.type == LogEventType.RANDOM]
        assert later and later[0].tick < 10

    def test_replay_is_bit_exact_across_reset(self, run):
        session, emulator, _ = run
        corr = correlate_logs(session.log,
                              read_activity_log(emulator.kernel))
        assert corr.valid, corr.summary()
        assert corr.exact_matches == corr.total_original

    def test_final_state_matches_across_reset(self, run):
        session, emulator, _ = run
        corr = correlate_final_states(session.final_state,
                                      emulator.final_state())
        assert corr.valid, corr.summary()
        # The memo written after the reset made it into both states.
        device_dbs = {d.name for d in session.final_state}
        assert "MemoDB" in device_dbs

    def test_boot_seeds_served_per_epoch(self, run):
        session, _, result = run
        seeds = session.log.of_type(LogEventType.RANDOM)
        # One seeding per boot epoch at minimum, all served from the
        # queue during replay.
        assert len(seeds) >= 2
        assert result.seeds_served >= len(seeds)
        assert result.seeds_missing == 0
