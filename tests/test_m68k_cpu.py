"""Unit tests for the 68000 interpreter: data movement, arithmetic,
logic, shifts, branches, subroutines, and the exception machinery."""

import pytest

from repro.m68k import CPU, FlatMemory
from repro.m68k.errors import AddressError

from tests.m68k_utils import run_asm, run_asm_mem


class TestMove:
    def test_moveq_sign_extends(self):
        cpu = run_asm("moveq #-1,d0\n moveq #5,d1")
        assert cpu.d[0] == 0xFFFFFFFF
        assert cpu.d[1] == 5

    def test_move_immediate_sizes(self):
        cpu = run_asm("""
            move.l  #$12345678,d0
            move.w  #$abcd,d1
            move.b  #$7f,d2
        """)
        assert cpu.d[0] == 0x12345678
        assert cpu.d[1] == 0xABCD
        assert cpu.d[2] == 0x7F

    def test_move_byte_merges_into_register(self):
        cpu = run_asm("""
            move.l  #$11223344,d0
            move.b  #$ff,d0
        """)
        assert cpu.d[0] == 0x112233FF

    def test_movea_word_sign_extends(self):
        cpu = run_asm("movea.w #$8000,a0")
        assert cpu.a[0] == 0xFFFF8000

    def test_move_to_memory_and_back(self):
        cpu, mem = run_asm_mem("""
            lea     $3000,a0
            move.l  #$cafebabe,(a0)
            move.l  (a0),d0
        """)
        assert mem.read32(0x3000) == 0xCAFEBABE
        assert cpu.d[0] == 0xCAFEBABE

    def test_postincrement_and_predecrement(self):
        cpu = run_asm("""
            lea     $3000,a0
            move.w  #$1111,(a0)+
            move.w  #$2222,(a0)+
            move.w  -(a0),d0
            move.w  -(a0),d1
        """)
        assert cpu.d[0] == 0x2222
        assert cpu.d[1] == 0x1111
        assert cpu.a[0] == 0x3000

    def test_displacement_addressing(self):
        cpu = run_asm("""
            lea     $3000,a0
            move.w  #$42,8(a0)
            move.w  8(a0),d0
            move.w  #$43,-4(a0)
            move.w  -4(a0),d1
        """)
        assert cpu.d[0] == 0x42
        assert cpu.d[1] == 0x43

    def test_indexed_addressing(self):
        cpu = run_asm("""
            lea     $3000,a0
            moveq   #8,d1
            move.w  #$77,2(a0,d1.l)
            move.w  2(a0,d1.l),d0
        """)
        assert cpu.d[0] == 0x77

    def test_indexed_word_index_sign_extends(self):
        cpu = run_asm("""
            lea     $3000,a0
            move.l  #$fffffffc,d1       ; -4 as a word index
            move.w  #$99,(a0)
            move.w  4(a0,d1.w),d0
        """)
        assert cpu.d[0] == 0x99

    def test_absolute_short_and_long(self):
        cpu = run_asm("""
            move.w  #$1234,$3000.w
            move.w  $3000.w,d0
            move.l  #$9876,$3004
            move.l  $3004,d1
        """)
        assert cpu.d[0] == 0x1234
        assert cpu.d[1] == 0x9876

    def test_pc_relative_read(self):
        cpu = run_asm("""
            bra.s   go
    value:  dc.w    $4242
    go:     move.w  value(pc),d0
        """)
        assert cpu.d[0] == 0x4242

    def test_byte_postinc_on_sp_moves_two(self):
        cpu = run_asm("""
            move.l  sp,d1
            move.b  #5,-(sp)
            move.l  sp,d0
        """)
        assert (cpu.d[1] - cpu.d[0]) == 2

    def test_move_sets_flags(self):
        cpu = run_asm("move.l #0,d0")
        assert cpu.z == 1 and cpu.n == 0
        cpu = run_asm("move.w #$8000,d0")
        assert cpu.n == 1 and cpu.z == 0

    def test_movea_does_not_set_flags(self):
        cpu = run_asm("""
            move.l  #0,d0       ; set Z
            movea.l #$100,a0    ; must leave Z alone
        """)
        assert cpu.z == 1

    def test_lea_and_pea(self):
        cpu, mem = run_asm_mem("""
            lea     $1234,a0
            pea     $5678
            move.l  (sp)+,d0
        """)
        assert cpu.a[0] == 0x1234
        assert cpu.d[0] == 0x5678


class TestArithmetic:
    def test_add_and_carry(self):
        cpu = run_asm("""
            move.l  #$ffffffff,d0
            addq.l  #1,d0
        """)
        assert cpu.d[0] == 0
        assert cpu.c == 1 and cpu.x == 1 and cpu.z == 1

    def test_add_overflow_flag(self):
        cpu = run_asm("""
            move.w  #$7fff,d0
            addq.w  #1,d0
        """)
        assert cpu.d[0] & 0xFFFF == 0x8000
        assert cpu.v == 1 and cpu.n == 1 and cpu.c == 0

    def test_sub_borrow(self):
        cpu = run_asm("""
            moveq   #3,d0
            subq.l  #5,d0
        """)
        assert cpu.d[0] == 0xFFFFFFFE
        assert cpu.c == 1 and cpu.n == 1

    def test_sub_word_only_touches_word(self):
        cpu = run_asm("""
            move.l  #$00010000,d0
            subq.w  #1,d0
        """)
        assert cpu.d[0] == 0x0001FFFF

    def test_addi_subi_cmpi(self):
        cpu = run_asm("""
            move.l  #100,d0
            addi.l  #28,d0
            subi.l  #28,d0
            cmpi.l  #100,d0
        """)
        assert cpu.d[0] == 100
        assert cpu.z == 1

    def test_cmp_does_not_modify(self):
        cpu = run_asm("""
            moveq   #7,d0
            moveq   #9,d1
            cmp.l   d1,d0
        """)
        assert cpu.d[0] == 7
        assert cpu.n == 1 and cpu.c == 1  # 7 - 9 borrows

    def test_adda_suba_no_flags(self):
        cpu = run_asm("""
            move.l  #0,d0           ; Z=1
            lea     $100,a0
            adda.l  #$10,a0
            suba.l  #$20,a0
        """)
        assert cpu.a[0] == 0xF0
        assert cpu.z == 1

    def test_adda_word_sign_extends(self):
        cpu = run_asm("""
            lea     $1000,a0
            adda.w  #$8000,a0
        """)
        assert cpu.a[0] == (0x1000 - 0x8000) & 0xFFFFFFFF

    def test_neg(self):
        cpu = run_asm("moveq #5,d0\n neg.l d0")
        assert cpu.d[0] == 0xFFFFFFFB
        assert cpu.c == 1 and cpu.n == 1
        cpu = run_asm("moveq #0,d0\n neg.l d0")
        assert cpu.d[0] == 0 and cpu.c == 0 and cpu.z == 1

    def test_mulu(self):
        cpu = run_asm("""
            move.w  #300,d0
            move.w  #500,d1
            mulu    d1,d0
        """)
        assert cpu.d[0] == 150000

    def test_muls_negative(self):
        cpu = run_asm("""
            move.w  #-3,d0
            move.w  #100,d1
            muls    d1,d0
        """)
        assert cpu.d[0] == (-300) & 0xFFFFFFFF
        assert cpu.n == 1

    def test_divu(self):
        cpu = run_asm("""
            move.l  #100001,d0
            move.w  #10,d1
            divu    d1,d0
        """)
        assert cpu.d[0] & 0xFFFF == 10000       # quotient
        assert (cpu.d[0] >> 16) == 1            # remainder

    def test_divu_overflow_leaves_operand(self):
        cpu = run_asm("""
            move.l  #$10000,d0
            move.w  #1,d1
            divu    d1,d0
        """)
        assert cpu.d[0] == 0x10000
        assert cpu.v == 1

    def test_divs_truncates_toward_zero(self):
        cpu = run_asm("""
            move.l  #-7,d0
            move.w  #2,d1
            divs    d1,d0
        """)
        assert cpu.d[0] & 0xFFFF == (-3) & 0xFFFF
        assert (cpu.d[0] >> 16) & 0xFFFF == (-1) & 0xFFFF

    def test_ext(self):
        cpu = run_asm("""
            move.l  #$00000080,d0
            ext.w   d0
            move.l  #$00008000,d1
            ext.l   d1
        """)
        assert cpu.d[0] & 0xFFFF == 0xFF80
        assert cpu.d[1] == 0xFFFF8000

    def test_addx_chain(self):
        # 32+32 -> 64-bit addition using addx.
        cpu = run_asm("""
            move.l  #$ffffffff,d0   ; low a
            move.l  #1,d1           ; high a
            move.l  #1,d2           ; low b
            move.l  #0,d3           ; high b
            add.l   d2,d0
            addx.l  d3,d1
        """)
        assert cpu.d[0] == 0
        assert cpu.d[1] == 2

    def test_subx(self):
        cpu = run_asm("""
            move.l  #0,d0
            move.l  #5,d1
            sub.l   #1,d0           ; borrows, X=1
            subx.l  d2,d1           ; d2=0, subtract borrow
        """)
        assert cpu.d[1] == 4

    def test_cmpm(self):
        cpu = run_asm("""
            lea     $3000,a0
            lea     $3000,a1
            move.w  #7,(a0)
            cmpm.w  (a0)+,(a1)+
        """)
        assert cpu.z == 1
        assert cpu.a[0] == 0x3002 and cpu.a[1] == 0x3002


class TestLogic:
    def test_and_or_eor_not(self):
        cpu = run_asm("""
            move.l  #$f0f0f0f0,d0
            move.l  #$ffff0000,d1
            and.l   d1,d0
            move.l  #$0000000f,d2
            or.l    d2,d0
            eor.l   d1,d0
            not.l   d0
        """)
        expected = 0xF0F00000
        expected = (expected | 0xF) ^ 0xFFFF0000
        expected = (~expected) & 0xFFFFFFFF
        assert cpu.d[0] == expected

    def test_andi_ori_eori(self):
        cpu = run_asm("""
            move.l  #$12345678,d0
            andi.l  #$ffff0000,d0
            ori.l   #$00000042,d0
            eori.l  #$ff000000,d0
        """)
        assert cpu.d[0] == ((0x12340000 | 0x42) ^ 0xFF000000)

    def test_tst(self):
        cpu = run_asm("""
            move.l  #$80000000,d0
            tst.l   d0
        """)
        assert cpu.n == 1 and cpu.z == 0

    def test_clr(self):
        cpu = run_asm("""
            move.l  #$12345678,d0
            clr.w   d0
        """)
        assert cpu.d[0] == 0x12340000
        assert cpu.z == 1

    def test_swap(self):
        cpu = run_asm("""
            move.l  #$12345678,d0
            swap    d0
        """)
        assert cpu.d[0] == 0x56781234

    def test_exg(self):
        cpu = run_asm("""
            moveq   #1,d0
            moveq   #2,d1
            exg     d0,d1
            lea     $10,a0
            exg     d0,a0
        """)
        assert cpu.d[1] == 1
        assert cpu.d[0] == 0x10
        assert cpu.a[0] == 2

    def test_bit_ops_register(self):
        cpu = run_asm("""
            moveq   #0,d0
            bset    #4,d0
            btst    #4,d0
        """)
        assert cpu.d[0] == 0x10
        assert cpu.z == 0
        cpu = run_asm("""
            moveq   #0,d0
            bset    #35,d0      ; modulo 32 -> bit 3
        """)
        assert cpu.d[0] == 8

    def test_bit_ops_memory_are_byte_wide(self):
        cpu, mem = run_asm_mem("""
            lea     $3000,a0
            move.b  #0,(a0)
            bset    #7,(a0)
            bchg    #0,(a0)
            bclr    #7,(a0)
        """)
        assert mem.read8(0x3000) == 0x01

    def test_bit_op_dynamic(self):
        cpu = run_asm("""
            moveq   #0,d0
            moveq   #6,d1
            bset    d1,d0
        """)
        assert cpu.d[0] == 0x40


class TestShifts:
    def test_lsl_lsr(self):
        cpu = run_asm("""
            move.l  #1,d0
            lsl.l   #4,d0
            move.l  #$80000000,d1
            lsr.l   #4,d1
        """)
        assert cpu.d[0] == 0x10
        assert cpu.d[1] == 0x08000000

    def test_lsl_carry_out(self):
        cpu = run_asm("""
            move.b  #$80,d0
            lsl.b   #1,d0
        """)
        assert cpu.d[0] & 0xFF == 0
        assert cpu.c == 1 and cpu.x == 1 and cpu.z == 1

    def test_asr_sign_fill(self):
        cpu = run_asm("""
            move.w  #$8000,d0
            asr.w   #3,d0
        """)
        assert cpu.d[0] & 0xFFFF == 0xF000
        assert cpu.n == 1

    def test_asl_overflow(self):
        cpu = run_asm("""
            move.b  #$40,d0
            asl.b   #1,d0
        """)
        assert cpu.v == 1  # sign changed

    def test_shift_by_register_count(self):
        cpu = run_asm("""
            move.l  #1,d0
            moveq   #10,d1
            lsl.l   d1,d0
        """)
        assert cpu.d[0] == 1024

    def test_shift_count_zero_from_register(self):
        cpu = run_asm("""
            move.l  #5,d0
            moveq   #0,d1
            lsr.l   d1,d0
        """)
        assert cpu.d[0] == 5
        assert cpu.c == 0

    def test_rol_ror(self):
        cpu = run_asm("""
            move.w  #$8001,d0
            rol.w   #1,d0
            move.w  #$8001,d1
            ror.w   #1,d1
        """)
        assert cpu.d[0] & 0xFFFF == 0x0003
        assert cpu.d[1] & 0xFFFF == 0xC000

    def test_roxl_uses_x(self):
        cpu = run_asm("""
            move.l  #$80000000,d0
            add.l   d0,d0           ; sets X=1
            move.w  #0,d1
            roxl.w  #1,d1           ; rotates X in
        """)
        assert cpu.d[1] & 0xFFFF == 1

    def test_memory_shift_word(self):
        cpu, mem = run_asm_mem("""
            lea     $3000,a0
            move.w  #1,(a0)
            lsl     (a0)
        """)
        assert mem.read16(0x3000) == 2


class TestControlFlow:
    def test_bcc_taken_and_not(self):
        cpu = run_asm("""
            moveq   #1,d0
            cmpi.l  #1,d0
            beq.s   yes
            moveq   #0,d7
            bra.s   done
    yes:    moveq   #42,d7
    done:
        """)
        assert cpu.d[7] == 42

    def test_signed_vs_unsigned_conditions(self):
        cpu = run_asm("""
            moveq   #-1,d0
            cmpi.l  #1,d0           ; -1 vs 1
            sgt     d1              ; signed: -1 > 1 false -> 0
            shi     d2              ; unsigned: ffffffff > 1 true -> ff
        """)
        assert cpu.d[1] & 0xFF == 0
        assert cpu.d[2] & 0xFF == 0xFF

    def test_dbra_loop(self):
        cpu = run_asm("""
            moveq   #0,d0
            move.w  #9,d1
    loop:   addq.l  #1,d0
            dbra    d1,loop
        """)
        assert cpu.d[0] == 10

    def test_dbcc_exits_on_condition(self):
        cpu = run_asm("""
            moveq   #0,d0
            move.w  #100,d1
    loop:   addq.l  #1,d0
            cmpi.l  #5,d0
            dbeq    d1,loop     ; loop until d0 == 5
        """)
        assert cpu.d[0] == 5

    def test_bsr_rts(self):
        cpu = run_asm("""
            moveq   #0,d0
            bsr.s   sub
            addq.l  #1,d0
            bra.s   done
    sub:    moveq   #10,d0
            rts
    done:
        """)
        assert cpu.d[0] == 11

    def test_jsr_jmp_absolute(self):
        cpu = run_asm("""
            moveq   #0,d0
            jsr     sub
            addq.l  #1,d0
            jmp     done
    sub:    moveq   #20,d0
            rts
    done:
        """)
        assert cpu.d[0] == 21

    def test_jmp_via_register(self):
        cpu = run_asm("""
            lea     target,a0
            jmp     (a0)
            moveq   #1,d7       ; skipped
    target: moveq   #9,d0
        """)
        assert cpu.d[0] == 9
        assert cpu.d[7] == 0

    def test_link_unlk(self):
        cpu = run_asm("""
            move.l  sp,d5
            link    a6,#-16
            move.l  sp,d6
            unlk    a6
            move.l  sp,d7
        """)
        assert cpu.d[5] - cpu.d[6] == 20  # 4 saved + 16 frame
        assert cpu.d[5] == cpu.d[7]

    def test_scc(self):
        cpu = run_asm("""
            moveq   #0,d0
            st      d1
            sf      d2
        """)
        assert cpu.d[1] & 0xFF == 0xFF
        assert cpu.d[2] & 0xFF == 0


class TestMovem:
    def test_roundtrip_via_stack(self):
        cpu = run_asm("""
            moveq   #1,d2
            moveq   #2,d3
            lea     $1234,a2
            movem.l d2-d3/a2,-(sp)
            moveq   #0,d2
            moveq   #0,d3
            suba.l  a2,a2
            movem.l (sp)+,d2-d3/a2
        """)
        assert cpu.d[2] == 1
        assert cpu.d[3] == 2
        assert cpu.a[2] == 0x1234

    def test_predecrement_layout(self):
        # Lowest register ends at the lowest address.
        cpu, mem = run_asm_mem("""
            lea     $3010,a0
            moveq   #$11,d0
            moveq   #$22,d1
            movem.l d0-d1,-(a0)
        """)
        assert mem.read32(0x3008) == 0x11
        assert mem.read32(0x300C) == 0x22
        assert cpu.a[0] == 0x3008

    def test_word_load_sign_extends(self):
        cpu, mem = run_asm_mem("""
            lea     $3000,a0
            move.w  #$8000,(a0)
            movem.w (a0),d0
        """)
        assert cpu.d[0] == 0xFFFF8000

    def test_control_mode_store(self):
        cpu, mem = run_asm_mem("""
            moveq   #7,d0
            moveq   #8,d1
            movem.l d0-d1,$3000
        """)
        assert mem.read32(0x3000) == 7
        assert mem.read32(0x3004) == 8


class TestExceptions:
    def test_trap_instruction_vectors(self):
        cpu = run_asm("""
            lea     handler,a0
            move.l  a0,$80      ; vector 32 = trap #0
            trap    #0
            moveq   #5,d1
            bra.s   done
    handler:
            moveq   #9,d0
            rte
    done:
        """)
        assert cpu.d[0] == 9
        assert cpu.d[1] == 5

    def test_divide_by_zero_vectors(self):
        cpu = run_asm("""
            lea     handler,a0
            move.l  a0,$14      ; vector 5
            moveq   #0,d1
            move.l  #100,d0
            divu    d1,d0
            bra.s   done
    handler:
            moveq   #3,d7
            rte
    done:
        """)
        assert cpu.d[7] == 3

    def test_aline_exception_stacks_faulting_pc(self):
        # The handler inspects the stacked PC, reads the trap word, skips
        # it, and returns - the mechanism the ROM TrapDispatcher uses.
        cpu = run_asm("""
            lea     handler,a0
            move.l  a0,$28          ; vector 10 = A-line
            dc.w    $a123           ; "system call"
            moveq   #1,d6
            bra.s   done
    handler:
            move.l  2(sp),a1        ; stacked PC -> the A-line word
            move.w  (a1),d5         ; capture the trap word
            addq.l  #2,a1
            move.l  a1,2(sp)        ; resume past it
            rte
    done:
        """)
        assert cpu.d[5] & 0xFFFF == 0xA123
        assert cpu.d[6] == 1

    def test_address_error_on_odd_word_access(self):
        cpu, mem = None, None
        from tests.m68k_utils import make_cpu
        cpu, mem = make_cpu("""
            lea     $3001,a0
            move.w  (a0),d0
        """)
        with pytest.raises(AddressError):
            cpu.run(10)

    def test_stop_sets_stopped_and_interrupt_resumes(self):
        from tests.m68k_utils import make_cpu
        cpu, mem = make_cpu("""
            lea     isr,a0
            move.l  a0,$64          ; vector 25 = autovector level 1
            stop    #$2000          ; unmask interrupts, sleep
            moveq   #7,d1
            stop    #$2700
    isr:    moveq   #3,d0
            rte
        """)
        cpu.run(10)
        assert cpu.stopped
        assert cpu.d[1] == 0
        cpu.set_irq(1)
        cpu.step()          # services the interrupt
        cpu.set_irq(0)
        cpu.run(10)
        assert cpu.d[0] == 3
        assert cpu.d[1] == 7

    def test_interrupt_respects_mask(self):
        from tests.m68k_utils import make_cpu
        cpu, _ = make_cpu("""
            moveq   #1,d0
        """)
        cpu.set_irq(1)      # masked: reset leaves imask=7
        cpu.run(5)
        assert cpu.d[0] == 1  # ran to stop without vectoring


class TestStatusRegister:
    def test_move_to_from_sr(self):
        cpu = run_asm("""
            move    #$2705,sr       ; set C and X... (X=bit4) -> CCR=$05
            move    sr,d0
        """)
        assert cpu.d[0] & 0xFF1F == 0x2705 & 0xFF1F

    def test_ccr_ops(self):
        cpu = run_asm("""
            move    #$1f,ccr
            andi    #$1e,ccr        ; clear C
        """)
        assert cpu.c == 0
        assert cpu.x == 1 and cpu.n == 1 and cpu.z == 1 and cpu.v == 1

    def test_supervisor_usp_switch(self):
        cpu = run_asm("""
            lea     $8000,a0
            move.l  a0,usp
            move    usp,a1
        """)
        assert cpu.a[1] == 0x8000


class TestCounters:
    def test_cycles_and_instructions_advance(self):
        cpu = run_asm("""
            moveq   #0,d0
            addq.l  #1,d0
        """)
        assert cpu.instructions == 3  # two + stop
        assert cpu.cycles > 0

    def test_run_budget_respected(self):
        from tests.m68k_utils import make_cpu
        cpu, _ = make_cpu("""
    loop:   addq.l  #1,d0
            bra.s   loop
        """)
        executed = cpu.run(1000)
        assert executed == 1000
        assert not cpu.stopped
