"""Property-based tests of the reproduction's core claim: for *any*
input schedule, collection followed by replay is bit-exact.

This is the deterministic state machine model (§2.1) tested as a
property rather than on hand-picked workloads.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import replay_session, standard_apps
from repro.device import Button
from repro.tracelog import read_activity_log
from repro.workloads import UserScript, collect_session

EMU_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}

_APPS = standard_apps()


@st.composite
def user_scripts(draw):
    """Random but well-formed user scripts (pen state machine valid)."""
    script = UserScript("prop")
    script.at(draw(st.integers(60, 200)))
    n_gestures = draw(st.integers(1, 6))
    for _ in range(n_gestures):
        kind = draw(st.sampled_from(["tap", "drag", "button"]))
        if kind == "tap":
            script.tap(draw(st.integers(0, 159)), draw(st.integers(0, 159)),
                       hold_ticks=draw(st.integers(2, 8)))
        elif kind == "drag":
            points = draw(st.lists(
                st.tuples(st.integers(0, 159), st.integers(0, 159)),
                min_size=2, max_size=5))
            script.drag(points, ticks_per_point=draw(st.integers(2, 4)))
        else:
            script.press(draw(st.sampled_from([
                Button.UP, Button.DOWN, Button.MEMO, Button.ADDRESS,
                Button.DATEBOOK])), hold_ticks=draw(st.integers(2, 6)))
        script.wait(draw(st.integers(10, 120)))
    return script


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(script=user_scripts(), entropy=st.integers(1, 2**31))
def test_any_session_replays_bit_exactly(script, entropy):
    """β + δ determine the execution path — for arbitrary δ."""
    session = collect_session(_APPS, script, name="prop",
                              entropy_seed=entropy,
                              ram_size=EMU_KW["ram_size"])
    emulator, _, _ = replay_session(
        session.initial_state, session.log, apps=_APPS, profile=False,
        emulator_kwargs=dict(EMU_KW, entropy_seed=entropy ^ 0xFFFF))
    original = [(r.type, r.tick, r.data) for r in session.log]
    replayed = [(r.type, r.tick, r.data)
                for r in read_activity_log(emulator.kernel)]
    assert replayed == original


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=user_scripts())
def test_collection_itself_is_deterministic(script):
    """Two collections of the same script are identical sessions."""
    logs = []
    for _ in range(2):
        session = collect_session(_APPS, script, name="det",
                                  entropy_seed=0xABAB,
                                  ram_size=EMU_KW["ram_size"])
        logs.append([(r.type, r.tick, r.data) for r in session.log])
    assert logs[0] == logs[1]


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(script=user_scripts(), entropy=st.integers(1, 2**31))
def test_final_states_agree_for_any_session(script, entropy):
    session = collect_session(_APPS, script, name="prop2",
                              entropy_seed=entropy,
                              ram_size=EMU_KW["ram_size"])
    emulator, _, _ = replay_session(
        session.initial_state, session.log, apps=_APPS, profile=False,
        emulator_kwargs=EMU_KW)
    device = {d.name: d for d in session.final_state}
    emulated = {d.name: d for d in emulator.final_state()}
    assert set(device) == set(emulated)
    for name, dev in device.items():
        emu = emulated[name]
        assert [r.data for r in dev.records] == \
            [r.data for r in emu.records], name
