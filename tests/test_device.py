"""Tests for the Palm m515 device model: interrupt plumbing, pen
sampling at 50 Hz, button latching, doze-mode time skipping, the RTC,
and the memory map."""

import pytest

from repro.device import Button, PalmDevice, constants as C
from repro.device.memmap import KIND_FETCH, KIND_READ, KIND_WRITE
from repro.device import REGION_FLASH, REGION_RAM
from repro.m68k.asm import assemble
from repro.m68k.errors import BusError

# A minimal "ROM": boot installs a level-4 autovector ISR that counts
# pen, key, and timer interrupts into RAM cells, then sleeps forever.
TEST_ROM = """
        org     $10000000
        dc.l    $7000               ; initial SSP
        dc.l    boot                ; reset PC
boot:   lea     isr,a0
        move.l  a0,$70              ; vector 28 (autovector level 4)
        move    #$2000,sr           ; unmask interrupts
loop:   stop    #$2000
        bra.s   loop
isr:    movem.l d0-d1/a0,-(sp)
        move.l  $fffff000,d0        ; INT_STATUS
        btst    #1,d0               ; pen?
        beq.s   nopen
        lea     $6000,a0
        addq.l  #1,(a0)             ; pen count
        move.l  $fffff010,d1        ; PEN_SAMPLE
        move.l  d1,4(a0)
nopen:  btst    #2,d0               ; key?
        beq.s   nokey
        lea     $6010,a0
        addq.l  #1,(a0)             ; key count
        move.l  $fffff018,d1        ; KEY_EVENT
        move.l  d1,4(a0)
nokey:  btst    #0,d0               ; timer?
        beq.s   notmr
        lea     $6020,a0
        addq.l  #1,(a0)             ; timer count
notmr:  move.l  d0,$fffff004        ; INT_ACK
        movem.l (sp)+,d0-d1/a0
        rte
"""

PEN_COUNT = 0x6000
PEN_LAST = 0x6004
KEY_COUNT = 0x6010
KEY_LAST = 0x6014
TMR_COUNT = 0x6020


def make_device() -> PalmDevice:
    device = PalmDevice(ram_size=1 << 20, flash_size=1 << 20)
    program = assemble(TEST_ROM)
    for addr, blob in program.segments:
        device.mem.load_flash_image(blob, offset=addr - C.FLASH_BASE)
    device.soft_reset()
    return device


class TestPenSampling:
    def test_held_stylus_samples_at_50hz(self):
        device = make_device()
        device.schedule_pen_down(10, 80, 80)
        device.schedule_pen_up(110)  # held exactly one second
        device.advance(150)
        # 50 down-samples (ticks 10..108) plus the pen-up sample.
        assert device.mem.ram.read32(PEN_COUNT) == 51

    def test_pen_up_sample_has_down_flag_clear(self):
        device = make_device()
        device.schedule_pen_down(10, 30, 40)
        device.schedule_pen_up(12)
        device.advance(30)
        last = device.mem.ram.read32(PEN_LAST)
        assert (last >> 24) & 0x80 == 0  # up
        assert (last >> 8) & 0xFF == 30
        assert last & 0xFF == 40

    def test_pen_coordinates_clamped_to_screen(self):
        device = make_device()
        device.digitizer.pen_down(500, -3)
        assert device.digitizer.x == C.SCREEN_WIDTH - 1
        assert device.digitizer.y == 0

    def test_pen_moves_tracked_between_samples(self):
        device = make_device()
        device.schedule_pen_down(10, 10, 10)
        device.schedule_pen_move(11, 99, 98)  # between samples
        device.advance(13)
        last = device.mem.ram.read32(PEN_LAST)
        assert (last >> 8) & 0xFF == 99
        assert last & 0xFF == 98


class TestButtons:
    def test_press_and_release_interrupt(self):
        device = make_device()
        device.schedule_button_press(20, Button.MEMO)
        device.schedule_button_release(30, Button.MEMO)
        device.advance(50)
        assert device.mem.ram.read32(KEY_COUNT) == 2
        # Release was the last transition: down flag clear, MEMO bit set.
        assert device.mem.ram.read32(KEY_LAST) == Button.MEMO

    def test_key_state_reflects_held_buttons(self):
        device = make_device()
        device.schedule_button_press(20, Button.UP)
        device.advance(25)
        assert device.buttons.state == Button.UP

    def test_double_press_is_one_transition(self):
        device = make_device()
        device.buttons.press(Button.UP)
        device.buttons.press(Button.UP)
        device.buttons.release(Button.UP)
        device.buttons.release(Button.UP)
        # Status bit was raised twice total (press + release).
        assert device.buttons.state == 0


class TestDozing:
    def test_idle_device_skips_time_cheaply(self):
        device = make_device()
        device.advance(10)
        before = device.cpu.instructions
        device.advance(100_000)  # 1000 virtual seconds
        executed = device.cpu.instructions - before
        assert executed < 100  # dozing costs no instruction work
        assert device.tick == 100_000

    def test_cycles_track_ticks_through_doze(self):
        device = make_device()
        device.advance(5_000)
        assert device.cpu.cycles >= 5_000 * C.CYCLES_PER_TICK

    def test_wake_request_fires_timer_interrupt(self):
        device = make_device()
        device.advance(10)
        base = device.mem.ram.read32(TMR_COUNT)
        device.request_wake(500)
        device.advance(600)
        assert device.mem.ram.read32(TMR_COUNT) > base

    def test_run_until_idle_returns_promptly(self):
        device = make_device()
        device.schedule_button_press(40, Button.UP)
        device.schedule_button_release(45, Button.UP)
        idle_tick = device.run_until_idle()
        assert idle_tick >= 45


class TestClocks:
    def test_rtc_advances_with_ticks(self):
        device = make_device()
        start = device.rtc.seconds_at(device.tick)
        device.advance(250)
        assert device.rtc.seconds_at(device.tick) == start + 2

    def test_tick_register_readable_by_guest(self):
        device = make_device()
        device.advance(123)
        assert device.mem.read32(C.REG_TMR_TICKS) == 123

    def test_device_id(self):
        device = make_device()
        assert device.mem.read32(C.REG_DEVICE_ID) == C.DEVICE_ID_M515

    def test_entropy_is_deterministic_per_seed(self):
        a = PalmDevice(ram_size=1 << 16, flash_size=1 << 16, entropy_seed=42)
        b = PalmDevice(ram_size=1 << 16, flash_size=1 << 16, entropy_seed=42)
        assert [a.entropy() for _ in range(5)] == [b.entropy() for _ in range(5)]


class TestSoftReset:
    def test_reset_loads_vectors_from_flash(self):
        device = make_device()
        assert device.cpu.pc == C.FLASH_BASE + 8  # `boot` label
        assert device.cpu.a[7] == 0x7000

    def test_reset_restarts_tick_counter(self):
        device = make_device()
        device.advance(500)
        device.soft_reset()
        assert device.tick == 0

    def test_ram_survives_soft_reset(self):
        device = make_device()
        device.mem.ram.write32(0x8000, 0xDEADBEEF)
        device.soft_reset()
        assert device.mem.ram.read32(0x8000) == 0xDEADBEEF


class _CountingTracer:
    def __init__(self):
        self.counts = {}

    def reference(self, addr, kind, region):
        key = (kind, region)
        self.counts[key] = self.counts.get(key, 0) + 1


class TestMemoryMap:
    def test_flash_write_protected(self):
        device = make_device()
        with pytest.raises(BusError):
            device.mem.write16(C.FLASH_BASE + 0x100, 1)

    def test_unmapped_address_raises(self):
        device = make_device()
        with pytest.raises(BusError):
            device.mem.read8(0x0800_0000)

    def test_region_classification(self):
        device = make_device()
        assert device.mem.region_of(0x1000) == REGION_RAM
        assert device.mem.region_of(C.FLASH_BASE) == REGION_FLASH

    def test_tracer_sees_fetches_and_data(self):
        device = make_device()
        tracer = _CountingTracer()
        device.mem.tracer = tracer
        device.schedule_button_press(5, Button.UP)
        device.advance(20)
        assert tracer.counts.get((KIND_FETCH, REGION_FLASH), 0) > 0  # ISR code
        assert tracer.counts.get((KIND_WRITE, REGION_RAM), 0) > 0   # counters
        assert tracer.counts.get((KIND_READ, REGION_RAM), 0) > 0

    def test_long_access_counts_two_references(self):
        device = make_device()
        tracer = _CountingTracer()
        device.mem.tracer = tracer
        device.mem.read32(0x1000)
        assert tracer.counts[(KIND_READ, REGION_RAM)] == 2

    def test_flash_image_roundtrip(self):
        device = make_device()
        image = device.mem.dump_flash_image()
        assert len(image) == 1 << 20
        fresh = PalmDevice(ram_size=1 << 20, flash_size=1 << 20)
        fresh.mem.load_flash_image(image)
        assert fresh.mem.dump_flash_image() == image
