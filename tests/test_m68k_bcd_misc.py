"""Tests for the rarely-used corners of the 68000 ISA: BCD arithmetic,
TAS, MOVEP, CHK, and TRAPV."""

import pytest

from tests.m68k_utils import make_cpu, run_asm, run_asm_mem


class TestAbcd:
    def test_simple_bcd_add(self):
        # 27 + 15 = 42 in BCD.
        cpu = run_asm("""
            move    #0,ccr          ; clear X
            move.b  #$27,d0
            move.b  #$15,d1
            abcd    d0,d1
        """)
        assert cpu.d[1] & 0xFF == 0x42
        assert cpu.c == 0

    def test_bcd_add_with_carry_out(self):
        # 95 + 26 = 121 -> digit pair 21, carry set.
        cpu = run_asm("""
            move    #0,ccr
            move.b  #$95,d0
            move.b  #$26,d1
            abcd    d0,d1
        """)
        assert cpu.d[1] & 0xFF == 0x21
        assert cpu.c == 1 and cpu.x == 1

    def test_bcd_extend_chain(self):
        # Multi-byte BCD addition: 0999 + 0001 = 1000.
        cpu, mem = run_asm_mem("""
            lea     $3002,a0        ; a = 09 99 (big endian), end ptrs
            lea     $3006,a1        ; b = 00 01
            move.b  #$09,$3000
            move.b  #$99,$3001
            move.b  #$00,$3004
            move.b  #$01,$3005
            move    #0,ccr
            abcd    -(a1),-(a0)     ; low bytes
            abcd    -(a1),-(a0)     ; high bytes + carry
        """)
        assert mem.read8(0x3000) == 0x10
        assert mem.read8(0x3001) == 0x00

    def test_z_flag_accumulates(self):
        cpu = run_asm("""
            move    #$04,ccr        ; Z set, X clear
            move.b  #$00,d0
            move.b  #$00,d1
            abcd    d0,d1           ; zero result keeps Z
        """)
        assert cpu.z == 1
        cpu = run_asm("""
            move    #$04,ccr
            move.b  #$01,d0
            move.b  #$00,d1
            abcd    d0,d1           ; nonzero clears Z
        """)
        assert cpu.z == 0


class TestSbcdNbcd:
    def test_simple_bcd_sub(self):
        # 42 - 17 = 25 in BCD.
        cpu = run_asm("""
            move    #0,ccr
            move.b  #$17,d0
            move.b  #$42,d1
            sbcd    d0,d1
        """)
        assert cpu.d[1] & 0xFF == 0x25
        assert cpu.c == 0

    def test_bcd_sub_with_borrow(self):
        # 10 - 20 borrows: result 90, carry set.
        cpu = run_asm("""
            move    #0,ccr
            move.b  #$20,d0
            move.b  #$10,d1
            sbcd    d0,d1
        """)
        assert cpu.d[1] & 0xFF == 0x90
        assert cpu.c == 1

    def test_nbcd_negates(self):
        # 0 - 42 (BCD) = 58 with borrow.
        cpu = run_asm("""
            move    #0,ccr
            move.b  #$42,d0
            nbcd    d0
        """)
        assert cpu.d[0] & 0xFF == 0x58
        assert cpu.c == 1

    def test_nbcd_zero(self):
        cpu = run_asm("""
            move    #$04,ccr
            move.b  #$00,d0
            nbcd    d0
        """)
        assert cpu.d[0] & 0xFF == 0
        assert cpu.c == 0


class TestTas:
    def test_sets_high_bit_and_flags(self):
        cpu, mem = run_asm_mem("""
            lea     $3000,a0
            move.b  #$41,(a0)
            tas     (a0)
        """)
        assert mem.read8(0x3000) == 0xC1
        assert cpu.n == 0 and cpu.z == 0  # flags from the OLD value

    def test_zero_value(self):
        cpu, mem = run_asm_mem("""
            lea     $3000,a0
            move.b  #0,(a0)
            tas     (a0)
        """)
        assert mem.read8(0x3000) == 0x80
        assert cpu.z == 1

    def test_spinlock_idiom(self):
        cpu = run_asm("""
            lea     $3000,a0
            move.b  #0,(a0)
            tas     (a0)            ; first take: acquires (Z set)
            seq     d1
            tas     (a0)            ; second take: busy (Z clear)
            seq     d2
        """)
        assert cpu.d[1] & 0xFF == 0xFF
        assert cpu.d[2] & 0xFF == 0x00


class TestMovep:
    def test_word_register_to_memory_interleaves(self):
        cpu, mem = run_asm_mem("""
            lea     $3000,a0
            move.w  #$1234,d0
            movep.w d0,0(a0)
        """)
        assert mem.read8(0x3000) == 0x12
        assert mem.read8(0x3002) == 0x34

    def test_long_roundtrip(self):
        cpu = run_asm("""
            lea     $3000,a0
            move.l  #$cafebabe,d0
            movep.l d0,2(a0)
            moveq   #0,d1
            movep.l 2(a0),d1
        """)
        assert cpu.d[1] == 0xCAFEBABE

    def test_intermediate_bytes_untouched(self):
        cpu, mem = run_asm_mem("""
            lea     $3000,a0
            move.l  #$55555555,d5
            move.l  d5,(a0)
            move.l  d5,4(a0)
            move.w  #$aabb,d0
            movep.w d0,0(a0)
        """)
        assert mem.read8(0x3001) == 0x55  # the skipped odd byte


class TestChkTrapv:
    def test_chk_in_range_continues(self):
        cpu = run_asm("""
            lea     handler,a0
            move.l  a0,$18          ; vector 6
            move.w  #5,d0
            chk     #10,d0
            moveq   #1,d7
            bra.s   done
    handler:
            moveq   #9,d7
            rte
    done:
        """)
        assert cpu.d[7] == 1

    def test_chk_above_bound_traps(self):
        cpu = run_asm("""
            lea     handler,a0
            move.l  a0,$18
            move.w  #11,d0
            moveq   #0,d6
            chk     #10,d0
            moveq   #1,d7
            bra.s   done
    handler:
            moveq   #9,d6
            rte
    done:
        """)
        assert cpu.d[6] == 9
        assert cpu.d[7] == 1  # execution resumed after the chk

    def test_chk_negative_traps(self):
        cpu = run_asm("""
            lea     handler,a0
            move.l  a0,$18
            move.w  #-1,d0
            moveq   #0,d6
            chk     #10,d0
            moveq   #1,d7
            bra.s   done
    handler:
            moveq   #9,d6
            rte
    done:
        """)
        assert cpu.d[6] == 9

    def test_trapv_taken_and_not(self):
        cpu = run_asm("""
            lea     handler,a0
            move.l  a0,$1c          ; vector 7
            moveq   #0,d7
            move.w  #$7fff,d0
            addq.w  #1,d0           ; overflow: V set
            trapv
            move.w  #1,d1
            add.w   d1,d1           ; V clear
            trapv
            bra.s   done
    handler:
            addq.l  #1,d7
            rte
    done:
        """)
        assert cpu.d[7] == 1
