"""Property test: assemble → disassemble → reassemble is a fixpoint.

For a broad family of instructions, the assembler's encoding, the
disassembler's rendering and the structural decoder's length accounting
must all agree: assembling the disassembled text reproduces the exact
bytes, and ``decode_insn`` reports the same length as the disassembler.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.static.decode import decode_insn
from repro.m68k.asm import assemble
from repro.m68k.disasm import disassemble_one

ORIGIN = 0x1000

dreg = st.integers(0, 7).map("d{}".format)
areg = st.integers(0, 7).map("a{}".format)
size = st.sampled_from(["b", "w", "l"])
wl_size = st.sampled_from(["w", "l"])
quick = st.integers(1, 8)
disp16 = st.integers(-0x8000, 0x7FFF)


@st.composite
def mem_ea(draw):
    """A memory effective address (no immediates, no Dn/An)."""
    form = draw(st.sampled_from(["ind", "post", "pre", "disp"]))
    a = draw(areg)
    if form == "ind":
        return f"({a})"
    if form == "post":
        return f"({a})+"
    if form == "pre":
        return f"-({a})"
    return f"{draw(disp16)}({a})"


@st.composite
def move_line(draw):
    sz = draw(size)
    src = draw(st.one_of(dreg, mem_ea(),
                         st.integers(0, 0xFF).map("#{}".format)))
    dst = draw(st.one_of(dreg, mem_ea()))
    return f"move.{sz} {src},{dst}"


@st.composite
def arith_line(draw):
    op = draw(st.sampled_from(["add", "sub", "and", "or", "cmp"]))
    sz = draw(size)
    src = draw(st.one_of(dreg, mem_ea()))
    return f"{op}.{sz} {src},{draw(dreg)}"


@st.composite
def quick_line(draw):
    op = draw(st.sampled_from(["addq", "subq"]))
    sz = draw(size)
    dst = draw(st.one_of(dreg, mem_ea()))
    return f"{op}.{sz} #{draw(quick)},{dst}"


@st.composite
def single_op_line(draw):
    op = draw(st.sampled_from(["clr", "not", "neg", "tst"]))
    dst = draw(st.one_of(dreg, mem_ea()))
    return f"{op}.{draw(size)} {dst}"


@st.composite
def shift_line(draw):
    op = draw(st.sampled_from(["lsl", "lsr", "asl", "asr", "rol", "ror"]))
    count = draw(st.one_of(quick.map("#{}".format), dreg))
    return f"{op}.{draw(size)} {count},{draw(dreg)}"


@st.composite
def misc_line(draw):
    return draw(st.sampled_from([
        f"moveq #{draw(st.integers(-128, 127))},{draw(dreg)}",
        f"swap {draw(dreg)}",
        f"exg {draw(dreg)},{draw(dreg)}",
        f"lea {draw(disp16)}({draw(areg)}),{draw(areg)}",
        f"pea ({draw(areg)})",
        f"link {draw(areg)},#{draw(st.integers(-0x8000, 0))}",
        f"unlk {draw(areg)}",
        f"movea.{draw(wl_size)} {draw(areg)},{draw(areg)}",
        "nop",
        "rts",
    ]))


instruction = st.one_of(move_line(), arith_line(), quick_line(),
                        single_op_line(), shift_line(), misc_line())


@settings(max_examples=300, deadline=None)
@given(instruction)
def test_assemble_disassemble_reassemble(line):
    program = assemble("    " + line, origin=ORIGIN)
    blob = bytes(program.blob)

    def fetch(addr):
        off = addr - ORIGIN
        hi = blob[off] if off < len(blob) else 0
        lo = blob[off + 1] if off + 1 < len(blob) else 0
        return (hi << 8) | lo

    text, length = disassemble_one(fetch, ORIGIN)
    assert length == len(blob), (line, text)
    assert not text.startswith("dc.w"), (line, text)

    reassembled = bytes(assemble("    " + text, origin=ORIGIN).blob)
    assert reassembled == blob, (line, text)

    insn = decode_insn(fetch, ORIGIN)
    assert insn.length == length, (line, text)
