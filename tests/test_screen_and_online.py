"""Tests for the framebuffer renderer and online cache simulation."""

import numpy as np
import pytest

from repro import replay_session, standard_apps
from repro.analysis.screen import screen_ascii, screen_histogram, screenshot_ppm
from repro.cache import Cache, CacheConfig
from repro.device import Button
from repro.workloads import UserScript, collect_session

EMU_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}


@pytest.fixture(scope="module")
def session():
    script = (UserScript().at(80)
              .press(Button.DATEBOOK).wait(80)   # puzzle paints tiles
              .tap(50, 10).wait(40).tap(90, 50).wait(40))
    return collect_session(standard_apps(), script,
                           ram_size=EMU_KW["ram_size"])


class TestScreenRendering:
    def test_ascii_renders_painted_screen(self, session):
        emulator, _, _ = replay_session(session.initial_state, session.log,
                                        apps=standard_apps(), profile=False,
                                        emulator_kwargs=EMU_KW)
        art = screen_ascii(emulator.kernel)
        lines = art.splitlines()
        assert len(lines) > 10
        # Painted tiles show up as a mix of characters.
        assert len(set(art) - {"\n"}) > 2

    def test_ppm_screenshot_well_formed(self, session, tmp_path):
        emulator, _, _ = replay_session(session.initial_state, session.log,
                                        apps=standard_apps(), profile=False,
                                        emulator_kwargs=EMU_KW)
        path = tmp_path / "screen.ppm"
        screenshot_ppm(emulator.kernel, path)
        blob = path.read_bytes()
        assert blob.startswith(b"P6\n160 160\n255\n")
        assert len(blob) == len(b"P6\n160 160\n255\n") + 160 * 160 * 3

    def test_histogram_counts_pixels(self, session):
        emulator, _, _ = replay_session(session.initial_state, session.log,
                                        apps=standard_apps(), profile=False,
                                        emulator_kwargs=EMU_KW)
        histogram = screen_histogram(emulator.kernel)
        assert sum(histogram.values()) == 160 * 160
        assert len(histogram) > 2  # several tile colours on screen


class TestOnlineCaches:
    def test_online_matches_offline(self, session):
        """Feeding the cache during replay must agree with running it
        over the stored trace afterwards."""
        config = CacheConfig(4096, 16, 2)
        online = Cache(config)
        emulator, profiler, _ = replay_session(
            session.initial_state, session.log, apps=standard_apps(),
            emulator_kwargs=EMU_KW)
        # Re-run the stored trace offline.
        trace = profiler.reference_trace().memory_only()
        offline = Cache(config)
        offline.run(trace.addresses, trace.is_write)

        # And replay again with the online cache attached.
        emulator2, profiler2, _ = replay_session(
            session.initial_state, session.log, apps=standard_apps(),
            trace_references=False, emulator_kwargs=EMU_KW)
        # Attach mid-definition is not possible through replay_session;
        # verify determinism instead: same counts both replays.
        assert profiler2.total_refs == profiler.total_refs

        # Feed the trace through reference() to exercise the online path.
        probe = Profiler_with_cache(config)
        for addr, kinds in zip(trace.addresses, trace.kinds):
            probe.reference(int(addr), int(kinds) & 0x0F, int(kinds) >> 4)
        assert probe.online_caches[0].stats.misses == offline.stats.misses
        assert probe.online_caches[0].stats.accesses == offline.stats.accesses


def Profiler_with_cache(config):
    from repro.emulator import Profiler

    profiler = Profiler(trace_references=False)
    profiler.online_caches.append(Cache(config))
    return profiler


class TestOnlineCacheDuringReplay:
    def test_online_cache_attached_to_emulator(self, session):
        """Full integration: attach an online cache to a profiled
        replay and compare against the stored-trace result."""
        from repro.emulator import Emulator, PlaybackDriver

        config = CacheConfig(4096, 16, 2)

        def run(online_cache):
            emulator = Emulator(apps=standard_apps(), **EMU_KW)
            emulator.load_state(session.initial_state, final_reset=False)
            profiler = emulator.start_profiling(
                trace_references=online_cache is None)
            if online_cache is not None:
                profiler.online_caches.append(online_cache)
            driver = PlaybackDriver(emulator, session.log)
            driver.run(reset=True)
            return profiler

        with_trace = run(None)
        trace = with_trace.reference_trace().memory_only()
        offline = Cache(config)
        offline.run(trace.addresses, trace.is_write)

        online = Cache(config)
        run(online)
        assert online.stats.accesses == offline.stats.accesses
        assert online.stats.misses == offline.stats.misses
