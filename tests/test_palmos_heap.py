"""Unit and property tests for the chunked next-fit heap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.m68k import FlatMemory
from repro.palmos.access import HostAccess
from repro.palmos.heap import Heap, HeapError
from repro.palmos import layout as L

BASE = 0x1000
LIMIT = 0x20000
ROVER = 0x100


def make_heap() -> Heap:
    mem = FlatMemory(1 << 20)
    heap = Heap(HostAccess(mem), BASE, LIMIT, ROVER)
    heap.format()
    return heap


class TestAllocFree:
    def test_fresh_heap_is_one_free_chunk(self):
        heap = make_heap()
        chunks = list(heap.chunks())
        assert len(chunks) == 1
        assert chunks[0].free
        assert chunks[0].size == LIMIT - BASE

    def test_alloc_returns_payload_inside_heap(self):
        heap = make_heap()
        ptr = heap.alloc(100)
        assert BASE < ptr < LIMIT
        assert heap.payload_size(ptr) >= 100

    def test_alloc_zero_or_negative_fails(self):
        heap = make_heap()
        assert heap.alloc(0) == 0
        assert heap.alloc(-4) == 0

    def test_allocations_do_not_overlap(self):
        heap = make_heap()
        spans = []
        for size in [10, 200, 3000, 7, 64]:
            ptr = heap.alloc(size)
            assert ptr
            spans.append((ptr, ptr + size))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_free_then_realloc_reuses_space(self):
        heap = make_heap()
        before = heap.free_bytes()
        ptr = heap.alloc(1000)
        heap.free(ptr)
        assert heap.free_bytes() == before

    def test_double_free_detected(self):
        heap = make_heap()
        ptr = heap.alloc(64)
        heap.free(ptr)
        with pytest.raises(HeapError):
            heap.free(ptr)

    def test_out_of_memory_returns_zero(self):
        heap = make_heap()
        assert heap.alloc(LIMIT) == 0

    def test_exhaustion_and_recovery(self):
        heap = make_heap()
        ptrs = []
        while True:
            ptr = heap.alloc(4000)
            if not ptr:
                break
            ptrs.append(ptr)
        assert len(ptrs) > 10
        for ptr in ptrs:
            heap.free(ptr)
        # Everything coalesced back into one chunk.
        assert heap.alloc(LIMIT - BASE - L.CHUNK_HEADER_SIZE - 8)

    def test_coalesce_forward(self):
        heap = make_heap()
        a = heap.alloc(100)
        b = heap.alloc(100)
        heap.alloc(100)  # guard
        heap.free(b)
        heap.free(a)  # must merge with b's chunk
        big = next(c for c in heap.chunks() if c.free)
        assert big.size >= 2 * (100 + L.CHUNK_HEADER_SIZE)

    def test_owner_recorded(self):
        heap = make_heap()
        heap.alloc(64, owner=L.OWNER_DATABASE)
        used = [c for c in heap.chunks() if not c.free]
        assert used[0].owner == L.OWNER_DATABASE

    def test_alloc_cost_grows_with_chunk_count(self):
        """The organic memory-manager effect: more chunks, more walking."""

        class CountingAccess(HostAccess):
            reads = 0

            def read32(self, addr):
                CountingAccess.reads += 1
                return super().read32(addr)

        mem = FlatMemory(1 << 21)
        heap = Heap(CountingAccess(mem), BASE, 0x100000, ROVER)
        heap.format()
        # Fill with many small chunks, then free them all: next alloc
        # must coalesce-walk... use fresh rover from base by freeing.
        for _ in range(500):
            assert heap.alloc(16)
        CountingAccess.reads = 0
        heap.free_bytes()  # full walk
        walk_cost = CountingAccess.reads
        assert walk_cost >= 500  # at least one header read per chunk


class TestNextFit:
    def test_rover_advances(self):
        heap = make_heap()
        a = heap.alloc(64)
        b = heap.alloc(64)
        assert b > a  # next-fit moves forward, not first-fit reuse

    def test_wraps_around(self):
        heap = make_heap()
        first = heap.alloc(4000)
        while heap.alloc(4000):
            pass  # exhaust; rover now points near the end
        heap.free(first)
        again = heap.alloc(3000)  # must wrap back to the freed head chunk
        assert again == first


class TestHeaderValidation:
    """Typed errors for corrupt or fabricated chunk pointers."""

    def test_odd_payload_pointer_rejected(self):
        heap = make_heap()
        with pytest.raises(HeapError, match="invalid chunk"):
            heap.header_of(BASE + L.CHUNK_HEADER_SIZE + 1)

    def test_payload_outside_heap_rejected(self):
        heap = make_heap()
        for bogus in (0, BASE - 0x100, LIMIT + 0x100):
            with pytest.raises(HeapError, match="invalid chunk"):
                heap.header_of(bogus)

    def test_corrupt_flag_bits_rejected(self):
        heap = make_heap()
        ptr = heap.alloc(64)
        flags_addr = ptr - L.CHUNK_HEADER_SIZE + 4
        heap.access.write16(flags_addr, 0xBEEF)
        with pytest.raises(HeapError, match="unknown flag bits"):
            heap.header_of(ptr)

    def test_free_rejects_fabricated_pointer(self):
        heap = make_heap()
        heap.alloc(64)
        with pytest.raises(HeapError, match="invalid chunk"):
            heap.free(LIMIT + 0x10)

    def test_payload_size_rejects_fabricated_pointer(self):
        heap = make_heap()
        with pytest.raises(HeapError, match="invalid chunk"):
            heap.payload_size(BASE - 2)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(8, 2000), min_size=1, max_size=60),
       st.data())
def test_random_alloc_free_invariants(sizes, data):
    """Chunk list stays well-formed under arbitrary alloc/free orders."""
    heap = make_heap()
    live = []
    for size in sizes:
        ptr = heap.alloc(size)
        if ptr:
            live.append((ptr, size))
        if live and data.draw(st.booleans()):
            idx = data.draw(st.integers(0, len(live) - 1))
            ptr, _ = live.pop(idx)
            heap.free(ptr)
    # Invariant 1: chunks tile the heap exactly.
    total = sum(c.size for c in heap.chunks())
    assert total == LIMIT - BASE
    # Invariant 2: every live pointer is inside an allocated chunk.
    used = [(c.addr, c.addr + c.size) for c in heap.chunks() if not c.free]
    for ptr, size in live:
        assert any(lo + L.CHUNK_HEADER_SIZE == ptr and ptr + size <= hi
                   for lo, hi in used)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(8, 2000), min_size=1, max_size=60),
       st.data())
def test_random_alloc_free_coalesce_walk_consistent(sizes, data):
    """Interleaved alloc/free/coalesce keeps the heap walk consistent:
    the chunks always tile [base, limit) exactly, and after a
    ``coalesce_all`` no two free chunks sit adjacent."""
    heap = make_heap()
    live = []

    def check_walk(coalesced):
        chunks = list(heap.chunks())
        # Chunks tile the heap: contiguous, in order, summing to limit.
        addr = heap.first_chunk
        for c in chunks:
            assert c.addr == addr
            addr += c.size
        assert addr == LIMIT
        assert sum(c.size for c in chunks) == LIMIT - BASE
        if coalesced:
            for a, b in zip(chunks, chunks[1:]):
                assert not (a.free and b.free)

    for size in sizes:
        ptr = heap.alloc(size)
        if ptr:
            live.append(ptr)
        action = data.draw(st.integers(0, 2))
        if action == 0 and live:
            heap.free(live.pop(data.draw(st.integers(0, len(live) - 1))))
        elif action == 1:
            heap.coalesce_all()
            check_walk(coalesced=True)
        check_walk(coalesced=False)

    for ptr in live:
        heap.free(ptr)
    heap.coalesce_all()
    check_walk(coalesced=True)
    # All memory returned: one free chunk spanning the heap.
    chunks = list(heap.chunks())
    assert len(chunks) == 1 and chunks[0].free
