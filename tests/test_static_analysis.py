"""Tests for the static analysis subsystem (repro.analysis.static)."""

import pytest

from repro.analysis.static import (Severity, TrapCensus, analyze_image,
                                   analyze_rom, decode_insn, is_legal, walk)
from repro.analysis.static.decode import (K_CALL, K_CONDBRANCH, K_ILLEGAL,
                                          K_RETURN, K_TRAP)
from repro.m68k.asm import assemble
from repro.m68k.disasm import disassemble_one

ORIGIN = 0x1000


def _fetch_of(blob: bytes, base: int = ORIGIN):
    def fetch(addr: int) -> int:
        off = addr - base
        if 0 <= off + 1 < len(blob) + 1:
            hi = blob[off] if off < len(blob) else 0
            lo = blob[off + 1] if off + 1 < len(blob) else 0
            return (hi << 8) | lo
        return 0
    return fetch


def _analyze(source: str, roots=("start",), **kw):
    program = assemble(source, origin=ORIGIN)
    blob = bytes(program.blob)
    addrs = [program.symbols[r] if isinstance(r, str) else r for r in roots]
    return program, analyze_image(blob, ORIGIN, addrs, **kw)


# ----------------------------------------------------------------------
# Satellite: the disassembler is total
# ----------------------------------------------------------------------
class TestDisassemblerTotality:
    def test_all_65536_words_disassemble(self):
        """Every opcode word disassembles without raising; words the
        disassembler can't render come back as dc.w with length 2."""
        mem = {}

        def fetch(addr):
            return mem.get(addr, 0)

        for op in range(0x10000):
            mem[0] = op
            text, length = disassemble_one(fetch, 0)
            assert length >= 2, f"op {op:#06x} length {length}"
            if text.startswith("dc.w"):
                assert length == 2, f"op {op:#06x}: dc.w must be 2 bytes"
                assert text == f"dc.w ${op:04x}"

    def test_decode_and_disasm_agree_on_length(self):
        """For every interpreter-legal word, the structural decoder and
        the disassembler account for the same extension words — the CFG
        walker depends on this."""
        mem = {}

        def fetch(addr):
            return mem.get(addr, 0)

        for op in range(0x10000):
            if not is_legal(op):
                continue
            mem[0] = op
            _, disasm_len = disassemble_one(fetch, 0)
            insn = decode_insn(fetch, 0)
            assert insn.length == disasm_len, (
                f"op {op:#06x}: decode {insn.length} != disasm {disasm_len}")

    def test_every_dcw_word_is_interpreter_illegal(self):
        """The disassembler only falls back to dc.w for words the
        interpreter also rejects (A/F-line words excepted: those render
        as traps/emucalls, never dc.w)."""
        mem = {}

        def fetch(addr):
            return mem.get(addr, 0)

        for op in range(0x10000):
            if op >> 12 in (0xA, 0xF):
                continue
            mem[0] = op
            text, _ = disassemble_one(fetch, 0)
            if text.startswith("dc.w") and op != 0x4AFC:
                assert not is_legal(op), (
                    f"op {op:#06x} is legal but renders as dc.w")


# ----------------------------------------------------------------------
# The CFG walker
# ----------------------------------------------------------------------
class TestWalker:
    def test_loop(self):
        program, analysis = _analyze("""
start:  moveq   #5,d0
loop:   subq.l  #1,d0
        bne.s   loop
        rts
""")
        cfg = analysis.cfg
        start = program.symbols["start"]
        loop = program.symbols["loop"]
        assert start in cfg.blocks and loop in cfg.blocks
        loop_block = cfg.blocks[loop]
        assert loop_block.terminator.kind == K_CONDBRANCH
        assert loop in loop_block.succs                  # the back edge
        assert loop_block.end in cfg.blocks              # the exit block
        assert cfg.blocks[loop_block.end].terminator.kind == K_RETURN
        assert cfg.reachable == set(cfg.blocks)
        assert analysis.report.ok

    def test_call_and_return(self):
        program, analysis = _analyze("""
start:  bsr.s   sub
        moveq   #0,d0
        rts
sub:    moveq   #1,d1
        rts
""")
        cfg = analysis.cfg
        sub = program.symbols["sub"]
        start_block = cfg.blocks[program.symbols["start"]]
        assert start_block.terminator.kind == K_CALL
        assert sub in start_block.calls
        assert sub in cfg.function_entries
        assert start_block.end in start_block.succs      # call falls through
        assert analysis.report.ok

    def test_trap_edge_and_census(self):
        program = assemble("""
start:  dc.w    $a001          ; EvtGetEvent
        rts
stub:   rte
""", origin=ORIGIN)
        blob = bytes(program.blob)
        stub = program.symbols["stub"]
        cfg = walk(_fetch_of(blob), [program.symbols["start"]],
                   code_range=(ORIGIN, ORIGIN + len(blob)),
                   trap_targets={1: stub})
        start_block = cfg.blocks[program.symbols["start"]]
        assert start_block.insns[0].kind == K_TRAP
        assert start_block.insns[0].trap == 1
        assert stub in start_block.calls                 # the A-line edge
        assert stub in cfg.reachable
        census = TrapCensus.from_cfg(cfg)
        assert census.names() == {"EvtGetEvent": 1}

    def test_dead_block_reported_via_candidates(self):
        source = """
start:  moveq   #0,d0
        rts
dead:   moveq   #1,d1          ; no edge ever reaches this
        rts
"""
        program = assemble(source, origin=ORIGIN)
        dead = program.symbols["dead"]
        _, analysis = _analyze(source, candidates=[dead])
        assert not analysis.cfg.contains_address(dead)
        findings = analysis.report.at(dead)
        assert any(f.code == "unreachable-code" for f in findings)
        assert analysis.report.ok                        # INFO, not an error

    def test_unterminated_block(self):
        program, analysis = _analyze("start:  moveq   #1,d0\n")
        assert analysis.report.has("unterminated-block")
        assert not analysis.report.ok

    def test_dominators(self):
        program, analysis = _analyze("""
start:  tst.l   d0
        beq.s   other
        moveq   #1,d1
other:  rts
""")
        cfg = analysis.cfg
        dom = cfg.dominators()
        start = program.symbols["start"]
        other = program.symbols["other"]
        # The entry dominates everything; the join point is dominated
        # by the entry but not by the skipped then-branch.
        then_block = [s for s in cfg.blocks if s not in (start, other)][0]
        assert dom[other] == {start, other}
        assert start in dom[then_block]


# ----------------------------------------------------------------------
# Injected defects: the analyzer flags the right addresses
# ----------------------------------------------------------------------
class TestInjectedDefects:
    def test_illegal_opcode_on_reachable_path(self):
        assert not is_legal(0x4E7B)                      # movec: not a 68000 op
        program, analysis = _analyze("""
start:  moveq   #0,d0
bad:    dc.w    $4e7b
""")
        bad = program.symbols["bad"]
        assert not analysis.report.ok
        findings = analysis.report.at(bad)
        assert any(f.code == "illegal-opcode"
                   and f.severity == Severity.ERROR for f in findings)
        assert analysis.cfg.instruction_at(bad).kind == K_ILLEGAL

    def test_flash_window_write(self):
        program, analysis = _analyze("""
start:  move.w  d0,$00200100
        rts
""", flash_range=(0x0020_0000, 0x0030_0000))
        start = program.symbols["start"]
        assert not analysis.report.ok
        findings = analysis.report.at(start)
        assert any(f.code == "flash-write"
                   and f.severity == Severity.ERROR for f in findings)

    def test_unaligned_long_access(self):
        program, analysis = _analyze("""
start:  move.l  $00002001,d0
        rts
""")
        assert analysis.report.has("unaligned-access")
        assert not analysis.report.ok

    def test_stack_imbalanced_subroutine(self):
        program, analysis = _analyze("""
start:  bsr.s   bad
        rts
bad:    move.l  d0,-(sp)       ; pushed, never popped
        rts
""")
        assert not analysis.report.ok
        imbalance = [f for f in analysis.report
                     if f.code == "stack-imbalance"]
        assert imbalance and imbalance[0].severity == Severity.ERROR

    def test_balanced_subroutine_with_link(self):
        program, analysis = _analyze("""
start:  bsr.s   sub
        rts
sub:    link    a6,#-16
        move.l  d0,-(sp)
        move.l  (sp)+,d0
        unlk    a6
        rts
""")
        assert analysis.report.ok


# ----------------------------------------------------------------------
# The shipped ROM
# ----------------------------------------------------------------------
class TestRomAnalysis:
    @pytest.fixture(scope="class")
    def rom(self):
        return analyze_rom()

    def test_no_error_findings(self, rom):
        assert rom.report.ok, rom.report.format()

    def test_all_stubs_reachable(self, rom):
        from repro.palmos.traps import Trap
        for trap in Trap:
            addr = rom.program.symbols[f"stub_{trap.name}"]
            assert addr in rom.cfg.reachable, f"stub_{trap.name} unreachable"

    def test_census_covers_boot_seed(self, rom):
        # rom_boot seeds the RNG through the trap path (SYS_SysRandom).
        assert "SysRandom" in rom.census.names()
        assert "EvtGetEvent" in rom.census.names()

    def test_dynamic_trap_histogram_against_census(self, rom):
        # Every trap in the census resolves to a name, and a synthetic
        # dynamic histogram of the census's own traps cross-checks clean.
        dynamic = {idx: len(sites) for idx, sites in rom.census.sites.items()}
        assert rom.census.compare_dynamic(dynamic).ok
        assert not rom.census.compare_dynamic({0x1FF: 3}).ok


# ----------------------------------------------------------------------
# Satellites: length agreement under random extensions, deterministic
# unreachable-block ordering, and stable report sorting
# ----------------------------------------------------------------------
class TestLengthAgreementProperty:
    """decode.py and disasm.py must agree on instruction length for
    every opcode word regardless of what follows it in memory — the
    walker's block boundaries and the disassembler's listing otherwise
    drift apart."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=300, deadline=None)
    @given(op=st.integers(0, 0xFFFF),
           exts=st.lists(st.integers(0, 0xFFFF), min_size=5, max_size=5))
    def test_lengths_agree_for_all_words(self, op, exts):
        from repro.analysis.static.decode import decode_insn, is_legal
        from repro.m68k.disasm import disassemble_one

        words = [op] + exts

        def fetch(addr):
            return words[(addr - ORIGIN) // 2]

        insn = decode_insn(fetch, ORIGIN)
        if not is_legal(op):
            # Words the interpreter rejects decode as a 2-byte illegal
            # marker; the disassembler may still render the pattern.
            assert insn.length == 2 and insn.kind == "illegal"
            return
        _, disasm_len = disassemble_one(fetch, ORIGIN)
        assert insn.length == disasm_len, (
            f"op {op:#06x} exts {[f'{w:#06x}' for w in exts]}: "
            f"decode {insn.length} != disasm {disasm_len}")
        assert 2 <= insn.length <= 12 and insn.length % 2 == 0


class TestUnreachableBlockOrdering:
    def _cfg(self, root_order):
        source = """
start:  moveq   #0,d0
        rts
deadb:  moveq   #2,d2
        rts
deada:  moveq   #1,d1
        rts
"""
        program = assemble(source, origin=ORIGIN)
        roots = [program.symbols[name] for name in root_order]
        cfg = walk(_fetch_of(bytes(program.blob)), roots)
        # Narrow the roots after the walk: the orphan blocks stay in
        # cfg.blocks but drop out of the reachable set.
        cfg.roots = (program.symbols["start"],)
        cfg._reachable = None
        return program, cfg

    def test_order_is_sorted_and_insertion_independent(self):
        program, cfg1 = self._cfg(["start", "deadb", "deada"])
        _, cfg2 = self._cfg(["deada", "start", "deadb"])
        dead1 = [b.start for b in cfg1.unreachable_blocks()]
        dead2 = [b.start for b in cfg2.unreachable_blocks()]
        expected = sorted([program.symbols["deadb"],
                           program.symbols["deada"]])
        assert dead1 == expected
        assert dead2 == expected
        # Repeated calls are stable too.
        assert [b.start for b in cfg1.unreachable_blocks()] == dead1


class TestReportOrdering:
    def test_sorted_is_severity_major_address_minor_and_stable(self):
        from repro.analysis.static.findings import Report, Severity

        report = Report()
        report.add(Severity.INFO, "c-info", "one", address=0x10)
        report.add(Severity.ERROR, "a-err", "late error", address=0x200)
        report.add(Severity.WARNING, "b-warn", "no address")
        report.add(Severity.ERROR, "a-err", "early error", address=0x20)
        report.add(Severity.WARNING, "b-warn", "first tie", address=0x40)
        report.add(Severity.WARNING, "b-warn2", "second tie", address=0x40)

        ordered = report.sorted()
        assert [f.severity for f in ordered] == [
            Severity.ERROR, Severity.ERROR,
            Severity.WARNING, Severity.WARNING, Severity.WARNING,
            Severity.INFO]
        # Errors ordered by address; addressless findings sort after
        # addressed ones of the same severity.
        assert [f.address for f in ordered[:2]] == [0x20, 0x200]
        assert [f.address for f in ordered[2:5]] == [0x40, 0x40, None]
        # Equal (severity, address) keeps insertion order: stable sort.
        assert [f.code for f in ordered[2:4]] == ["b-warn", "b-warn2"]
        # format() renders in the same order.
        lines = report.format().splitlines()
        assert lines[0].startswith("error") and "0x00000020" in lines[0]
        # The original findings list is untouched.
        assert report.findings[0].code == "c-info"
