"""Translation-validator tests.

Three layers:

* property — every block the fuser emits for random word-soup and
  structured programs (the :mod:`test_fastcore` generators) validates
  clean: the generated Python is proven equivalent to the per-insn
  reference semantics on every covered path, with zero error-severity
  findings;
* seeded miscompiles — one deterministic regression per corpus class
  asserting the validator reports the exact expected finding code;
* elision audits — tampered region facts and unproven sanitizer pcs
  must produce error findings, intact ones must not.
"""

import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.static.findings import Report, Severity
from repro.analysis.transval import (MISCOMPILE_CLASSES, Vector,
                                     audit_region_elisions,
                                     audit_sanitizer_elisions,
                                     baseline_keys, load_baseline,
                                     mutate_prov, new_findings_against,
                                     save_baseline, selftest,
                                     validate_block)
from repro.device.device import PalmDevice
from repro.emulator.profiling import Profiler

RAM_SIZE = 1 << 20
FLASH_SIZE = 1 << 16
CODE = 0x1000
STACK_TOP = 0x8000

STOP_SUPER = (0x4E72, 0x2700)  # stop #$2700

# Supports all four miscompile mutators: flag materializations, RAM
# read/write tokens, cycle batches and multi-token extends.
MEMMIX = [0x41F8, 0x3000,   # lea (0x3000).w, a0
          0x3010,           # move.w (a0), d0
          0x2248,           # movea.l a0, a1
          0x2290,           # move.l (a0), (a1)
          0x0C50, 0x0001,   # cmpi.w #1, (a0)
          0x6702,           # beq.s +2
          0x4A40,           # tst.w d0
          ] + list(STOP_SUPER)

STRAIGHT = [0x7001,          # moveq #1, d0
            0x0640, 0x7FFF,  # addi.w #0x7fff, d0
            0x3400,          # move.w d0, d1
            0x3081,          # move.w d1, (a0)
            0xE359,          # rol.w #1, d1
            ] + list(STOP_SUPER)

BULK_FILL = [0x7242,         # moveq #0x42, d1
             0x741E,         # moveq #30, d2
             0x41F8, 0x2000,  # lea (0x2000).w, a0
             0x30C1,          # move.w d1, (a0)+
             0x5382,          # subq.l #1, d2
             0x66FA,          # bne.s <loop>
             ] + list(STOP_SUPER)


def _collect_provs(words, cycle_limit=200_000):
    """Run ``words`` on the fast core with eager fusion; returns the
    provenance of every block the fuser compiled."""
    dev = PalmDevice(ram_size=RAM_SIZE, flash_size=FLASH_SIZE,
                     core="fast")
    mem = dev.mem
    mem.ram.write32(0, STACK_TOP)
    mem.ram.write32(4, CODE)
    mem.ram.load(CODE, b"".join(struct.pack(">H", w & 0xFFFF)
                                for w in words))
    dev.cpu.reset()
    dev.core.fuse_threshold = 1
    prof = Profiler(trace_references=True)
    mem.tracer = prof
    dev.cpu.opcode_hook = prof.opcode
    provs = []
    dev.core.fuse_validator = lambda block: provs.append(block.prov)
    try:
        dev._run_cpu_until_cycles(dev.cpu.cycles + cycle_limit)
    except Exception:
        pass  # guest faults are a legitimate program outcome
    return dev, provs


def _assert_validates_clean(provs):
    for prov in provs:
        report, stats = validate_block(prov)
        errors = report.errors
        assert not errors, (
            f"block {prov.pc:#x} failed validation:\n"
            + "\n".join(f.format() for f in errors)
            + f"\n--- generated source ---\n{prov.source}")


# ----------------------------------------------------------------------
# Property: everything the fuser emits validates clean
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(words=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=48))
def test_word_soup_blocks_validate_clean(words):
    _dev, provs = _collect_provs(words + list(STOP_SUPER),
                                 cycle_limit=50_000)
    _assert_validates_clean(provs)


_SAFE_OPS = [
    (0x7001,), (0x7202,), (0xD240,), (0x4A41,), (0x4641,),
    (0xE359,), (0x3401,), (0x0642, 0x0007), (0xB542,), (0x4E71,),
]


@st.composite
def _structured(draw):
    words = []
    for _ in range(draw(st.integers(1, 5))):
        words.extend(draw(st.sampled_from(_SAFE_OPS)))
    shape = draw(st.sampled_from(["dbf", "beq", "none"]))
    if shape == "dbf":
        words = [0x7005] + words
        words += [0x51C8, (-2 * (len(words) - 1)) & 0xFFFF]
    elif shape == "beq":
        words += [0x6702, 0x4A41]
    return words + list(STOP_SUPER)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(words=_structured())
def test_structured_blocks_validate_clean(words):
    _dev, provs = _collect_provs(words, cycle_limit=100_000)
    _assert_validates_clean(provs)


def test_deterministic_programs_validate_with_full_coverage():
    """The three reference programs fuse and certify (every live arm
    covered) with zero findings of any severity."""
    for words in (MEMMIX, STRAIGHT, BULK_FILL):
        _dev, provs = _collect_provs(words)
        assert provs, "program did not fuse"
        for prov in provs:
            report, stats = validate_block(prov)
            assert len(report) == 0, "\n".join(
                f.format() for f in report)
            assert stats.arms_covered == stats.arms


# ----------------------------------------------------------------------
# Seeded miscompiles: each class must be caught with the exact code
# ----------------------------------------------------------------------
def _mutant_report(class_name):
    mutator, expected = MISCOMPILE_CLASSES[class_name]
    _dev, provs = _collect_provs(MEMMIX)
    for prov in provs:
        clone = mutate_prov(prov, mutator)
        if clone is not None:
            report, _stats = validate_block(clone)
            return report, expected
    pytest.fail(f"no fused block supports mutation '{class_name}'")


@pytest.mark.parametrize("class_name", sorted(MISCOMPILE_CLASSES))
def test_miscompile_class_is_detected(class_name):
    report, expected = _mutant_report(class_name)
    assert report.has(expected), (
        f"expected {expected}, got {sorted(set(report.codes()))}")
    assert any(f.severity == Severity.ERROR for f in report
               if f.code == expected)


def test_selftest_passes_on_real_corpus():
    _dev, provs = _collect_provs(MEMMIX)
    _dev2, provs2 = _collect_provs(STRAIGHT)
    report = selftest(provs + provs2)
    assert not report.errors, "\n".join(f.format() for f in report)
    # One INFO detection per class.
    infos = [f for f in report if f.severity == Severity.INFO]
    assert len(infos) == len(MISCOMPILE_CLASSES)


def test_mutate_prov_is_a_noop_safe_clone():
    _dev, provs = _collect_provs(MEMMIX)
    prov = provs[0]
    mutator, _ = MISCOMPILE_CLASSES["stale-token"]
    clone = mutate_prov(prov, mutator)
    assert clone is not None
    assert clone.source != prov.source
    assert clone.source_hash != prov.source_hash
    assert clone.pc == prov.pc          # identity is preserved
    # The original provenance is untouched.
    report, _stats = validate_block(prov)
    assert not report.errors


# ----------------------------------------------------------------------
# Provenance and validator plumbing
# ----------------------------------------------------------------------
def test_provenance_records_identity_and_source():
    _dev, provs = _collect_provs(MEMMIX)
    prov = provs[0]
    assert prov.insn_count == len(prov.entries)
    assert len(prov.source_hash) == 64
    assert prov.source.startswith("def f(cpu, limit, ex):")
    assert prov.code and all(isinstance(b, bytes) for _a, b in prov.code)


def test_hot_blocks_carry_fused_provenance():
    dev, provs = _collect_provs(MEMMIX)
    rows = dev.core.hot_blocks(8)
    fused = [r for r in rows if "fused_insns" in r]
    assert fused, "no hot row carries provenance"
    row = fused[0]
    assert row["source_hash"] == provs[0].source_hash[:12]
    assert row["fused_insns"] == provs[0].insn_count
    assert isinstance(row["elisions"], int)


def test_validator_flags_are_part_of_the_journal():
    """A vector with all-ones incoming flags exists in every battery —
    the fix for gate-exit flag blindness (a dropped materialization
    whose reference value is zero is invisible with zeroed flags)."""
    vec = Vector(d=(0,) * 8, a=(0,) * 8, x=1, n=1, z=1, v=1, c=1)
    assert (vec.x, vec.n, vec.z, vec.v, vec.c) == (1, 1, 1, 1, 1)


# ----------------------------------------------------------------------
# Elision audits
# ----------------------------------------------------------------------
class _FakeProv:
    def __init__(self, pc, region, elisions):
        self.pc = pc
        self.region = region
        self.elisions = elisions
        self.source_hash = "f" * 64


def test_region_elision_audit_accepts_fresh_facts():
    prov = _FakeProv(0x10000100, 1, [(0x10000104, "read", 1)])
    report = audit_region_elisions([prov], {0x10000104: (1, None)})
    assert len(report) == 0


def test_region_elision_audit_rejects_stale_fact():
    prov = _FakeProv(0x10000100, 1, [(0x10000104, "read", 1)])
    # Fresh derivation now says the access reads RAM (or proves
    # nothing): either way the baked flash arm is unjustified.
    for fresh in ({0x10000104: (0, None)}, {}):
        report = audit_region_elisions([prov], fresh)
        assert report.has("tv-elide-region")
        assert report.errors


def test_region_elision_audit_rejects_ram_resident_block():
    prov = _FakeProv(0x2000, 0, [(0x2004, "read", 0)])
    report = audit_region_elisions([prov], {0x2004: (0, None)})
    assert report.has("tv-elide-region")


def test_sanitizer_elision_audit():
    clean = audit_sanitizer_elisions({0x100, 0x200}, {0x100, 0x200,
                                                      0x300})
    assert len(clean) == 0
    tampered = audit_sanitizer_elisions({0x100, 0x200}, {0x100})
    assert tampered.has("tv-elide-sanitizer")
    assert [f.address for f in tampered.errors] == [0x200]


# ----------------------------------------------------------------------
# Baseline plumbing
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    report = Report()
    report.add(Severity.WARNING, "tv-uncovered", "w", address=0x100)
    report.add(Severity.ERROR, "tv-mismatch-pc", "e", address=0x200)
    report.add(Severity.INFO, "tv-selftest", "i", address=0x300)
    path = tmp_path / "baseline.json"
    save_baseline(report, path)
    baseline = load_baseline(path)
    # INFO findings are not baselined; WARNING+ are.
    assert baseline == {("tv-uncovered", 0x100),
                        ("tv-mismatch-pc", 0x200)}
    assert new_findings_against(report, baseline) == []
    report.add(Severity.WARNING, "tv-uncovered", "new", address=0x400)
    fresh = new_findings_against(report, baseline)
    assert [(f.code, f.address) for f in fresh] == [("tv-uncovered",
                                                     0x400)]
    assert ("tv-uncovered", 0x400) in set(baseline_keys(report))
