"""Tests for the analysis layer: report formatters and energy models."""

import numpy as np
import pytest

from repro.analysis import (
    EnergyModel,
    format_access_times,
    format_miss_rates,
    format_opcode_table,
    format_overhead,
    format_overhead_multi,
    format_table1,
    format_validation,
)
from repro.cache import CacheConfig, RegionMix
from repro.cache.sweep import SweepPoint, paper_configurations
from repro.hacks.overhead import OverheadPoint


def fake_points():
    return [SweepPoint(config=c, accesses=1_000_000,
                       misses=int(1_000_000 * 0.1 / (i + 1)))
            for i, c in enumerate(paper_configurations())]


class TestFormatters:
    def test_table1_renders_all_rows(self):
        rows = [
            {"session": "session1", "events": 1243,
             "elapsed_ticks": 8_847_100, "ram_refs": 214_000_000,
             "flash_refs": 443_000_000, "ave_mem_cyc": 2.35},
        ]
        out = format_table1(rows)
        assert "session1" in out
        assert "24:34:31" in out     # the paper's elapsed time
        assert "2.35" in out

    def test_miss_rate_grid_has_all_sizes(self):
        out = format_miss_rates(fake_points())
        for size in ("1K", "2K", "4K", "8K", "16K", "32K", "64K"):
            assert size in out
        assert "Figure 5" in out

    def test_access_time_grid_includes_baseline(self):
        mix = RegionMix(1_000_000, 2_000_000)
        out = format_access_times(fake_points(), mix)
        assert "no cache: 2.333" in out
        assert "flash share 66.7%" in out

    def test_overhead_table(self):
        points = [OverheadPoint(records=0, calls=10, avg_cycles=1_000),
                  OverheadPoint(records=10_000, calls=10, avg_cycles=80_000)]
        out = format_overhead(points)
        assert "10,000" in out
        assert "Figure 3" in out

    def test_overhead_multi_aligns_columns(self):
        points = [OverheadPoint(records=0, calls=5, avg_cycles=1_000)]
        out = format_overhead_multi({"HackA": points, "HackB": points})
        assert "HackA" in out and "HackB" in out

    def test_validation_block(self):
        out = format_validation("log: VALID", "state: VALID")
        assert out.count("VALID") == 2

    def test_opcode_table_disassembles(self):
        out = format_opcode_table([(0x7005, 1000), (0x4E75, 10)], 1010)
        assert "moveq" in out
        assert "rts" in out
        assert "99.01%" in out


class TestEnergyModel:
    def test_no_cache_energy_flash_heavy(self):
        model = EnergyModel()
        mix = RegionMix(ram_refs=1, flash_refs=2)
        assert model.no_cache_energy(mix) == pytest.approx((1 + 6) / 3)

    def test_cached_energy_bounded_by_extremes(self):
        model = EnergyModel()
        mix = RegionMix(ram_refs=1_000, flash_refs=2_000)
        perfect = model.cached_energy(mix, 0.0)
        useless = model.cached_energy(mix, 1.0)
        assert perfect == pytest.approx(model.e_cache_hit)
        assert useless == pytest.approx(model.e_cache_hit
                                        + model.no_cache_energy(mix))

    def test_savings_monotone_in_miss_rate(self):
        model = EnergyModel()
        mix = RegionMix(1_000, 2_000)
        savings = [model.savings(mix, mr) for mr in (0.0, 0.1, 0.5, 1.0)]
        assert savings == sorted(savings, reverse=True)

    def test_empty_mix(self):
        model = EnergyModel()
        mix = RegionMix(0, 0)
        assert model.no_cache_energy(mix) == 0.0
        assert model.savings(mix, 0.5) == 0.0
