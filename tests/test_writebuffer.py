"""Tests for the write-buffer extension."""

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.cache.writebuffer import (
    WriteBuffer,
    simulate_with_write_buffer,
)


class TestWriteBufferUnit:
    def test_stores_below_depth_are_free(self):
        buffer = WriteBuffer(depth=4, drain_cycles=10)
        stalls = [buffer.store(now=0) for _ in range(4)]
        assert stalls == [0, 0, 0, 0]

    def test_fifth_back_to_back_store_stalls(self):
        buffer = WriteBuffer(depth=4, drain_cycles=10)
        for _ in range(4):
            buffer.store(now=0)
        assert buffer.store(now=0) == 10

    def test_buffer_drains_over_time(self):
        buffer = WriteBuffer(depth=4, drain_cycles=10)
        for _ in range(4):
            buffer.store(now=0)
        # 40 cycles later everything has drained: no stall.
        assert buffer.store(now=40) == 0

    def test_miss_drains_pending_writes(self):
        buffer = WriteBuffer(depth=4, drain_cycles=10)
        for _ in range(3):
            buffer.store(now=0)
        assert buffer.drain_for_miss(now=0) == 30
        assert buffer.drain_for_miss(now=100) == 0

    def test_stats_accumulate(self):
        buffer = WriteBuffer(depth=1, drain_cycles=5)
        buffer.store(now=0)
        buffer.store(now=0)     # stalls 5
        buffer.drain_for_miss(now=0)
        assert buffer.stats.stores == 2
        assert buffer.stats.store_stall_cycles == 5
        assert buffer.stats.total_stall_cycles >= 5


class TestSimulation:
    CONFIG = CacheConfig(1024, 16, 2)

    def _trace(self, n=5_000, write_share=0.3, seed=0):
        rng = np.random.default_rng(seed)
        addresses = (rng.integers(0, 1 << 14, n) * 4).astype(np.uint32)
        writes = rng.random(n) < write_share
        regions = np.zeros(n, dtype=np.uint8)
        return addresses, writes, regions

    def test_read_only_trace_has_no_stalls(self):
        addresses, _, regions = self._trace()
        writes = np.zeros(len(addresses), dtype=bool)
        result = simulate_with_write_buffer(addresses, writes, regions,
                                            self.CONFIG)
        assert result.stall_cycles == 0
        assert result.cycles_per_access >= 1.0

    def test_deeper_buffer_never_hurts(self):
        addresses, writes, regions = self._trace(write_share=0.5)
        shallow = simulate_with_write_buffer(addresses, writes, regions,
                                             self.CONFIG, depth=1)
        deep = simulate_with_write_buffer(addresses, writes, regions,
                                          self.CONFIG, depth=16)
        assert deep.stall_cycles <= shallow.stall_cycles
        assert deep.misses == shallow.misses  # cache behaviour unchanged

    def test_flash_misses_cost_more(self):
        addresses, writes, regions_ram = self._trace()
        regions_flash = np.ones(len(addresses), dtype=np.uint8)
        ram = simulate_with_write_buffer(addresses, writes, regions_ram,
                                         self.CONFIG)
        flash = simulate_with_write_buffer(addresses, writes, regions_flash,
                                           self.CONFIG)
        assert flash.base_cycles > ram.base_cycles
        assert flash.misses == ram.misses

    def test_cycles_per_access_reasonable(self):
        addresses, writes, regions = self._trace()
        result = simulate_with_write_buffer(addresses, writes, regions,
                                            self.CONFIG)
        # Between pure-hit speed and the no-cache RAM baseline + slack.
        assert 1.0 <= result.cycles_per_access < 3.0

    def test_on_real_session_trace(self):
        """Integration: run a real profiled trace through the model."""
        from repro import replay_session, standard_apps
        from repro.device import Button
        from repro.workloads import UserScript, collect_session

        script = (UserScript().at(80).press(Button.MEMO).wait(50)
                  .tap(40, 120).wait(50))
        session = collect_session(standard_apps(), script,
                                  ram_size=8 << 20)
        _, profiler, _ = replay_session(
            session.initial_state, session.log, apps=standard_apps(),
            emulator_kwargs={"ram_size": 8 << 20, "flash_size": 1 << 20})
        trace = profiler.reference_trace().memory_only()
        result = simulate_with_write_buffer(
            trace.addresses[:200_000], trace.is_write[:200_000],
            trace.region[:200_000], self.CONFIG)
        assert result.accesses == min(200_000, len(trace))
        assert 1.0 <= result.cycles_per_access < 2.5
