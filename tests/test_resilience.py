"""Unit tests for the replay resilience subsystem: the checkpoint
container, the divergence watchdog's taxonomy, the trace salvage
parser, and the fault-spec grammar.  Integration tests that drive a
full emulator live in ``test_resilience_replay.py``.
"""

import pytest

from repro.resilience import (
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    DivergenceKind,
    DivergenceWatchdog,
    FaultPlan,
    FaultSpecError,
    TraceFormatError,
    salvage_log,
)
from repro.tracelog import (
    ActivityLog,
    LogEventType,
    LogRecord,
    split_epochs,
)
from repro.tracelog.parser import parse_log


def make_log(*specs) -> ActivityLog:
    """Build an ActivityLog from (type, tick[, data]) tuples."""
    log = ActivityLog()
    for spec in specs:
        etype, tick = spec[0], spec[1]
        data = spec[2] if len(spec) > 2 else 0
        log.append(LogRecord(etype, tick, tick * 10, data))
    return log


# ----------------------------------------------------------------------
# Checkpoint container
# ----------------------------------------------------------------------
class TestCheckpointContainer:
    def _sample(self) -> Checkpoint:
        return Checkpoint(
            manifest={"tick": 1234, "nested": {"pc": 0x10C0_0000}},
            sections={"ram": bytes(range(256)) * 64,   # compressible
                      "small": b"tiny"})               # stored raw

    def test_round_trip(self):
        cp = self._sample()
        again = Checkpoint.from_bytes(cp.to_bytes())
        assert again.manifest == cp.manifest
        assert again.sections == cp.sections
        assert again.tick == 1234

    def test_container_is_deterministic(self):
        cp = self._sample()
        assert cp.to_bytes() == cp.to_bytes()

    def test_corruption_is_detected(self):
        blob = bytearray(self._sample().to_bytes())
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(CheckpointError, match="digest"):
            Checkpoint.from_bytes(bytes(blob))

    def test_truncation_is_detected(self):
        blob = self._sample().to_bytes()
        with pytest.raises(CheckpointError):
            Checkpoint.from_bytes(blob[:-10])
        with pytest.raises(CheckpointError):
            Checkpoint.from_bytes(blob[:8])

    def test_bad_magic_is_detected(self):
        blob = bytearray(self._sample().to_bytes())
        body = b"NOTCKPT!" + bytes(blob[8:-32])
        import hashlib
        with pytest.raises(CheckpointError, match="magic"):
            Checkpoint.from_bytes(body + hashlib.sha256(body).digest())

    def test_save_load(self, tmp_path):
        cp = self._sample()
        path = cp.save(tmp_path / "sub" / "cp.bin")
        assert Checkpoint.load(path).manifest == cp.manifest


class TestCheckpointManager:
    def _cp(self, tick: int) -> Checkpoint:
        return Checkpoint(manifest={"tick": tick})

    def test_ring_trims_to_keep(self):
        mgr = CheckpointManager(keep=3)
        for tick in (100, 200, 300, 400, 500):
            mgr.add(self._cp(tick))
        assert mgr.ticks == [300, 400, 500]
        assert mgr.latest().tick == 500
        assert mgr.earliest().tick == 300

    def test_before_and_discard(self):
        mgr = CheckpointManager(keep=4)
        for tick in (100, 200, 300):
            mgr.add(self._cp(tick))
        assert mgr.before(250).tick == 200
        assert mgr.before(100) is None
        assert mgr.discard_latest().tick == 200
        assert mgr.ticks == [100, 200]

    def test_empty_ring(self):
        mgr = CheckpointManager()
        assert mgr.latest() is None
        assert mgr.earliest() is None
        assert mgr.discard_latest() is None

    def test_directory_mirror_and_reload(self, tmp_path):
        mgr = CheckpointManager(directory=tmp_path, keep=2)
        for tick in (100, 200, 300):
            mgr.add(self._cp(tick))
        # The trimmed checkpoint's file is unlinked with it.
        names = sorted(p.name for p in tmp_path.glob("ckpt-*.bin"))
        assert names == ["ckpt-000000000200.bin", "ckpt-000000000300.bin"]
        again = CheckpointManager.load_directory(tmp_path, keep=2)
        assert again.ticks == [200, 300]


# ----------------------------------------------------------------------
# Divergence watchdog
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_identical_logs_are_clean(self):
        log = make_log((LogEventType.PEN, 10, 5), (LogEventType.KEY, 20, 6))
        dog = DivergenceWatchdog(log)
        assert dog.check(log, final=True) == []
        assert not dog.diverged

    def test_payload_mismatch(self):
        original = make_log((LogEventType.PEN, 10, 0xAA))
        replayed = make_log((LogEventType.PEN, 10, 0xBB))
        dog = DivergenceWatchdog(original)
        (div,) = dog.check(replayed)
        assert div.kind is DivergenceKind.PAYLOAD_MISMATCH
        assert div.event_type == int(LogEventType.PEN)
        assert div.expected.data == 0xAA and div.actual.data == 0xBB

    def test_tick_skew_beyond_burst_bound(self):
        original = make_log((LogEventType.KEY, 100, 7))
        replayed = make_log((LogEventType.KEY, 100 + 20, 7))
        dog = DivergenceWatchdog(original, burst_bound=20)
        (div,) = dog.check(replayed)
        assert div.kind is DivergenceKind.TICK_SKEW

    def test_skew_within_burst_bound_is_tolerated(self):
        # §3.3: replay bursts may land late by up to the burst bound.
        original = make_log((LogEventType.KEY, 100, 7))
        replayed = make_log((LogEventType.KEY, 100 + 19, 7))
        dog = DivergenceWatchdog(original, burst_bound=20)
        assert dog.check(replayed, final=True) == []

    def test_missing_event_only_reported_at_final(self):
        original = make_log((LogEventType.PEN, 10, 1), (LogEventType.PEN, 20, 2))
        partial = make_log((LogEventType.PEN, 10, 1))
        dog = DivergenceWatchdog(original)
        assert dog.check(partial) == []           # mid-run: still pending
        (div,) = dog.check(partial, final=True)   # run over: truly missing
        assert div.kind is DivergenceKind.MISSING_EVENT
        assert div.expected.tick == 20 and div.actual is None

    def test_extra_event(self):
        original = make_log((LogEventType.PEN, 10, 1))
        replayed = make_log((LogEventType.PEN, 10, 1), (LogEventType.PEN, 15, 9))
        dog = DivergenceWatchdog(original)
        (div,) = dog.check(replayed)
        assert div.kind is DivergenceKind.EXTRA_EVENT
        assert div.expected is None and div.actual.data == 9

    def test_incremental_cursors_only_see_fresh_records(self):
        original = make_log((LogEventType.PEN, 10, 1), (LogEventType.PEN, 20, 2))
        bad_first = make_log((LogEventType.PEN, 10, 99))
        dog = DivergenceWatchdog(original)
        assert len(dog.check(bad_first)) == 1
        # Re-checking the same prefix reports nothing new; the report
        # accumulates rather than duplicating.
        assert dog.check(bad_first) == []
        assert len(dog.report.divergences) == 1

    def test_rewind_forgets_progress(self):
        original = make_log((LogEventType.PEN, 10, 1))
        replayed = make_log((LogEventType.PEN, 10, 42))
        dog = DivergenceWatchdog(original)
        dog.check(replayed)
        dog.rewind()
        # After a checkpoint restore the same records are re-fed.
        assert len(dog.check(replayed)) == 1

    def test_report_summary_and_format(self):
        original = make_log((LogEventType.PEN, 10, 1))
        dog = DivergenceWatchdog(original)
        dog.check(make_log((LogEventType.PEN, 10, 2)))
        dog.report.last_good_tick = 100
        dog.report.first_bad_tick = 200
        text = dog.report.format()
        assert "payload-mismatch" in text
        assert "last good checkpoint at wall tick 100" in text
        assert dog.report.kinds == [DivergenceKind.PAYLOAD_MISMATCH]


# ----------------------------------------------------------------------
# Trace salvage
# ----------------------------------------------------------------------
class TestSalvage:
    def test_clean_log_passes_untouched(self):
        log = make_log((LogEventType.PEN, 10), (LogEventType.KEY, 20))
        result = salvage_log(log)
        assert result.clean
        assert result.kept == 2 and result.dropped == 0

    def test_unknown_event_type_dropped_with_error(self):
        log = make_log((LogEventType.PEN, 10))
        log.append(LogRecord(0x7F7F, 15, 150, 0))  # lenient-decoded garbage
        result = salvage_log(log)
        assert result.kept == 1 and result.dropped == 1
        (finding,) = result.report.errors
        assert finding.code == "unknown-event-type"

    def test_implausible_tick_dropped(self):
        log = make_log((LogEventType.PEN, 10), (LogEventType.PEN, 1 << 40))
        result = salvage_log(log)
        assert result.dropped == 1
        assert result.report.errors[0].code == "implausible-tick"

    def test_oversized_keystate_masked(self):
        log = make_log((LogEventType.KEYSTATE, 10, 0x12340001))
        result = salvage_log(log)
        assert result.repaired == 1 and result.dropped == 0
        assert result.log.records[0].data == 0x0001
        assert result.report.warnings[0].code == "oversized-keystate"

    def test_exact_duplicate_dropped(self):
        rec = (LogEventType.PEN, 10, 5)
        result = salvage_log(make_log(rec, rec))
        assert result.kept == 1
        assert result.report.warnings[0].code == "duplicate-record"

    def test_duplicate_reset_records_survive(self):
        # Two RESETs delimit a real (empty) epoch — never deduplicated.
        result = salvage_log(make_log((LogEventType.RESET, 10),
                                      (LogEventType.RESET, 10)))
        assert result.kept == 2

    def test_reordered_burst_resorted_within_epoch(self):
        log = make_log((LogEventType.PEN, 30, 3), (LogEventType.PEN, 10, 1),
                       (LogEventType.PEN, 20, 2))
        result = salvage_log(log)
        assert [r.tick for r in result.log] == [10, 20, 30]
        assert result.repaired >= 1
        assert result.report.warnings[0].code == "non-monotonic-tick"

    def test_resort_never_crosses_epoch_boundary(self):
        # Epoch 2 restarts the tick counter: its tick 5 is *not* out of
        # order relative to epoch 1's tick 50.
        log = make_log((LogEventType.PEN, 50), (LogEventType.RESET, 60),
                       (LogEventType.PEN, 5))
        result = salvage_log(log)
        assert result.clean
        assert [r.tick for r in result.log] == [50, 60, 5]

    def test_strict_raises_typed_error_with_report(self):
        log = make_log((LogEventType.PEN, 10))
        log.append(LogRecord(0x7F7F, 15, 150, 0))
        with pytest.raises(TraceFormatError) as exc_info:
            salvage_log(log, strict=True)
        assert exc_info.value.report is not None
        assert exc_info.value.report.errors[0].code == "unknown-event-type"


# ----------------------------------------------------------------------
# Fault-spec grammar
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_single_spec(self):
        plan = FaultPlan.parse("drop")
        assert [s.name for s in plan.specs] == ["drop"]

    def test_params_and_multiple_specs(self):
        plan = FaultPlan.parse("truncate:at=14,clock-drift:at=500;seconds=7")
        trunc, drift = plan.specs
        assert trunc.params == {"at": 14}
        assert drift.params == {"at": 500, "seconds": 7}

    def test_trace_vs_runtime_split(self):
        plan = FaultPlan.parse("drop,crash:at=100")
        assert [s.name for s in plan.trace_specs] == ["drop"]
        assert [s.name for s in plan.runtime_specs] == ["crash"]

    @pytest.mark.parametrize("bad", ["", "nosuchfault", "drop:at", "drop:;",
                                     ",,"])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)

    def test_blank_segments_are_tolerated(self):
        assert [s.name for s in FaultPlan.parse("drop,,dup").specs] == \
            ["drop", "dup"]

    def _log(self, n=10):
        return make_log(*(((LogEventType.PEN, 10 * i, i) if i % 3
                           else (LogEventType.RANDOM, 10 * i, i))
                          for i in range(1, n + 1)))

    def test_corruption_is_seeded_and_reproducible(self):
        log = self._log()
        a, _ = FaultPlan.parse("bitflip:n=2;seed=7").apply_to_log(log)
        b, _ = FaultPlan.parse("bitflip:n=2;seed=7").apply_to_log(log)
        c, _ = FaultPlan.parse("bitflip:n=2;seed=8").apply_to_log(log)
        def as_tuples(lg):
            return [(int(r.type), r.tick, r.rtc, r.data) for r in lg]
        assert as_tuples(a) == as_tuples(b)
        assert as_tuples(a) != as_tuples(c)

    def test_apply_leaves_original_untouched(self):
        log = self._log()
        before = [(int(r.type), r.tick, r.data) for r in log]
        FaultPlan.parse("drop:n=3,dup,truncate:at=4").apply_to_log(log)
        assert [(int(r.type), r.tick, r.data) for r in log] == before

    def test_trace_fault_effects(self):
        log = self._log(9)
        dropped, _ = FaultPlan.parse("drop:n=2").apply_to_log(log)
        assert len(dropped) == 7
        duped, _ = FaultPlan.parse("dup:n=1").apply_to_log(log)
        assert len(duped) == 10
        cut, notes = FaultPlan.parse("truncate:at=4").apply_to_log(log)
        assert len(cut) == 4 and "kept 4/9" in notes[0]
        no_seeds, _ = FaultPlan.parse("seed-underflow:n=99").apply_to_log(log)
        assert all(r.type != LogEventType.RANDOM for r in no_seeds)
        garbled, _ = FaultPlan.parse("type-garbage").apply_to_log(log)
        assert any(not r.known_type for r in garbled)

    def test_garbled_log_is_salvageable(self):
        # The salvage parser must recover exactly the records the
        # injector garbled — the two halves of the harness agree.
        garbled, _ = FaultPlan.parse("type-garbage:n=2").apply_to_log(
            self._log(9))
        result = salvage_log(garbled)
        assert result.dropped == 2
        assert all(f.code == "unknown-event-type"
                   for f in result.report.errors)


# ----------------------------------------------------------------------
# Satellite: parse_log no longer silently drops unknown records
# ----------------------------------------------------------------------
class TestParseLogUnknown:
    def _log(self):
        log = make_log((LogEventType.PEN, 10))
        log.append(LogRecord(0x7F7F, 20, 200, 0))
        return log

    def test_collect_keeps_unknown_records(self):
        parsed = parse_log(self._log(), on_unknown="collect")
        assert len(parsed.unknown) == 1
        assert parsed.unknown[0].tick == 20

    def test_raise_mode(self):
        with pytest.raises(TraceFormatError):
            parse_log(self._log(), on_unknown="raise")

    def test_warn_mode_still_counts(self, recwarn):
        parsed = parse_log(self._log(), on_unknown="warn")
        assert len(parsed.unknown) == 1
        assert any("unknown" in str(w.message).lower() for w in recwarn.list)


# ----------------------------------------------------------------------
# Satellite: record decode hardening
# ----------------------------------------------------------------------
class TestRecordDecode:
    def test_short_blob_raises_typed_error(self):
        with pytest.raises(TraceFormatError):
            LogRecord.decode(b"\x00" * 4)

    def test_unknown_type_strict_vs_lenient(self):
        good = LogRecord(LogEventType.PEN, 5, 50, 0x1234).encode()
        bad = bytes([0x7F, 0x7F]) + good[2:]
        with pytest.raises(TraceFormatError):
            LogRecord.decode(bad)
        rec = LogRecord.decode(bad, strict=False)
        assert not rec.known_type and rec.type == 0x7F7F

    def test_round_trip_is_unchanged(self):
        rec = LogRecord(LogEventType.PEN, 123, 456, 0x8000_1234)
        assert LogRecord.decode(rec.encode()) == rec


# ----------------------------------------------------------------------
# Satellite: split_epochs edge cases
# ----------------------------------------------------------------------
class TestSplitEpochs:
    def test_empty_log_is_one_empty_epoch(self):
        epochs = split_epochs(ActivityLog())
        assert len(epochs) == 1 and len(epochs[0]) == 0

    def test_log_ending_exactly_on_reset_has_no_trailing_epoch(self):
        log = make_log((LogEventType.PEN, 10), (LogEventType.RESET, 20))
        epochs = split_epochs(log)
        assert len(epochs) == 1
        assert [r.type for r in epochs[0]] == [LogEventType.PEN,
                                               LogEventType.RESET]

    def test_consecutive_resets_make_an_epoch_of_one_reset(self):
        log = make_log((LogEventType.RESET, 10), (LogEventType.RESET, 5))
        epochs = split_epochs(log)
        assert len(epochs) == 2
        assert all(len(e) == 1 for e in epochs)
        assert all(e.records[0].type == LogEventType.RESET for e in epochs)

    def test_records_after_final_reset_form_their_own_epoch(self):
        log = make_log((LogEventType.PEN, 10), (LogEventType.RESET, 20),
                       (LogEventType.PEN, 5), (LogEventType.KEY, 8))
        epochs = split_epochs(log)
        assert len(epochs) == 2
        assert [r.tick for r in epochs[1]] == [5, 8]

    def test_reset_belongs_to_the_epoch_it_terminates(self):
        log = make_log((LogEventType.RESET, 10), (LogEventType.PEN, 5))
        epochs = split_epochs(log)
        assert epochs[0].records[-1].type == LogEventType.RESET
        assert epochs[1].records[0].type == LogEventType.PEN
