"""Differential tests: the fast (block-predecoding) replay core must be
bit-exact with the simple stepping core.

Three layers of evidence:

* hypothesis-generated random programs — word soup (exercising illegal
  opcodes, faults and the A-line/F-line single-step fallback) and
  structured branchy programs, including self-modifying code — run on
  both cores with identical cycle budgets, asserting identical
  registers, cycle/instruction counters, RAM images, profiler counts,
  packed reference traces and opcode histograms (and identical guest
  faults, when one is raised);
* a full recorded session replayed under both cores, comparing the
  replay result and every profiler statistic;
* checkpoint interop: a ``PRCKPT01`` snapshot taken under one core and
  resumed under the other must land on the reference final state.
"""

import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import replay_session, standard_apps
from repro.device.device import PalmDevice
from repro.emulator import Emulator, PlaybackDriver
from repro.emulator.profiling import Profiler
from repro.workloads import UserScript, collect_session

EMU_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}
_APPS = standard_apps()

RAM_SIZE = 1 << 20
FLASH_SIZE = 1 << 16
CODE = 0x1000
STACK_TOP = 0x8000

STOP_SUPER = (0x4E72, 0x2700)  # stop #$2700

# A pool of safe straight-line words the structured generator draws
# from (no control transfer, no privileged ops, no memory operands).
_SAFE_OPS = [
    (0x7001,),            # moveq #1, d0
    (0x7202,),            # moveq #2, d1
    (0xD240,),            # add.w d0, d1
    (0x4A41,),            # tst.w d1
    (0x4641,),            # not.w d1
    (0xE359,),            # rol.w #1, d1
    (0x3401,),            # move.w d1, d2
    (0x0642, 0x0007),     # addi.w #7, d2
    (0xB542,),            # eor.w d2, d2
    (0x4E71,),            # nop
]


def _run_words(core, words, cycle_limit=200_000):
    """Run ``words`` at CODE on a bare device with the given core."""
    dev = PalmDevice(ram_size=RAM_SIZE, flash_size=FLASH_SIZE, core=core)
    mem = dev.mem
    mem.ram.write32(0, STACK_TOP)
    mem.ram.write32(4, CODE)
    mem.ram.load(CODE, b"".join(struct.pack(">H", w & 0xFFFF)
                                for w in words))
    dev.cpu.reset()
    prof = Profiler(trace_references=True)
    mem.tracer = prof
    dev.cpu.opcode_hook = prof.opcode
    fault = None
    try:
        dev._run_cpu_until_cycles(dev.cpu.cycles + cycle_limit)
    except Exception as exc:  # guest fault: must be identical across cores
        fault = (type(exc).__name__, str(exc))
    return dev, prof, fault


def _assert_bit_exact(words, cycle_limit=200_000):
    dev_s, prof_s, fault_s = _run_words("simple", words, cycle_limit)
    dev_f, prof_f, fault_f = _run_words("fast", words, cycle_limit)
    assert fault_f == fault_s
    cs, cf = dev_s.cpu, dev_f.cpu
    assert cf.d == cs.d
    assert cf.a == cs.a
    assert cf.pc == cs.pc
    assert cf.sr == cs.sr
    assert cf.stopped == cs.stopped
    assert cf.cycles == cs.cycles
    assert cf.instructions == cs.instructions
    assert dev_f.mem.ram.data == dev_s.mem.ram.data
    assert prof_f.instructions == prof_s.instructions
    assert bytes(prof_f.opcode_counts) == bytes(prof_s.opcode_counts)
    assert prof_f.counts_bytes() == prof_s.counts_bytes()
    assert prof_f.trace_bytes() == prof_s.trace_bytes()


# ----------------------------------------------------------------------
# Random programs
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(words=st.lists(st.integers(0, 0xFFFF), min_size=1, max_size=64))
def test_word_soup_is_bit_exact(words):
    """Arbitrary words: covers illegal opcodes, A-line/F-line words
    (exercising the fast core's single-step fallback), guest faults and
    exception re-entry through the zeroed vector table."""
    _assert_bit_exact(words + list(STOP_SUPER), cycle_limit=50_000)


@st.composite
def branchy_programs(draw):
    """Structured programs: safe ALU runs broken up by short forward
    branches, DBcc loops and a trap through a patched vector."""
    words = []
    for _ in range(draw(st.integers(1, 6))):
        for _ in range(draw(st.integers(1, 8))):
            words.extend(draw(st.sampled_from(_SAFE_OPS)))
        shape = draw(st.sampled_from(["bra", "beq", "dbf", "none"]))
        if shape == "bra":
            words.append(0x6002)        # bra.s +2 (skip the next word)
            words.append(draw(st.integers(0, 0xFFFF)))  # skipped garbage
        elif shape == "beq":
            words.append(0x4A40)        # tst.w d0
            words.append(0x6702)        # beq.s +2
            words.append(0x4E71)        # nop (maybe skipped)
        elif shape == "dbf":
            words.extend((0x7603,))     # moveq #3, d3
            words.extend((0x5343, 0x66FC))  # subq.w #1,d3; bne.s -4
    words.extend(STOP_SUPER)
    return words


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(words=branchy_programs())
def test_branchy_programs_are_bit_exact(words):
    _assert_bit_exact(words)


def test_self_modifying_code_is_bit_exact():
    """The program overwrites an instruction *ahead of the pc* in its
    own (already predecoded) block: the fast core must notice the write
    and execute the new word, exactly as the stepping core does."""
    target = None
    words = [
        0x33FC, 0x4E71, 0x0000, 0x0000,  # move.w #$4e71, (target).l
        0x7001,                          # moveq #1, d0
        0x60FE,                          # placeholder at target: bra.s self
        0x7202,                          # moveq #2, d1  (after the patch)
    ]
    target = CODE + 2 * words.index(0x60FE)
    words[2] = (target >> 16) & 0xFFFF
    words[3] = target & 0xFFFF
    words.extend(STOP_SUPER)
    dev_s, _, fault = _run_words("simple", words, cycle_limit=10_000)
    assert fault is None and dev_s.cpu.stopped  # the patch really lands
    assert dev_s.cpu.d[1] == 2
    _assert_bit_exact(words, cycle_limit=10_000)


def test_self_modifying_same_block_tail():
    """A store into the word immediately after the storing instruction:
    the invalidation must take effect before the next instruction of
    the *currently running* block."""
    patch_at = CODE + 10
    words = [
        0x33FC, 0x0000, (patch_at >> 16) & 0xFFFF, patch_at & 0xFFFF,
        0x4E71,                      # nop (padding to make offsets even)
        0xFFFF,                      # at patch_at: replaced by 0x0000 ...
    ]
    # After the patch the word at patch_at is 0x0000; 0x0000 0x0000 is
    # ori.b #0, d0 — harmless — then fall through to stop.
    words.extend((0x0000,))          # immediate operand for the ori.b
    words.extend(STOP_SUPER)
    _assert_bit_exact(words, cycle_limit=10_000)


def test_aline_fline_boundary_words():
    """First/last words of the A-line and F-line spaces, mid-block."""
    for trap_word in (0xA000, 0xAFFF, 0xF000, 0xFFFE):
        words = [0x7001, 0x4E71, trap_word, 0x4E71]
        words.extend(STOP_SUPER)
        _assert_bit_exact(words, cycle_limit=50_000)


def test_unknown_core_name_rejected():
    with pytest.raises(ValueError):
        PalmDevice(ram_size=RAM_SIZE, flash_size=FLASH_SIZE, core="turbo")


# ----------------------------------------------------------------------
# Whole-session replay and checkpoint interop
# ----------------------------------------------------------------------
def _session_script():
    script = UserScript("fastcore")
    script.at(80)
    script.tap(80, 80, hold_ticks=4)
    script.wait(60)
    script.drag([(20, 30), (60, 70), (100, 110)], ticks_per_point=3)
    script.wait(60)
    script.tap(20, 150, hold_ticks=3)
    script.wait(200)
    return script


@pytest.fixture(scope="module")
def session():
    return collect_session(_APPS, _session_script(), name="fastcore",
                           entropy_seed=909, ram_size=EMU_KW["ram_size"])


def _profiler_fingerprint(prof):
    return (prof.instructions, bytes(prof.opcode_counts),
            prof.counts_bytes(), prof.trace_bytes())


def test_session_replay_matches_across_cores(session):
    results = {}
    for core in ("simple", "fast"):
        emulator, prof, result = replay_session(
            session.initial_state, session.log, apps=_APPS,
            emulator_kwargs={**EMU_KW, "core": core})
        results[core] = (vars(result), _profiler_fingerprint(prof),
                         bytes(emulator.device.mem.ram.data))
    assert results["fast"] == results["simple"]


def test_checkpoint_resumes_across_cores(session):
    """A checkpoint captured under one core must resume under the other
    and land on the reference final state (counters and profiler
    statistics included)."""
    finals = {}
    for capture_core, resume_core in (("fast", "simple"),
                                      ("simple", "fast")):
        cps = []
        emulator = Emulator(apps=_APPS, **EMU_KW, core=capture_core)
        emulator.load_state(session.initial_state, final_reset=False)
        emulator.start_profiling()
        driver = PlaybackDriver(emulator, session.log, checkpoint_every=100,
                                checkpoint_hook=cps.append)
        reference = driver.run(reset=True)
        assert cps, "session too short to capture a checkpoint"

        fresh = Emulator(apps=_APPS, **EMU_KW, core=resume_core)
        fresh.start_profiling()
        result = PlaybackDriver(fresh, session.log).resume_from(cps[0])
        assert vars(result) == vars(reference)
        assert bytes(fresh.device.mem.ram.data) == \
            bytes(emulator.device.mem.ram.data)
        assert _profiler_fingerprint(fresh.profiler) == \
            _profiler_fingerprint(emulator.profiler)
        finals[(capture_core, resume_core)] = vars(result)
    assert finals[("fast", "simple")] == finals[("simple", "fast")]
