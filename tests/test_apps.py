"""Tests for the guest applications and synthetic workloads."""

import pytest

from repro.apps import standard_apps
from repro.device import Button
from repro.palmos import PalmOS, layout as L
from repro.workloads import (
    SyntheticUser,
    TABLE1_SESSIONS,
    UserScript,
    build_session_script,
    preload_contacts,
)


def make_suite(**kwargs) -> PalmOS:
    kwargs.setdefault("ram_size", 4 << 20)
    kwargs.setdefault("flash_size", 1 << 20)
    kwargs.setdefault("default_app", "launcher")
    kernel = PalmOS(apps=standard_apps(), **kwargs)
    kernel.boot()
    return kernel


def press(kernel, tick, button):
    kernel.device.schedule_button_press(tick, button)
    kernel.device.schedule_button_release(tick + 3, button)


def tap(kernel, tick, x, y):
    kernel.device.schedule_pen_down(tick, x, y)
    kernel.device.schedule_pen_up(tick + 4)


class TestLauncher:
    def test_boots_into_launcher(self):
        kernel = make_suite()
        assert kernel.current_app_name() == "launcher"

    def test_tap_row_launches_app(self):
        kernel = make_suite()
        tap(kernel, 50, 60, 40)  # row 1 -> app id 2 = memopad
        kernel.device.run_until_idle()
        assert kernel.current_app_name() == "memopad"

    def test_tap_empty_row_returns_to_launcher(self):
        kernel = make_suite()
        tap(kernel, 50, 60, 150)  # row 4 -> app id 5 (unknown)
        kernel.device.run_until_idle()
        assert kernel.current_app_name() == "launcher"

    def test_draws_home_screen(self):
        kernel = make_suite()
        fb = kernel.host.read_bytes(L.FRAMEBUFFER, 160 * 160 * 2)
        assert any(b != 0xFF for b in fb)


class TestMemoPad:
    def _memopad(self):
        kernel = make_suite()
        press(kernel, 30, Button.MEMO)
        kernel.device.run_until_idle()
        assert kernel.current_app_name() == "memopad"
        return kernel

    def test_creates_database_on_start(self):
        kernel = self._memopad()
        assert kernel.dm_host.find("MemoDB")

    def test_tap_lower_half_adds_memo(self):
        kernel = self._memopad()
        tap(kernel, 100, 50, 120)
        tap(kernel, 130, 80, 140)
        kernel.device.run_until_idle()
        db = kernel.dm_host.find("MemoDB")
        assert kernel.dm_host.num_records(db) == 2
        rec = kernel.dm_host.read_record(db, 0)
        assert rec[:2] == b"M:"
        assert rec[2:4] == (50).to_bytes(2, "big")
        assert rec[4:6] == (120).to_bytes(2, "big")

    def test_tap_upper_half_ignored(self):
        kernel = self._memopad()
        tap(kernel, 100, 50, 20)
        kernel.device.run_until_idle()
        db = kernel.dm_host.find("MemoDB")
        assert kernel.dm_host.num_records(db) == 0

    def test_down_button_deletes_first_memo(self):
        kernel = self._memopad()
        tap(kernel, 100, 50, 120)
        tap(kernel, 130, 80, 140)
        press(kernel, 170, Button.DOWN)
        kernel.device.run_until_idle()
        db = kernel.dm_host.find("MemoDB")
        assert kernel.dm_host.num_records(db) == 1
        assert kernel.dm_host.read_record(db, 0)[2:4] == (80).to_bytes(2, "big")

    def test_memos_survive_reset(self):
        kernel = self._memopad()
        tap(kernel, 100, 50, 120)
        kernel.device.run_until_idle()
        kernel.boot()
        db = kernel.dm_host.find("MemoDB")
        assert kernel.dm_host.num_records(db) == 1


class TestPuzzle:
    def _puzzle(self, **kwargs):
        kernel = make_suite(**kwargs)
        press(kernel, 30, Button.DATEBOOK)
        kernel.device.run_until_idle()
        assert kernel.current_app_name() == "puzzle"
        return kernel

    def test_board_is_shuffled_permutation(self):
        kernel = self._puzzle()
        # Board lives in the puzzle's frame; read it via the blank
        # pointer invariants instead: the framebuffer has 15 coloured
        # tiles and one white cell.
        fb = kernel.host.read_bytes(L.FRAMEBUFFER, 160 * 160 * 2)
        assert any(b != 0xFF for b in fb)

    def test_shuffle_depends_on_clock(self):
        # Puzzle seeds SysRandom from TimGetSeconds at startup, so the
        # board depends on the device clock, not the boot entropy.
        boards = []
        for base in (3_124_137_600, 3_124_199_999):
            kernel = self._puzzle(rtc_base=base)
            boards.append(kernel.host.read_bytes(L.FRAMEBUFFER, 160 * 160 * 2))
        assert boards[0] != boards[1]

    def test_shuffle_deterministic_for_same_clock(self):
        boards = []
        for _ in range(2):
            kernel = self._puzzle(rtc_base=3_124_137_600)
            boards.append(kernel.host.read_bytes(L.FRAMEBUFFER, 160 * 160 * 2))
        assert boards[0] == boards[1]

    def test_taps_slide_tiles(self):
        kernel = self._puzzle(entropy_seed=5)
        before = kernel.host.read_bytes(L.FRAMEBUFFER, 160 * 160 * 2)
        tick = kernel.device.tick + 20
        for i in range(8):
            for (x, y) in [(20, 20), (60, 20), (60, 60), (20, 60),
                           (100, 60), (100, 100)]:
                tap(kernel, tick, x, y)
                tick += 10
        kernel.device.run_until_idle()
        after = kernel.host.read_bytes(L.FRAMEBUFFER, 160 * 160 * 2)
        assert after != before  # at least one slide happened

    def test_pen_taps_poll_keycurrentstate(self):
        from repro.hacks import HackManager
        from repro.tracelog import LogEventType, create_log_database, read_activity_log
        kernel = self._puzzle()
        create_log_database(kernel)
        HackManager(kernel).install_standard()
        tap(kernel, kernel.device.tick + 20, 60, 60)
        kernel.device.run_until_idle()
        log = read_activity_log(kernel)
        assert len(log.of_type(LogEventType.KEYSTATE)) == 1


class TestAddressBook:
    def test_scroll_and_draw(self):
        kernel = make_suite()
        preload_contacts(kernel, 10)
        press(kernel, 30, Button.ADDRESS)
        kernel.device.run_until_idle()
        assert kernel.current_app_name() == "addressbook"
        press(kernel, kernel.device.tick + 20, Button.DOWN)
        press(kernel, kernel.device.tick + 60, Button.UP)
        kernel.device.run_until_idle()
        fb = kernel.host.read_bytes(L.FRAMEBUFFER, 160 * 160 * 2)
        assert any(b != 0xFF for b in fb)

    def test_tap_broadcasts_notification(self):
        from repro.hacks import HackManager
        from repro.tracelog import LogEventType, create_log_database, read_activity_log
        kernel = make_suite()
        press(kernel, 30, Button.ADDRESS)
        kernel.device.run_until_idle()
        create_log_database(kernel)
        HackManager(kernel).install_standard()
        tap(kernel, kernel.device.tick + 20, 40, 40)
        kernel.device.run_until_idle()
        log = read_activity_log(kernel)
        notifies = log.of_type(LogEventType.NOTIFY)
        assert len(notifies) == 1
        assert notifies[0].data == 0x61627470  # 'abtp'


class TestSyntheticUser:
    def test_script_deterministic_per_seed(self):
        a = SyntheticUser(42).build_script(TABLE1_SESSIONS[0])
        b = SyntheticUser(42).build_script(TABLE1_SESSIONS[0])
        assert a.actions == b.actions

    def test_script_differs_across_seeds(self):
        spec = TABLE1_SESSIONS[0]
        a = SyntheticUser(1).build_script(spec)
        b = SyntheticUser(2).build_script(spec)
        assert a.actions != b.actions

    def test_duration_matches_spec(self):
        for spec in TABLE1_SESSIONS[:2]:
            script = build_session_script(spec)
            assert script.duration_ticks() == pytest.approx(spec.ticks,
                                                            rel=0.05)

    def test_actions_well_formed(self):
        script = build_session_script(TABLE1_SESSIONS[0])
        pen_depth = 0
        for _, kind, args in sorted(script.actions, key=lambda a: a[0]):
            if kind == "pen_down":
                assert pen_depth == 0
                pen_depth += 1
                assert 0 <= args[0] < 160 and 0 <= args[1] < 160
            elif kind == "pen_up":
                assert pen_depth == 1
                pen_depth -= 1
        assert pen_depth == 0


class TestUserScript:
    def test_tap_produces_down_up(self):
        script = UserScript().at(100).tap(10, 20)
        kinds = [a[1] for a in script.actions]
        assert kinds == ["pen_down", "pen_up"]

    def test_drag_produces_moves(self):
        script = UserScript().drag([(0, 0), (5, 5), (9, 9)])
        kinds = [a[1] for a in script.actions]
        assert kinds == ["pen_down", "pen_move", "pen_move", "pen_up"]

    def test_wait_advances_cursor(self):
        script = UserScript().at(10).wait_seconds(2).tap(1, 1)
        assert script.actions[0][0] == 210

    def test_extend_offsets(self):
        first = UserScript().at(50).tap(1, 1)
        second = UserScript().at(10).tap(2, 2)
        first.extend(second)
        later = [a for a in first.actions if a[2] == (2, 2)]
        assert later[0][0] >= 50
