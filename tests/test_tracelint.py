"""Tests for the activity-log determinism linter."""

from repro.analysis.static import Severity, lint_archive, lint_log
from repro.analysis.static.tracelint import lint_playback_result
from repro.emulator.playback import PlaybackResult
from repro.palmos.database import RecordImage
from repro.tracelog.log import ActivityLog
from repro.tracelog.records import LogEventType, LogRecord


def _rec(etype, tick, data=0x1234, rtc=None):
    return LogRecord(etype, tick, rtc if rtc is not None else 1000 + tick,
                     data)


def _well_formed() -> ActivityLog:
    return ActivityLog(records=[
        _rec(LogEventType.RANDOM, 5, data=0xDEADBEEF),
        _rec(LogEventType.KEY, 100, data=0x8000_0001),
        _rec(LogEventType.PEN, 150),
        _rec(LogEventType.KEYSTATE, 180, data=0x0002),
        _rec(LogEventType.PEN, 200),
    ])


class TestLintLog:
    def test_accepts_well_formed_log(self):
        report = lint_log(_well_formed())
        assert report.ok
        assert not report.warnings

    def test_rejects_non_monotonic_tick(self):
        log = _well_formed()
        log.append(_rec(LogEventType.PEN, 120))          # runs backwards
        report = lint_log(log)
        assert not report.ok
        bad = [f for f in report if f.code == "non-monotonic-tick"]
        assert len(bad) == 1
        assert bad[0].address == 5                       # the record index

    def test_reset_restarts_the_tick_epoch(self):
        log = _well_formed()
        log.append(_rec(LogEventType.RESET, 300, data=0))
        log.append(_rec(LogEventType.RANDOM, 4, data=0xCAFE))  # new epoch
        log.append(_rec(LogEventType.KEY, 50, data=1))
        report = lint_log(log)
        assert report.ok, report.format()
        assert not report.has("non-monotonic-tick")

    def test_seed_underrun_across_epochs(self):
        # Two epochs (one reset) but only one recorded seed: the second
        # boot's SysRandom call will drain the queue.
        log = ActivityLog(records=[
            _rec(LogEventType.RANDOM, 5, data=0xDEADBEEF),
            _rec(LogEventType.RESET, 100, data=0),
            _rec(LogEventType.KEY, 50, data=1),
        ])
        report = lint_log(log)
        assert not report.ok
        assert report.has("seed-underrun")

    def test_duplicate_record_warns(self):
        log = _well_formed()
        log.append(log.records[-1])                      # exact duplicate PEN
        report = lint_log(log)
        assert report.ok                                 # warning, not error
        assert report.has("duplicate-record")

    def test_zero_seed_warns(self):
        log = _well_formed()
        log.append(_rec(LogEventType.RANDOM, 250, data=0))
        report = lint_log(log)
        assert report.has("zero-seed")
        assert report.ok

    def test_non_monotonic_rtc_warns(self):
        log = _well_formed()
        log.append(_rec(LogEventType.PEN, 260, rtc=1))   # rtc runs backwards
        report = lint_log(log)
        assert report.has("non-monotonic-rtc")
        assert report.ok


class TestLintArchive:
    def test_lints_saved_log(self, tmp_path):
        path = tmp_path / "activity_log.pdb"
        _well_formed().save(path)
        assert lint_archive(tmp_path).ok
        assert lint_archive(path).ok                     # file path works too

    def test_missing_log(self, tmp_path):
        report = lint_archive(tmp_path)
        assert not report.ok
        assert report.has("missing-log")

    def test_corrupt_record_reported_and_rest_linted(self, tmp_path):
        good = _well_formed()
        image = good.to_database_image()
        # Truncate one record's payload so it cannot decode.
        image.records[1] = RecordImage(0, 2, image.records[1].data[:3])
        (tmp_path / "activity_log.pdb").write_bytes(image.to_pdb_bytes())
        report = lint_archive(tmp_path)
        assert not report.ok
        corrupt = [f for f in report if f.code == "corrupt-record"]
        assert corrupt and corrupt[0].address == 1
        assert report.has("log-summary")                 # the rest was linted

    def test_corrupted_tick_order_rejected(self, tmp_path):
        """The acceptance scenario: take a good log, swap two records so
        ticks run backwards, and the linter must reject the archive."""
        log = _well_formed()
        log.records[1], log.records[3] = log.records[3], log.records[1]
        log.save(tmp_path / "activity_log.pdb")
        report = lint_archive(tmp_path)
        assert not report.ok
        assert report.has("non-monotonic-tick")


class TestLintPlaybackResult:
    def test_clean_result(self):
        assert lint_playback_result(PlaybackResult(seeds_served=2)).ok

    def test_seed_underrun_flagged(self):
        result = PlaybackResult(seeds_served=1, seeds_missing=2)
        report = lint_playback_result(result)
        assert not report.ok
        assert report.has("seed-underrun")
        assert report.errors[0].severity == Severity.ERROR
