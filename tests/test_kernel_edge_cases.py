"""Edge-case and failure-injection tests for the kernel layer: queue
overflow, heap exhaustion, error codes through the trap interface, and
kernel robustness under misuse."""

import pytest

from repro.device import Button
from repro.palmos import EventType, PalmOS, Trap
from repro.palmos import layout as L
from repro.palmos.events import Event
from repro.palmos.traps import (
    ERR_DM_INDEX_OUT_OF_RANGE,
    ERR_EVT_QUEUE_FULL,
    ERR_MEM_INVALID_PTR,
)

from tests.palmos_utils import RECORDER_APP, make_kernel


class TestEventQueueOverflow:
    def test_enqueue_fails_when_full(self):
        kernel = make_kernel()
        queue = kernel.queue
        accepted = 0
        for i in range(L.EVENT_QUEUE_CAPACITY + 10):
            if queue.enqueue(Event(EventType.keyDownEvent, key=i & 0xFF)):
                accepted += 1
        assert accepted == L.EVENT_QUEUE_CAPACITY

    def test_trap_returns_queue_full_error(self):
        kernel = make_kernel()
        for _ in range(L.EVENT_QUEUE_CAPACITY):
            assert kernel.queue.enqueue(Event(EventType.nilEvent))
        err = kernel.call_trap(Trap.EvtEnqueueKey, 0x8000_0001)
        assert err == ERR_EVT_QUEUE_FULL

    def test_queue_drains_in_fifo_order(self):
        kernel = make_kernel()
        for i in range(5):
            kernel.queue.enqueue(Event(EventType.keyDownEvent, key=i))
        keys = [kernel.queue.dequeue().key for _ in range(5)]
        assert keys == [0, 1, 2, 3, 4]
        assert kernel.queue.dequeue() is None

    def test_flush_via_trap(self):
        kernel = make_kernel()
        for i in range(5):
            kernel.queue.enqueue(Event(EventType.keyDownEvent, key=i))
        kernel.call_trap(Trap.EvtFlushQueue)
        assert kernel.queue.count == 0

    def test_wraparound_many_times(self):
        kernel = make_kernel()
        for round_no in range(10):
            for i in range(L.EVENT_QUEUE_CAPACITY // 2):
                assert kernel.queue.enqueue(Event(EventType.keyDownEvent,
                                                  key=(round_no + i) & 0xFF))
            for i in range(L.EVENT_QUEUE_CAPACITY // 2):
                ev = kernel.queue.dequeue()
                assert ev.key == (round_no + i) & 0xFF


class TestHeapExhaustion:
    def test_mem_ptr_new_returns_zero_when_exhausted(self):
        kernel = make_kernel()
        ptrs = []
        while True:
            ptr = kernel.call_trap(Trap.MemPtrNew, 16384)
            if ptr == 0:
                break
            ptrs.append(ptr)
            assert len(ptrs) < 1000
        assert ptrs  # got some allocations before exhaustion
        # Freeing one lets allocation succeed again.
        assert kernel.call_trap(Trap.MemPtrFree, ptrs[0]) == 0
        assert kernel.call_trap(Trap.MemPtrNew, 16384) != 0

    def test_free_bogus_pointer_reports_error(self):
        kernel = make_kernel()
        err = kernel.call_trap(Trap.MemPtrFree, L.DYNAMIC_HEAP_BASE + 8)
        assert err == ERR_MEM_INVALID_PTR

    def test_storage_exhaustion_fails_record_creation(self):
        # A tiny device: the storage heap fills up quickly.
        kernel = make_kernel(ram_size=512 << 10)
        db = kernel.dm_host.create("Fill")
        name_addr = 0x38000
        kernel.host.write_bytes(name_addr, b"Fill\x00")
        created = 0
        while created < 100:
            rec = kernel.call_trap(Trap.DmNewRecord, db,
                                   L.DM_MAX_RECORD_INDEX, 4096)
            if rec == 0:
                break
            created += 1
        assert 0 < created < 100
        assert kernel.call_trap(Trap.DmGetLastErr) != 0


class TestTrapErrorPaths:
    def test_dm_get_record_bad_index_both_paths(self):
        kernel = make_kernel()
        name_addr = 0x38000
        kernel.host.write_bytes(name_addr, b"E\x00")
        db = kernel.call_trap(Trap.DmCreateDatabase, name_addr, 0, 0, 0)
        for native in (True, False):
            kernel.allow_native = native
            assert kernel.call_trap(Trap.DmGetRecord, db, 0) == 0
            assert kernel.call_trap(Trap.DmGetLastErr) == \
                ERR_DM_INDEX_OUT_OF_RANGE
        kernel.allow_native = True

    def test_dm_write_record_overflow_rejected(self):
        kernel = make_kernel()
        name_addr = 0x38000
        kernel.host.write_bytes(name_addr, b"W\x00")
        db = kernel.call_trap(Trap.DmCreateDatabase, name_addr, 0, 0, 0)
        kernel.call_trap(Trap.DmNewRecord, db, L.DM_MAX_RECORD_INDEX, 8)
        for native in (True, False):
            kernel.allow_native = native
            err = kernel.call_trap(Trap.DmWriteRecord, db, 0, 4, 0x38100, 8)
            assert err == ERR_DM_INDEX_OUT_OF_RANGE, f"native={native}"
        kernel.allow_native = True

    def test_open_missing_database(self):
        kernel = make_kernel()
        assert kernel.call_trap(Trap.DmOpenDatabase, 0) == 0
        assert kernel.call_trap(Trap.DmGetLastErr) != 0

    def test_create_duplicate_database(self):
        kernel = make_kernel()
        name_addr = 0x38000
        kernel.host.write_bytes(name_addr, b"Dup\x00")
        assert kernel.call_trap(Trap.DmCreateDatabase, name_addr, 0, 0, 0)
        assert kernel.call_trap(Trap.DmCreateDatabase, name_addr, 0, 0, 0) == 0

    def test_delete_missing_database(self):
        kernel = make_kernel()
        name_addr = 0x38000
        kernel.host.write_bytes(name_addr, b"Gone\x00")
        assert kernel.call_trap(Trap.DmDeleteDatabase, name_addr) != 0

    def test_unimplemented_trap_panics(self):
        """Calling an undefined trap index reaches the ROM's
        unimplemented stub, which surfaces a host error rather than
        executing garbage."""
        kernel = make_kernel()
        with pytest.raises(RuntimeError, match="panic"):
            kernel.call_trap(0x100)  # no such system call

    def test_dm_next_database_iterates_all(self):
        kernel = make_kernel()
        names = []
        db = kernel.call_trap(Trap.DmNextDatabase, 0)
        while db:
            names.append(kernel.dm_host.name_of(db))
            db = kernel.call_trap(Trap.DmNextDatabase, db)
        assert "psysLaunchDB" in names


class TestDatabaseInfoTraps:
    def test_database_info_copies_pdb_header(self):
        kernel = make_kernel()
        name_addr = 0x38000
        kernel.host.write_bytes(name_addr, b"Info\x00")
        db = kernel.call_trap(Trap.DmCreateDatabase, name_addr,
                              0x54455354, 0x63726561, 0)  # 'TEST','crea'
        buf = 0x38100
        assert kernel.call_trap(Trap.DmDatabaseInfo, db, buf) == 0
        header = kernel.host.read_bytes(buf, L.PDB_SIZE)
        assert header[:4] == b"Info"
        assert header[L.PDB_TYPE:L.PDB_TYPE + 4] == b"TEST"

    def test_set_database_info_updates_attributes(self):
        kernel = make_kernel()
        name_addr = 0x38000
        kernel.host.write_bytes(name_addr, b"Attr\x00")
        db = kernel.call_trap(Trap.DmCreateDatabase, name_addr, 0, 0, 0)
        kernel.call_trap(Trap.DmSetDatabaseInfo, db, L.DM_ATTR_BACKUP)
        assert kernel.dm_host.attributes(db) == L.DM_ATTR_BACKUP

    def test_record_info_roundtrip_via_traps(self):
        kernel = make_kernel()
        name_addr = 0x38000
        kernel.host.write_bytes(name_addr, b"RI\x00")
        db = kernel.call_trap(Trap.DmCreateDatabase, name_addr, 0, 0, 0)
        kernel.call_trap(Trap.DmNewRecord, db, L.DM_MAX_RECORD_INDEX, 4)
        kernel.call_trap(Trap.DmSetRecordInfo, db, 0, 0x40, 0xABCDE)
        packed = kernel.call_trap(Trap.DmRecordInfo, db, 0)
        assert packed == (0x40 << 24) | 0xABCDE


class TestKernelRobustness:
    def test_many_resets_in_sequence(self):
        kernel = make_kernel()
        for _ in range(5):
            kernel.boot()
        assert kernel.device.cpu.stopped
        assert kernel.boot_count >= 6

    def test_app_switch_storm(self):
        """Rapid app-button mashing must always land in a valid app."""
        from repro.apps import standard_apps
        kernel = PalmOS(apps=standard_apps(), ram_size=4 << 20,
                        flash_size=1 << 20, default_app="launcher")
        kernel.boot()
        buttons = [Button.MEMO, Button.ADDRESS, Button.DATEBOOK]
        tick = 30
        for i in range(12):
            button = buttons[i % 3]
            kernel.device.schedule_button_press(tick, button)
            kernel.device.schedule_button_release(tick + 2, button)
            tick += 6
        kernel.device.run_until_idle()
        assert kernel.current_app_name() in ("memopad", "addressbook",
                                             "puzzle")

    def test_interleaved_pen_and_buttons(self):
        kernel = make_kernel()
        tick = 20
        for i in range(10):
            kernel.device.schedule_pen_down(tick, 10 + i, 20 + i)
            kernel.device.schedule_button_press(tick + 1, Button.UP)
            kernel.device.schedule_pen_up(tick + 3)
            kernel.device.schedule_button_release(tick + 4, Button.UP)
            tick += 10
        kernel.device.run_until_idle()
        from tests.palmos_utils import recorded_events
        events = recorded_events(kernel)
        pen_downs = sum(1 for e in events if e[0] == EventType.penDownEvent)
        key_downs = sum(1 for e in events if e[0] == EventType.keyDownEvent)
        assert pen_downs == 10
        assert key_downs == 10
