"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "session"
    rc = main(["collect", "--out", str(out), "--session", "quickstart"])
    assert rc == 0
    return out


class TestCollect:
    def test_creates_archive_layout(self, archive, capsys):
        assert (archive / "initial_state" / "flash.rom").exists()
        assert (archive / "initial_state" / "state.json").exists()
        assert (archive / "activity_log.pdb").exists()
        assert list((archive / "final_state").glob("*.pdb"))

    def test_unknown_session_rejected(self, tmp_path, capsys):
        rc = main(["collect", "--out", str(tmp_path / "x"),
                   "--session", "bogus"])
        assert rc == 2


class TestReplay:
    def test_replay_prints_statistics(self, archive, capsys):
        rc = main(["replay", "--session", str(archive)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ave mem cyc" in out
        assert "references" in out

    def test_replay_writes_trace(self, archive, tmp_path, capsys):
        trace_path = tmp_path / "trace.npz"
        rc = main(["replay", "--session", str(archive),
                   "--trace", str(trace_path)])
        assert rc == 0
        assert trace_path.exists()

    def test_no_profile_mode(self, archive, capsys):
        rc = main(["replay", "--session", str(archive), "--no-profile"])
        assert rc == 0
        assert "ave mem cyc" not in capsys.readouterr().out


class TestValidate:
    def test_validate_passes_deterministic(self, archive, capsys):
        rc = main(["validate", "--session", str(archive)])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("VALID") >= 2

    def test_validate_with_jitter(self, archive, capsys):
        rc = main(["validate", "--session", str(archive), "--jitter", "3"])
        # Jittered replays may shift tick-stamped record contents; both
        # outcomes are legitimate, but the report must render.
        out = capsys.readouterr().out
        assert "activity log correlation" in out
        assert rc in (0, 1)


class TestSweepPipeline:
    def test_trace_to_sweep(self, archive, tmp_path, capsys):
        trace_path = tmp_path / "t.npz"
        assert main(["replay", "--session", str(archive),
                     "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        rc = main(["sweep", "--trace", str(trace_path),
                   "--limit", "120000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 6" in out

    def test_desktop_trace_generation(self, tmp_path, capsys):
        out_path = tmp_path / "d.npz"
        rc = main(["desktop-trace", "--out", str(out_path),
                   "--length", "50000", "--seed", "1"])
        assert rc == 0
        assert out_path.exists()
        rc = main(["sweep", "--trace", str(out_path)])
        assert rc == 0


class TestRom:
    def test_rom_summary(self, capsys):
        rc = main(["rom"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "traps" in out and "applications: 4" in out

    def test_rom_disassembly(self, capsys):
        rc = main(["rom", "--disassemble", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reset entry" in out
        assert "lea" in out  # boot installs vectors
