"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli") / "session"
    rc = main(["collect", "--out", str(out), "--session", "quickstart"])
    assert rc == 0
    return out


class TestCollect:
    def test_creates_archive_layout(self, archive, capsys):
        assert (archive / "initial_state" / "flash.rom").exists()
        assert (archive / "initial_state" / "state.json").exists()
        assert (archive / "activity_log.pdb").exists()
        assert list((archive / "final_state").glob("*.pdb"))

    def test_unknown_session_rejected(self, tmp_path, capsys):
        rc = main(["collect", "--out", str(tmp_path / "x"),
                   "--session", "bogus"])
        assert rc == 2


class TestReplay:
    def test_replay_prints_statistics(self, archive, capsys):
        rc = main(["replay", "--session", str(archive)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ave mem cyc" in out
        assert "references" in out

    def test_replay_writes_trace(self, archive, tmp_path, capsys):
        trace_path = tmp_path / "trace.npz"
        rc = main(["replay", "--session", str(archive),
                   "--trace", str(trace_path)])
        assert rc == 0
        assert trace_path.exists()

    def test_no_profile_mode(self, archive, capsys):
        rc = main(["replay", "--session", str(archive), "--no-profile"])
        assert rc == 0
        assert "ave mem cyc" not in capsys.readouterr().out


class TestValidate:
    def test_validate_passes_deterministic(self, archive, capsys):
        rc = main(["validate", "--session", str(archive)])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("VALID") >= 2

    def test_validate_with_jitter(self, archive, capsys):
        rc = main(["validate", "--session", str(archive), "--jitter", "3"])
        # Jittered replays may shift tick-stamped record contents; both
        # outcomes are legitimate, but the report must render.
        out = capsys.readouterr().out
        assert "activity log correlation" in out
        assert rc in (0, 1)


class TestSweepPipeline:
    def test_trace_to_sweep(self, archive, tmp_path, capsys):
        trace_path = tmp_path / "t.npz"
        assert main(["replay", "--session", str(archive),
                     "--trace", str(trace_path)]) == 0
        capsys.readouterr()
        rc = main(["sweep", "--trace", str(trace_path),
                   "--limit", "120000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 6" in out

    def test_desktop_trace_generation(self, tmp_path, capsys):
        out_path = tmp_path / "d.npz"
        rc = main(["desktop-trace", "--out", str(out_path),
                   "--length", "50000", "--seed", "1"])
        assert rc == 0
        assert out_path.exists()
        rc = main(["sweep", "--trace", str(out_path)])
        assert rc == 0


class TestRom:
    def test_rom_summary(self, capsys):
        rc = main(["rom"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "traps" in out and "applications: 4" in out

    def test_rom_disassembly(self, capsys):
        rc = main(["rom", "--disassemble", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "reset entry" in out
        assert "lea" in out  # boot installs vectors

    def test_rom_check_passes(self, capsys):
        rc = main(["rom", "--check"])
        assert rc == 0
        assert "0 error(s)" in capsys.readouterr().out


class TestLint:
    def test_lint_rom_is_clean(self, capsys):
        rc = main(["lint"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "built-in ROM" in out
        assert "0 error(s)" in out

    def test_lint_verbose_prints_census(self, capsys):
        rc = main(["lint", "--verbose"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "static trap census" in out
        assert "EvtGetEvent" in out
        assert "[coverage]" in out

    def test_lint_accepts_seed_archive(self, archive, capsys):
        rc = main(["lint", "--session", str(archive)])
        assert rc == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_rejects_corrupted_archive(self, archive, tmp_path, capsys):
        from repro.tracelog import ActivityLog

        log = ActivityLog.load(archive / "activity_log.pdb")
        # Corrupt deliberately: make the tick sequence run backwards.
        log.records[1], log.records[-1] = log.records[-1], log.records[1]
        bad = tmp_path / "corrupt"
        bad.mkdir()
        log.save(bad / "activity_log.pdb")
        rc = main(["lint", "--session", str(bad)])
        assert rc == 1
        assert "non-monotonic-tick" in capsys.readouterr().out


class TestStaticDynamicCrossCheck:
    def test_profiled_replay_is_contained_in_the_cfg(self, archive):
        """Every ROM-address opcode executed by a profiled replay must
        be an instruction the static walker discovered, with the same
        opcode word — the analyzer's acceptance gate."""
        from repro.analysis.static import analyze_rom, cross_check
        from repro.apps import standard_apps
        from repro.device import constants as C
        from repro.emulator import replay_session
        from repro.tracelog import ActivityLog, InitialState

        state = InitialState.load(archive / "initial_state")
        log = ActivityLog.load(archive / "activity_log.pdb")
        _, profiler, _ = replay_session(
            state, log, apps=standard_apps(), profile=True,
            trace_references=False, track_opcode_addresses=True,
            emulator_kwargs={"ram_size": 8 << 20, "flash_size": 1 << 20})
        assert profiler.opcode_addresses

        analysis = analyze_rom()
        report = cross_check(
            analysis.cfg, profiler.opcode_addresses,
            code_range=(C.FLASH_BASE, C.FLASH_BASE + C.FLASH_SIZE))
        assert report.ok, report.format()
        assert not report.has("dynamic-not-static")
        assert not report.has("word-mismatch")

        # The dynamic trap histogram must be contained in the census.
        from repro.palmos.traps import ALINE_BASE

        dynamic = {}
        for pc, op in profiler.opcode_addresses.items():
            if C.FLASH_BASE <= pc and op & 0xF000 == ALINE_BASE:
                dynamic[op & 0xFFF] = dynamic.get(op & 0xFFF, 0) + 1
        assert dynamic, "replay executed no ROM trap words"
        assert analysis.census.compare_dynamic(dynamic).ok
