"""Shared helpers for m68k tests: assemble a snippet and run it."""

from __future__ import annotations

from repro.m68k import CPU, FlatMemory
from repro.m68k.asm import assemble

CODE_BASE = 0x1000
STACK_TOP = 0x20000
RAM_SIZE = 0x40000


EXIT_OPCODE = 0xFFFF  # F-line word used as a flag-preserving "exit to host"


def make_cpu(source: str, symbols=None) -> tuple[CPU, FlatMemory]:
    """Assemble ``source`` at 0x1000 (an exit marker is appended), load
    it into a flat RAM with reset vectors, and return (cpu, mem).

    The exit marker is an F-line word handled on the host so that the
    condition codes under test are not disturbed (a ``stop #imm`` would
    reload SR).
    """
    mem = FlatMemory(RAM_SIZE)
    mem.write32(0, STACK_TOP)
    mem.write32(4, CODE_BASE)
    program = assemble(source + "\n    dc.w $ffff\n    stop #$2700\n",
                       origin=CODE_BASE, symbols=symbols)
    for addr, blob in program.segments:
        mem.load(addr, blob)

    def exit_handler(cpu, op):
        if op == EXIT_OPCODE:
            cpu.stopped = True
            return True
        return False

    cpu = CPU(mem, fline_handler=exit_handler)
    cpu.reset()
    return cpu, mem


def run_asm(source: str, max_instructions: int = 100_000, symbols=None) -> CPU:
    """Assemble, load, run to STOP, and return the CPU for inspection."""
    cpu, _ = make_cpu(source, symbols=symbols)
    cpu.run(max_instructions)
    assert cpu.stopped, f"program did not reach stop within {max_instructions} steps"
    return cpu


def run_asm_mem(source: str, max_instructions: int = 100_000,
                symbols=None) -> tuple[CPU, FlatMemory]:
    cpu, mem = make_cpu(source, symbols=symbols)
    cpu.run(max_instructions)
    assert cpu.stopped
    return cpu, mem
