"""Tests for the assembler: expressions, directives, encodings, errors,
and disassembler round-trips."""

import pytest

from repro.m68k.asm import assemble, parse_operand, _parse_reglist
from repro.m68k.disasm import disassemble_one
from repro.m68k.errors import AssemblerError


def words(source, origin=0x1000, symbols=None):
    """Assemble and return the image as a list of 16-bit words."""
    blob = assemble(source, origin=origin, symbols=symbols).blob
    assert len(blob) % 2 == 0
    return [(blob[i] << 8) | blob[i + 1] for i in range(0, len(blob), 2)]


class TestExpressions:
    def test_number_bases(self):
        assert words("dc.w $ff, %101, 10, 'A'") == [0xFF, 5, 10, 65]

    def test_arithmetic(self):
        assert words("dc.w 2+3*4, (2+3)*4, 16/4, 7-2") == [14, 20, 4, 5]

    def test_bitwise(self):
        assert words("dc.w $f0|$0f, $ff&$3c, $ff^$0f, 1<<4, $100>>4") == [
            0xFF, 0x3C, 0xF0, 0x10, 0x10]

    def test_unary(self):
        assert words("dc.w -1, ~0") == [0xFFFF, 0xFFFF]

    def test_symbols_and_equ(self):
        src = """
    BASE    equ $3000
    COUNT   = 5
            dc.w BASE+COUNT
        """
        assert words(src) == [0x3005]

    def test_predefined_symbols(self):
        assert words("dc.w FOO+1", symbols={"FOO": 0x41}) == [0x42]

    def test_forward_reference(self):
        src = """
            dc.w  later
    later:  dc.w  $1234
        """
        assert words(src, origin=0x100) == [0x102, 0x1234]

    def test_undefined_symbol_raises(self):
        with pytest.raises(AssemblerError, match="undefined symbol"):
            assemble("dc.w nothere")

    def test_label_arithmetic(self):
        src = """
    a:      dc.l 0
    b:      dc.l 0
            dc.w b-a
        """
        assert words(src)[-1] == 4


class TestDirectives:
    def test_dc_sizes(self):
        blob = assemble("dc.b 1,2\n dc.w $1234\n dc.l $56789abc").blob
        assert blob == bytes([1, 2, 0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC])

    def test_dc_string(self):
        blob = assemble('dc.b "Hi",0').blob
        assert blob == b"Hi\x00"

    def test_ds_reserves_zeroed(self):
        blob = assemble("ds.l 2\n dc.b 1").blob
        assert blob == bytes(8) + b"\x01"

    def test_even_alignment(self):
        src = """
            dc.b 1
            even
    here:   dc.w $aa55
        """
        prog = assemble(src, origin=0x100)
        assert prog.symbols["here"] == 0x102

    def test_org_creates_segments(self):
        src = """
            org $100
            dc.w 1
            org $200
            dc.w 2
        """
        prog = assemble(src)
        assert [(a, len(b)) for a, b in prog.segments] == [(0x100, 2), (0x200, 2)]
        img = prog.image(0x100, 0x200)
        assert img[0:2] == bytes([0, 1])
        assert img[0x100:0x102] == bytes([0, 2])

    def test_comments_ignored(self):
        assert words("dc.w 1 ; trailing\n ; full line\n dc.w 2") == [1, 2]


class TestEncodings:
    """Spot checks against hand-assembled reference words."""

    def test_moveq(self):
        assert words("moveq #1,d0") == [0x7001]
        assert words("moveq #-1,d7") == [0x7EFF]

    def test_move_register_direct(self):
        assert words("move.l d0,d1") == [0x2200]
        assert words("move.w d3,d4") == [0x3803]
        assert words("move.b d1,d2") == [0x1401]

    def test_move_memory_forms(self):
        assert words("move.w (a0),(a1)") == [0x3290]
        assert words("move.w (a0)+,d0") == [0x3018]
        assert words("move.w d0,-(a7)") == [0x3F00]

    def test_move_immediate(self):
        assert words("move.l #$12345678,d0") == [0x203C, 0x1234, 0x5678]
        assert words("move.w #$ff,d0") == [0x303C, 0x00FF]

    def test_lea_pc_relative(self):
        ws = words("""
    table:  dc.w 0
            lea table(pc),a0
        """, origin=0x1000)
        # lea at 0x1002: ext word displacement = 0x1000 - 0x1004 = -4.
        assert ws[1] == 0x41FA
        assert ws[2] == 0xFFFC

    def test_addq_subq(self):
        assert words("addq.l #1,d0") == [0x5280]
        assert words("subq.w #8,d3") == [0x5143]

    def test_add_directions(self):
        assert words("add.l d1,d0") == [0xD081]
        assert words("add.l d0,(a0)") == [0xD190]

    def test_adda(self):
        assert words("adda.l d0,a1") == [0xD3C0]
        assert words("add.w d0,a1") == [0xD2C0]  # promotes to ADDA

    def test_immediate_promotion(self):
        # add #imm,Dn assembles as ADDI.
        assert words("add.l #4,d0") == [0x0680, 0x0000, 0x0004]
        assert words("cmp.w #3,d2") == [0x0C42, 0x0003]

    def test_branches(self):
        # bra.s to next instruction+2.
        ws = words("""
            bra.s over
            nop
    over:   nop
        """)
        assert ws[0] == 0x6002
        ws = words("""
            beq target
            nop
    target: nop
        """)
        assert ws[0] == 0x6700 and ws[1] == 0x0004

    def test_backward_branch(self):
        ws = words("""
    loop:   nop
            bra.s loop
        """)
        assert ws[1] == 0x60FC  # -4

    def test_dbra(self):
        ws = words("""
    loop:   nop
            dbra d1,loop
        """)
        assert ws[1] == 0x51C9 and ws[2] == 0xFFFC

    def test_jsr_jmp(self):
        assert words("jsr $2000") == [0x4EB9, 0x0000, 0x2000]
        assert words("jmp (a0)") == [0x4ED0]

    def test_trap_and_misc(self):
        assert words("trap #15") == [0x4E4F]
        assert words("nop\n rts\n rte") == [0x4E71, 0x4E75, 0x4E73]
        assert words("stop #$2700") == [0x4E72, 0x2700]

    def test_link_unlk(self):
        assert words("link a6,#-8") == [0x4E56, 0xFFF8]
        assert words("unlk a6") == [0x4E5E]

    def test_movem_predec_mask_reversed(self):
        # movem.l d0-d1,-(sp): normal mask d0|d1 = 0x0003, reversed = 0xC000.
        assert words("movem.l d0-d1,-(sp)") == [0x48E7, 0xC000]

    def test_movem_postinc(self):
        assert words("movem.l (sp)+,d0-d1") == [0x4CDF, 0x0003]

    def test_shifts(self):
        assert words("lsl.l #1,d0") == [0xE388]
        assert words("lsr.w #4,d2") == [0xE84A]
        assert words("asr.l d1,d0") == [0xE2A0]
        assert words("rol.b #1,d3") == [0xE31B]

    def test_bit_ops(self):
        assert words("btst #4,d0") == [0x0800, 0x0004]
        assert words("bset d1,(a0)") == [0x03D0]

    def test_clr_tst(self):
        assert words("clr.l d0") == [0x4280]
        assert words("tst.w (a0)") == [0x4A50]

    def test_mul_div(self):
        assert words("mulu d1,d0") == [0xC0C1]
        assert words("divs d2,d3") == [0x87C2]

    def test_exg(self):
        assert words("exg d0,d1") == [0xC141]
        assert words("exg a0,a1") == [0xC149]
        assert words("exg d0,a1") == [0xC189]

    def test_sr_ccr_moves(self):
        assert words("move #$2700,sr") == [0x46FC, 0x2700]
        assert words("move sr,d0") == [0x40C0]
        assert words("move #$1f,ccr") == [0x44FC, 0x001F]
        assert words("andi #$fe,ccr") == [0x023C, 0x00FE]

    def test_aline_via_dc(self):
        assert words("dc.w $a000+$123") == [0xA123]


class TestOperandParsing:
    def test_register_kinds(self):
        assert parse_operand("d3").kind == "dreg"
        assert parse_operand("a5").kind == "areg"
        assert parse_operand("sp").reg == 7
        assert parse_operand("(a2)").kind == "ind"
        assert parse_operand("(a2)+").kind == "postinc"
        assert parse_operand("-(a2)").kind == "predec"

    def test_displacement_forms(self):
        assert parse_operand("8(a0)").kind == "disp"
        assert parse_operand("(8,a0)").kind == "disp"
        assert parse_operand("-4(a0)").kind == "disp"

    def test_index_forms(self):
        op = parse_operand("2(a0,d1.l)")
        assert op.kind == "index" and op.xlong and not op.xa
        op = parse_operand("(a0,a2.w)")
        assert op.kind == "index" and op.xa and not op.xlong

    def test_pc_forms(self):
        assert parse_operand("label(pc)").kind == "pcdisp"
        assert parse_operand("label(pc,d0.w)").kind == "pcindex"

    def test_absolute(self):
        assert parse_operand("$3000.w").kind == "abs_w"
        assert parse_operand("$3000.l").kind == "abs_l"
        assert parse_operand("label").kind == "abs_l"

    def test_immediate(self):
        assert parse_operand("#42").kind == "imm"

    def test_reglist(self):
        assert _parse_reglist("d0-d3") == 0x000F
        assert _parse_reglist("a0/a2") == 0x0500
        assert _parse_reglist("d0-d7/a0-a7") == 0xFFFF
        assert _parse_reglist("d7/a6-sp") == 0xC080


class TestErrors:
    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate d0")

    def test_bad_short_branch(self):
        src = "bra.s far\n" + "nop\n" * 100 + "far: nop"
        with pytest.raises(AssemblerError, match="short branch"):
            assemble(src)

    def test_shift_count_out_of_range(self):
        with pytest.raises(AssemblerError):
            assemble("lsl.l #9,d0")

    def test_byte_to_address_register(self):
        with pytest.raises(AssemblerError):
            assemble("add.b #1,a0")

    def test_error_reports_line(self):
        try:
            assemble("nop\nnop\nbogus d0\n")
        except AssemblerError as exc:
            assert exc.line == 3
        else:
            pytest.fail("expected AssemblerError")


class TestDisassemblerRoundTrip:
    SNIPPETS = [
        "moveq #5,d0",
        "move.l d0,d1",
        "move.w (a0)+,d2",
        "move.b #$ff,d0",
        "lea $1234,a0",
        "addq.l #1,d0",
        "subq.w #8,d3",
        "add.l d1,d0",
        "cmpi.l #$64,d0",
        "jsr $2000",
        "rts",
        "nop",
        "trap #3",
        "lsl.l #2,d0",
        "clr.w d5",
        "swap d2",
        "movem.l d0-d2/a0,-(sp)",
        "dbra d1,$1000",
        "link a6,#-8",
    ]

    @pytest.mark.parametrize("snippet", SNIPPETS)
    def test_reassembles_identically(self, snippet):
        """asm -> disasm -> asm is a fixed point."""
        original = assemble(snippet, origin=0x1000).blob

        def fetch(addr):
            off = addr - 0x1000
            return (original[off] << 8) | original[off + 1]

        text, length = disassemble_one(fetch, 0x1000)
        assert length == len(original)
        again = assemble(text, origin=0x1000).blob
        assert again == original, f"{snippet!r} -> {text!r}"

    def test_aline_fline_rendering(self):
        blob = assemble("dc.w $a123\n dc.w $f042", origin=0).blob

        def fetch(addr):
            return (blob[addr] << 8) | blob[addr + 1]

        assert disassemble_one(fetch, 0)[0] == "sys $123"
        assert disassemble_one(fetch, 2)[0] == "emucall $042"
