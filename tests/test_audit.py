"""Tests for the semantic whole-image audit (repro.analysis.static.audit):
injected-defect detection, trap-argument census, the baseline gate, and
the static/dynamic region cross-check against a real replayed session.
"""

import json

import pytest

from repro.analysis.static import Severity
from repro.analysis.static.audit import (RegionModel, audit_image, audit_rom,
                                         cross_check_regions, load_baseline,
                                         new_findings_against, save_baseline)
from repro.m68k.asm import assemble

ORIGIN = 0x1000


def _audit(source: str, roots=("start",), **kw):
    program = assemble(source, origin=ORIGIN)
    blob = bytes(program.blob)
    addrs = [program.symbols[r] if isinstance(r, str) else r for r in roots]
    kw.setdefault("readonly_code", False)   # test images live in RAM
    return program, audit_image(blob, ORIGIN, addrs, **kw)


# ----------------------------------------------------------------------
# Injected defects must produce the expected findings
# ----------------------------------------------------------------------
class TestInjectedDefects:
    def test_unhacked_sysrandom_is_an_error(self):
        """A reachable SysRandom call site with no logging hack breaks
        replay determinism: ERROR."""
        src = """
start:  dc.w    $a010
        rts
"""
        program, result = _audit(src, hacked_traps=())
        findings = [f for f in result.report
                    if f.code == "untraced-nondeterminism"]
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert findings[0].address == program.symbols["start"]
        assert "SysRandom" in findings[0].message

    def test_hacked_sysrandom_is_silent(self):
        src = """
start:  dc.w    $a010
        rts
"""
        _, result = _audit(src, hacked_traps=(0x010,))
        assert not result.report.has("untraced-nondeterminism")

    def test_timgetticks_is_only_a_warning(self):
        src = """
start:  dc.w    $a018
        rts
"""
        _, result = _audit(src, hacked_traps=())
        finding = [f for f in result.report
                   if f.code == "untraced-nondeterminism"][0]
        assert finding.severity == Severity.WARNING

    def test_store_into_code_region_is_an_error(self):
        """A store whose propagated constant address overlaps a decoded
        instruction is self-modifying code: ERROR."""
        src = """
start:  lea     patch,a0
        move.l  #$4e714e71,(a0)
        bsr.s   patch
        rts
patch:  nop
        nop
        rts
"""
        program, result = _audit(src)
        findings = [f for f in result.report if f.code == "code-write"]
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        # The finding anchors at the storing instruction, and names the
        # overlapped one.
        assert f"{program.symbols['patch']:#010x}" in findings[0].message

    def test_store_through_unknown_pointer_is_not_flagged(self):
        """No constant address, no code-write claim (soundness: the
        audit only reports what it can prove)."""
        src = """
start:  move.l  #$4e714e71,(a1)
        rts
"""
        _, result = _audit(src)
        assert not result.report.has("code-write")

    def test_nondet_reachable_from_handler(self):
        src = """
start:  bsr.s   helper
        rts
helper: dc.w    $a008
        rts
"""
        program = assemble(src, origin=ORIGIN)
        start = program.symbols["start"]
        result = audit_image(bytes(program.blob), ORIGIN, [start],
                             readonly_code=False, hacked_traps=(),
                             handler_roots=(start,))
        findings = [f for f in result.report
                    if f.code == "nondet-reachable-from-handler"]
        assert len(findings) == 1
        assert "KeyCurrentState" in findings[0].message
        assert findings[0].address == start

    def test_dead_store_reported_as_info(self):
        src = """
start:  moveq   #1,d0
        move.l  d0,-(sp)
        moveq   #2,d0
        move.l  d0,(sp)
        move.l  (sp)+,d1
        rts
"""
        _, result = _audit(src)
        findings = [f for f in result.report if f.code == "dead-store"]
        assert len(findings) == 1
        assert findings[0].severity == Severity.INFO


# ----------------------------------------------------------------------
# Indirect-call resolution and the call graph
# ----------------------------------------------------------------------
class TestIndirectResolution:
    def test_jsr_through_constant_register_resolves(self):
        src = """
start:  lea     target,a0
        jsr     (a0)
        rts
target: moveq   #1,d0
        rts
"""
        program, result = _audit(src)
        target = program.symbols["target"]
        assert list(result.resolved_indirect.values()) == [target]
        assert result.rounds >= 2
        # The resolved callee joins the call graph.
        assert target in result.call_graph[program.symbols["start"]]
        # And nothing is left unresolved.
        assert not result.report.has("unresolved-indirect")

    def test_unknown_register_stays_unresolved(self):
        src = """
start:  jsr     (a3)
        rts
"""
        _, result = _audit(src)
        assert result.resolved_indirect == {}
        assert result.report.has("unresolved-indirect")

    def test_trap_census_carries_arguments(self):
        src = """
start:  move.l  #$10,-(sp)
        move.l  #$abcd,-(sp)
        dc.w    $a010
        rts
"""
        _, result = _audit(src, hacked_traps=(0x010,))
        sigs = result.census.signatures()
        assert sigs["SysRandom"] == [[0xABCD, 0x10]]


# ----------------------------------------------------------------------
# Region predictions and the dynamic cross-check
# ----------------------------------------------------------------------
class TestRegionModel:
    def test_classification_matches_memmap(self):
        model = RegionModel.from_geometry(ram_size=8 << 20,
                                          flash_size=1 << 20)
        assert model.classify(0x0000_1000, 4) == 0          # RAM
        assert model.classify(0x1000_0000, 2) == 1          # flash
        assert model.classify(0x2000_0000, 4) == 3          # card
        assert model.classify(0xFFFF_F000, 4) == 2          # hw
        assert model.classify(0x0900_0000, 4) is None       # hole
        # 8 MB RAM ends at 0x80_0000; 0x7F_FFFE..+4 straddles the hole,
        # and the flash window (1 MB) ends at 0x1010_0000.
        assert model.classify(0x7F_FFFE, 4) is None
        assert model.classify(0x100F_FFFE, 4) is None

    def test_synthetic_mismatch_is_a_typed_error(self):
        """A dynamic reference from a region the prediction excludes
        must surface as a region-mismatch ERROR."""
        src = """
start:  move.l  $2000,d0
        rts
"""
        program, result = _audit(src)
        pc = program.symbols["start"]
        prediction = result.predictions[pc]
        assert prediction.complete
        assert prediction.mask == 1 << 0        # read:ram only
        # Claim the instruction dynamically wrote to hardware space.
        fake_dynamic = {pc: prediction.mask | (1 << 6)}     # write:hw
        report = cross_check_regions(result, fake_dynamic)
        findings = [f for f in report if f.code == "region-mismatch"]
        assert len(findings) == 1
        assert findings[0].severity == Severity.ERROR
        assert findings[0].address == pc
        assert "write:hw" in findings[0].message

    def test_agreeing_dynamic_trace_is_clean(self):
        src = """
start:  move.l  $2000,d0
        move.w  d0,$3000
        rts
"""
        program, result = _audit(src)
        pc0 = program.symbols["start"]
        report = cross_check_regions(result, {pc0: 1 << 0})
        assert report.ok


# ----------------------------------------------------------------------
# The baseline gate
# ----------------------------------------------------------------------
class TestBaseline:
    def test_roundtrip_and_new_finding_detection(self, tmp_path):
        src = """
start:  dc.w    $a010
        rts
"""
        _, result = _audit(src, hacked_traps=())
        path = tmp_path / "baseline.json"
        save_baseline(result, path)
        baseline = load_baseline(path)
        assert new_findings_against(result, baseline) == []
        # A different audit (new finding) against the same baseline.
        src2 = """
start:  dc.w    $a010
        nop
        dc.w    $a008
        rts
"""
        _, result2 = _audit(src2, hacked_traps=())
        fresh = new_findings_against(result2, baseline)
        assert fresh, "the new KeyCurrentState site must not be masked"
        assert all(f.severity >= Severity.WARNING for f in fresh)

    def test_info_findings_never_gate(self, tmp_path):
        src = """
start:  moveq   #1,d0
        move.l  d0,-(sp)
        moveq   #2,d0
        move.l  d0,(sp)
        move.l  (sp)+,d1
        rts
"""
        _, result = _audit(src)
        assert result.report.has("dead-store")
        assert new_findings_against(result, set()) == []

    def test_committed_rom_baseline_is_current(self):
        """The checked-in CI baseline matches a fresh audit of the
        built-in ROM — the audit gate is green at HEAD."""
        result = audit_rom(ram_size=8 << 20, flash_size=1 << 20)
        baseline = load_baseline("tools/audit_baseline.json")
        assert new_findings_against(result, baseline) == []
        # And the ROM itself carries no error-severity semantic finding.
        assert result.ok, result.report.format()


# ----------------------------------------------------------------------
# Whole-ROM audit + the real replayed-session cross-check
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def quickstart(tmp_path_factory):
    from repro.cli import main
    out = tmp_path_factory.mktemp("audit") / "session"
    assert main(["collect", "--out", str(out),
                 "--session", "quickstart"]) == 0
    return out


class TestRomAudit:
    def test_rom_audit_structure(self):
        result = audit_rom(ram_size=8 << 20, flash_size=1 << 20)
        # The standard hack set covers SysRandom/KeyCurrentState, so the
        # only nondeterminism findings are TimGetTicks warnings.
        nondet = [f for f in result.report
                  if f.code == "untraced-nondeterminism"]
        assert nondet and all("TimGetTicks" in f.message for f in nondet)
        assert all(f.severity == Severity.WARNING for f in nondet)
        assert not result.report.has("code-write")
        assert len(result.trap_sites) > 20
        sigs = result.census.signatures()
        # The event loop waits forever: recovered constant argument.
        assert [None, 0xFFFFFFFF] in sigs["EvtGetEvent"]
        json_doc = result.to_json()
        assert json_doc["stats"]["errors"] == 0
        json.dumps(json_doc)        # must be serializable

    def test_replayed_session_region_cross_check(self, quickstart):
        """Acceptance: per-instruction region predictions hold against
        the per-pc reference masks of a real replayed session."""
        from repro.apps import standard_apps
        from repro.emulator import replay_session
        from repro.tracelog import ActivityLog, InitialState

        state = InitialState.load(quickstart / "initial_state")
        log = ActivityLog.load(quickstart / "activity_log.pdb")
        _, profiler, _ = replay_session(
            state, log, apps=standard_apps(), profile=True,
            trace_references=False, track_opcode_addresses=True,
            track_reference_pcs=True,
            emulator_kwargs={"ram_size": 8 << 20, "flash_size": 1 << 20})
        assert profiler.reference_pcs, "no per-pc references recorded"

        result = audit_rom(ram_size=8 << 20, flash_size=1 << 20)
        report = cross_check_regions(result, profiler.reference_pcs)
        assert report.ok, report.format()
        assert not report.has("region-mismatch")
        summary = [f for f in report if f.code == "region-cross-check"][0]
        # The check must actually cover a meaningful instruction count.
        assert int(summary.message.split()[0]) > 25

    def test_cli_audit_baseline_gate(self, tmp_path, capsys):
        from repro.cli import main
        rc = main(["audit", "--baseline", "tools/audit_baseline.json"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "no new findings" in out

    def test_cli_lint_deep(self, capsys):
        from repro.cli import main
        rc = main(["lint", "--deep"])
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "semantic ROM audit" in out
        assert "TimGetTicks" in out
