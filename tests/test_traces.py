"""Tests for trace interchange (dinero format) and trace containers."""

import numpy as np
import pytest

from repro.device.memmap import (
    KIND_FETCH,
    KIND_READ,
    KIND_WRITE,
    REGION_FLASH,
    REGION_RAM,
)
from repro.emulator import ReferenceTrace
from repro.traces.dinero import DineroFormatError, read_dinero, write_dinero


def sample_trace() -> ReferenceTrace:
    addresses = np.array([0x1000, 0x1002, 0x2000, 0x1000_0000, 0x1000_0002],
                         dtype=np.uint32)
    kinds = np.array([
        KIND_READ | (REGION_RAM << 4),
        KIND_WRITE | (REGION_RAM << 4),
        KIND_READ | (REGION_RAM << 4),
        KIND_FETCH | (REGION_FLASH << 4),
        KIND_FETCH | (REGION_FLASH << 4),
    ], dtype=np.uint8)
    return ReferenceTrace(addresses=addresses, kinds=kinds)


class TestDinero:
    def test_write_produces_classic_format(self, tmp_path):
        path = tmp_path / "t.din"
        count = write_dinero(sample_trace(), path)
        assert count == 5
        lines = path.read_text().splitlines()
        assert lines[0] == "0 1000"     # data read
        assert lines[1] == "1 1002"     # data write
        assert lines[3] == "2 10000000"  # instruction fetch

    def test_roundtrip_addresses_and_kinds(self, tmp_path):
        path = tmp_path / "t.din"
        original = sample_trace()
        write_dinero(original, path)
        back = read_dinero(path)
        assert np.array_equal(back.addresses, original.addresses)
        assert np.array_equal(back.kind, original.kind)

    def test_regions_synthesised_from_addresses(self, tmp_path):
        path = tmp_path / "t.din"
        write_dinero(sample_trace(), path)
        back = read_dinero(path)
        assert list(back.region) == [REGION_RAM] * 3 + [REGION_FLASH] * 2

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "t.din"
        path.write_text("0 1000\n\n2 2000\n")
        back = read_dinero(path)
        assert len(back) == 2

    def test_roundtrip_large_random_trace(self, tmp_path):
        path = tmp_path / "big.din"
        rng = np.random.default_rng(0)
        n = 100_000  # spans multiple formatting/parsing chunks
        original = ReferenceTrace(
            addresses=rng.integers(0, 1 << 32, n,
                                   dtype=np.uint64).astype(np.uint32),
            kinds=rng.integers(0, 3, n).astype(np.uint8))
        write_dinero(original, path)
        back = read_dinero(path)
        assert np.array_equal(back.addresses, original.addresses)
        assert np.array_equal(back.kind, original.kind)

    @pytest.mark.parametrize("text,message", [
        ("7 1000\n", "unknown dinero label"),
        ("0 wxyz\n", "invalid hex address"),
        ("0 123456789\n", "oversized"),
        ("1\n", "missing"),
        ("0 1000\n2 zz\n", "line 2"),
    ])
    def test_malformed_records_raise(self, tmp_path, text, message):
        path = tmp_path / "bad.din"
        path.write_text(text)
        with pytest.raises(DineroFormatError, match=message):
            read_dinero(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.din"
        path.write_text("")
        assert len(read_dinero(path)) == 0


class TestReferenceTraceContainer:
    def test_memory_only_drops_hw(self):
        from repro.device.memmap import REGION_HW
        addresses = np.array([1, 2, 3], dtype=np.uint32)
        kinds = np.array([
            KIND_READ | (REGION_RAM << 4),
            KIND_READ | (REGION_HW << 4),
            KIND_READ | (REGION_FLASH << 4),
        ], dtype=np.uint8)
        trace = ReferenceTrace(addresses, kinds).memory_only()
        assert list(trace.addresses) == [1, 3]

    def test_is_write_mask(self):
        trace = sample_trace()
        assert list(trace.is_write) == [False, True, False, False, False]

    def test_counts(self):
        counts = sample_trace().counts()
        assert counts["ram"] == 3
        assert counts["flash"] == 2
        assert counts["fetch"] == 2
        assert counts["write"] == 1
