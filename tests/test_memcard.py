"""Tests for the memory-card extension (§2.3.1's deferred feature):
slot model, the card window, detection through SysNotifyBroadcast, and
full collect-replay of a card session."""

import pytest

from repro import UserScript, collect_session, replay_session, standard_apps
from repro.device.memcard import (
    CARD_WINDOW_BASE,
    MemoryCard,
    NOTIFY_CARD_INSERTED,
    NOTIFY_CARD_REMOVED,
)
from repro.m68k.errors import BusError
from repro.palmos import AppSpec, PalmOS, Trap
from repro.tracelog import InitialState, LogEventType, read_activity_log

EMU_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}

# A guest app that, on every notification, copies the first 16 bytes of
# the card window into RAM at $31000 (if a card is present).
CARD_READER = AppSpec(name="cardreader", source="""
app_cardreader:
        link    a6,#-16
cr_loop:
        move.l  #$ffffffff,-(sp)
        pea     -16(a6)
        dc.w    SYS_EvtGetEvent
        addq.l  #8,sp
        move.w  -16(a6),d0
        cmpi.w  #22,d0                  ; appStopEvent
        beq.s   cr_done
        cmpi.w  #24,d0                  ; notifyEvent
        bne.s   cr_loop
        dc.w    SYS_ExpCardPresent
        tst.l   d0
        beq.s   cr_loop
        lea     $20000000,a0            ; the card window
        lea     $31000,a1
        moveq   #15,d1
cr_copy:
        move.b  (a0)+,(a1)+
        dbra    d1,cr_copy
        addq.l  #1,$31010               ; copy counter
        bra.s   cr_loop
cr_done:
        unlk    a6
        rts
""")


def make_kernel(apps=None, **kwargs):
    kwargs.setdefault("ram_size", EMU_KW["ram_size"])
    kwargs.setdefault("flash_size", EMU_KW["flash_size"])
    kernel = PalmOS(apps=apps if apps is not None else [CARD_READER],
                    **kwargs)
    kernel.boot()
    return kernel


class TestCardSlot:
    def test_insert_and_remove(self):
        kernel = make_kernel()
        slot = kernel.device.card_slot
        assert not slot.present
        slot.insert(MemoryCard.blank("SD-1", 4096))
        assert slot.present
        assert slot.last_event == NOTIFY_CARD_INSERTED
        slot.remove()
        assert not slot.present
        assert slot.last_event == NOTIFY_CARD_REMOVED

    def test_window_reads_card_contents(self):
        kernel = make_kernel()
        card = MemoryCard("SD-1", bytearray(b"HELLO-CARD!!" + bytes(100)))
        kernel.device.card_slot.insert(card)
        assert kernel.device.mem.read8(CARD_WINDOW_BASE) == ord("H")
        assert kernel.device.mem.read16(CARD_WINDOW_BASE + 2) == 0x4C4C  # "LL"

    def test_window_floats_high_without_card(self):
        kernel = make_kernel()
        assert kernel.device.mem.read8(CARD_WINDOW_BASE) == 0xFF
        assert kernel.device.mem.read32(CARD_WINDOW_BASE + 8) == 0xFFFFFFFF

    def test_window_write_without_card_faults(self):
        kernel = make_kernel()
        with pytest.raises(BusError):
            kernel.device.mem.write8(CARD_WINDOW_BASE, 1)

    def test_window_writes_persist_on_card(self):
        kernel = make_kernel()
        card = MemoryCard.blank("SD-1", 256)
        kernel.device.card_slot.insert(card)
        kernel.device.mem.write16(CARD_WINDOW_BASE + 10, 0xBEEF)
        assert card.contents[10:12] == b"\xbe\xef"

    def test_reads_past_card_end_float(self):
        kernel = make_kernel()
        kernel.device.card_slot.insert(MemoryCard.blank("S", 16))
        assert kernel.device.mem.read8(CARD_WINDOW_BASE + 100) == 0xFF


class TestCardTraps:
    def test_exp_card_present(self):
        kernel = make_kernel()
        assert kernel.call_trap(Trap.ExpCardPresent) == 0
        kernel.device.card_slot.insert(MemoryCard.blank("SD-1", 64))
        assert kernel.call_trap(Trap.ExpCardPresent) == 1

    def test_exp_card_info_returns_name(self):
        kernel = make_kernel()
        kernel.device.card_slot.insert(MemoryCard.blank("MyCard", 64))
        buf = 0x32000
        assert kernel.call_trap(Trap.ExpCardInfo, buf) == 0
        raw = kernel.host.read_bytes(buf, 7)
        assert raw == b"MyCard\x00"

    def test_exp_card_info_errors_without_card(self):
        kernel = make_kernel()
        assert kernel.call_trap(Trap.ExpCardInfo, 0x32000) != 0


class TestCardDetection:
    def test_insertion_broadcasts_and_is_logged(self):
        """'The insertion, removal, and name of a memory card can be
        detected with our technique' — via the SysNotifyBroadcast hack."""
        from repro.hacks import HackManager
        from repro.tracelog import create_log_database
        kernel = make_kernel()
        create_log_database(kernel)
        HackManager(kernel).install_standard()
        kernel.device.schedule_card_insert(50, MemoryCard.blank("SD-1", 64))
        kernel.device.schedule_card_remove(80)
        kernel.device.run_until_idle()
        notifies = read_activity_log(kernel).of_type(LogEventType.NOTIFY)
        assert [n.data for n in notifies] == [NOTIFY_CARD_INSERTED,
                                              NOTIFY_CARD_REMOVED]
        assert [n.tick for n in notifies] == [50, 80]


class TestCardSessionReplay:
    @pytest.fixture(scope="class")
    def run(self):
        apps = [CARD_READER]
        card = MemoryCard("SD-1", bytearray(b"CARD-PAYLOAD-16B" + bytes(240)))
        script = (UserScript("card-session").at(60)
                  .insert_card().wait(60)
                  .remove_card().wait(40))
        session = collect_session(apps, script, name="card", card=card,
                                  ram_size=EMU_KW["ram_size"])
        emulator, _, result = replay_session(
            session.initial_state, session.log, apps=apps,
            profile=False, emulator_kwargs=EMU_KW)
        return session, emulator, result

    def test_card_contents_snapshotted(self, run):
        session, _, _ = run
        assert session.initial_state.card_name == "SD-1"
        assert session.initial_state.card_image[:4] == b"CARD"

    def test_guest_read_card_during_collection(self, run):
        session, _, _ = run
        # The reader app copied the payload into RAM; it then appears
        # in no database, so verify via the emulated run below instead.
        notifies = session.log.of_type(LogEventType.NOTIFY)
        assert len(notifies) == 2

    def test_replay_reinjects_card_and_matches_log(self, run):
        session, emulator, _ = run
        original = [(r.type, r.tick, r.data) for r in session.log]
        replayed = [(r.type, r.tick, r.data)
                    for r in read_activity_log(emulator.kernel)]
        assert replayed == original

    def test_replayed_guest_read_same_card_bytes(self, run):
        _, emulator, _ = run
        copied = emulator.kernel.host.read_bytes(0x31000, 16)
        assert copied == b"CARD-PAYLOAD-16B"
        assert emulator.kernel.host.read32(0x31010) >= 1

    def test_state_roundtrip_with_card(self, run, tmp_path):
        session, _, _ = run
        session.initial_state.save(tmp_path / "s")
        back = InitialState.load(tmp_path / "s")
        assert back.card_name == "SD-1"
        assert back.card_image == session.initial_state.card_image

    def test_replay_without_card_image_fails_clearly(self, run):
        session, _, _ = run
        import dataclasses
        stripped = dataclasses.replace(session.initial_state,
                                       card_name=None, card_image=None)
        with pytest.raises(RuntimeError, match="card"):
            replay_session(stripped, session.log, apps=[CARD_READER],
                           profile=False, emulator_kwargs=EMU_KW)
