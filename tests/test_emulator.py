"""Tests for the replay emulator: state import, playback fidelity, the
replay queues, profiling, and the jitter model."""

import numpy as np
import pytest

from repro.device import Button
from repro.emulator import (
    Emulator,
    JitterModel,
    PlaybackDriver,
    Profiler,
    ReferenceTrace,
    RomMismatchError,
    replay_session,
)
from repro.emulator.playback import _KeyStateQueue, PlaybackResult
from repro.tracelog import LogEventType, LogRecord, read_activity_log
from repro.workloads.scripts import UserScript
from repro.workloads.sessions import collect_session

from tests.palmos_utils import BLANK_APP, RECORDER_APP

APPS = [RECORDER_APP]
EMU_KW = {"ram_size": 4 << 20, "flash_size": 1 << 20}


def simple_script() -> UserScript:
    return (UserScript().at(50)
            .tap(40, 40).wait(20)
            .drag([(10, 10), (30, 30), (60, 60)]).wait(30)
            .press(Button.UP).wait(50))


@pytest.fixture(scope="module")
def session():
    return collect_session(APPS, simple_script(), name="emutest")


class TestStateImport:
    def test_rom_mismatch_detected(self, session):
        emulator = Emulator(apps=[RECORDER_APP, BLANK_APP], **EMU_KW)
        with pytest.raises(RomMismatchError):
            emulator.load_state(session.initial_state)

    def test_import_zeroes_dates(self, session):
        emulator = Emulator(apps=APPS, **EMU_KW)
        emulator.load_state(session.initial_state)
        for image in emulator.kernel.hotsync_backup():
            assert image.creation_date == 0
            assert image.last_backup_date == 0

    def test_imported_machine_reaches_idle(self, session):
        emulator = Emulator(apps=APPS, **EMU_KW)
        emulator.load_state(session.initial_state)
        assert emulator.device.cpu.stopped


class TestReplayFidelity:
    def test_replay_reproduces_activity_log(self, session):
        """§3.3: each event in the original log appears in the emulated
        log with the same data — here, bit-exactly."""
        emulator, _, result = replay_session(
            session.initial_state, session.log, apps=APPS, profile=False,
            emulator_kwargs=EMU_KW)
        original = [(r.type, r.tick, r.data) for r in session.log]
        replayed = [(r.type, r.tick, r.data)
                    for r in read_activity_log(emulator.kernel)]
        assert replayed == original
        assert result.events_injected == len(
            [r for r in session.log
             if r.type in (LogEventType.PEN, LogEventType.KEY)])

    def test_replay_independent_of_emulator_entropy(self, session):
        """The SysRandom seed queue makes replay deterministic even when
        the emulator's own entropy differs from the device's."""
        logs = []
        for entropy in (0x1111, 0x2222):
            kwargs = dict(EMU_KW, entropy_seed=entropy)
            emulator, _, _ = replay_session(
                session.initial_state, session.log, apps=APPS,
                profile=False, emulator_kwargs=kwargs)
            logs.append([(r.type, r.tick, r.data)
                         for r in read_activity_log(emulator.kernel)])
        assert logs[0] == logs[1]

    def test_replay_final_state_matches_but_dates(self, session):
        """§3.4's result: databases correlate except the date fields."""
        emulator, _, _ = replay_session(
            session.initial_state, session.log, apps=APPS, profile=False,
            emulator_kwargs=EMU_KW)
        device_final = {d.name: d for d in session.final_state}
        emulated_final = {d.name: d for d in emulator.final_state()}
        assert set(device_final) == set(emulated_final)
        for name, dev in device_final.items():
            emu = emulated_final[name]
            assert [r.data for r in dev.records] == [r.data for r in emu.records], name
            assert dev.attributes == emu.attributes
            assert dev.unique_id_seed == emu.unique_id_seed

    def test_replay_twice_is_bit_identical(self, session):
        results = []
        for _ in range(2):
            emulator, _, result = replay_session(
                session.initial_state, session.log, apps=APPS,
                profile=False, emulator_kwargs=EMU_KW)
            results.append((result.instructions,
                            [(r.type, r.tick, r.data)
                             for r in read_activity_log(emulator.kernel)]))
        assert results[0] == results[1]


class TestProfiling:
    def test_profile_counts_consistent(self, session):
        _, profiler, _ = replay_session(
            session.initial_state, session.log, apps=APPS,
            emulator_kwargs=EMU_KW)
        assert profiler.total_refs == (profiler.ram_refs
                                       + profiler.flash_refs
                                       + profiler.hw_refs)
        assert profiler.total_refs == (profiler.fetch_refs
                                       + profiler.read_refs
                                       + profiler.write_refs)
        assert profiler.flash_refs > 0
        assert profiler.ram_refs > 0

    def test_average_memory_cycles_in_range(self, session):
        _, profiler, _ = replay_session(
            session.initial_state, session.log, apps=APPS,
            emulator_kwargs=EMU_KW)
        assert 1.0 < profiler.average_memory_cycles() < 3.0

    def test_opcode_histogram_counts_instructions(self, session):
        _, profiler, _ = replay_session(
            session.initial_state, session.log, apps=APPS,
            emulator_kwargs=EMU_KW)
        histogram_total = int(profiler.opcode_histogram().sum())
        assert histogram_total == profiler.instructions
        top = profiler.top_opcodes(5)
        assert top and top[0][1] >= top[-1][1]

    def test_reference_trace_matches_counters(self, session):
        _, profiler, _ = replay_session(
            session.initial_state, session.log, apps=APPS,
            emulator_kwargs=EMU_KW)
        trace = profiler.reference_trace()
        assert len(trace) == profiler.total_refs
        counts = trace.counts()
        assert counts["ram"] == profiler.ram_refs
        assert counts["flash"] == profiler.flash_refs

    def test_reference_trace_roundtrip(self, tmp_path, session):
        _, profiler, _ = replay_session(
            session.initial_state, session.log, apps=APPS,
            emulator_kwargs=EMU_KW)
        trace = profiler.reference_trace()
        trace.save(tmp_path / "trace.npz")
        back = ReferenceTrace.load(tmp_path / "trace.npz")
        assert np.array_equal(back.addresses, trace.addresses)
        assert np.array_equal(back.kinds, trace.kinds)

    def test_profiling_disables_native_path(self, session):
        emulator = Emulator(apps=APPS, **EMU_KW)
        emulator.load_state(session.initial_state)
        assert emulator.kernel.allow_native
        emulator.start_profiling()
        assert not emulator.kernel.allow_native
        emulator.stop_profiling()
        assert emulator.kernel.allow_native

    def test_profiled_and_native_replays_agree_on_state(self, session):
        """POSE's native optimisation must not change semantics: the
        emulated activity logs agree whether or not profiling is on."""
        logs = []
        for profile in (False, True):
            emulator, _, _ = replay_session(
                session.initial_state, session.log, apps=APPS,
                profile=profile, emulator_kwargs=EMU_KW)
            logs.append([(r.type, r.tick, r.data)
                         for r in read_activity_log(emulator.kernel)])
        assert logs[0] == logs[1]


class TestKeyStateQueue:
    def _queue(self, pairs):
        records = [LogRecord(LogEventType.KEYSTATE, tick, 0, value)
                   for tick, value in pairs]
        return _KeyStateQueue(records, PlaybackResult())

    def test_lookup_by_tick(self):
        queue = self._queue([(100, 1), (200, 2), (300, 4)])
        assert queue.lookup(100, 99) == 1
        assert queue.lookup(250, 99) == 2
        assert queue.lookup(300, 99) == 4
        assert queue.lookup(900, 99) == 4

    def test_lookup_before_first_returns_raw(self):
        queue = self._queue([(100, 1)])
        assert queue.lookup(50, 99) == 99

    def test_empty_queue_returns_raw(self):
        queue = self._queue([])
        assert queue.lookup(10, 7) == 7


class TestJitterModel:
    def test_delays_bounded(self):
        jitter = JitterModel(seed=3)
        delays = [jitter.event_delay() for _ in range(2000)]
        assert all(0 <= d < 20 for d in delays)
        assert any(d > 0 for d in delays)
        assert delays.count(0) > len(delays) // 2  # mostly on schedule

    def test_jittered_replay_keeps_event_payloads(self, session):
        """§3.3: with bursts the events are slightly late but 'contain
        virtually the same inputs'."""
        emulator, _, result = replay_session(
            session.initial_state, session.log, apps=APPS, profile=False,
            jitter=JitterModel(seed=1, burst_probability=0.5),
            emulator_kwargs=EMU_KW)
        original = [(r.type, r.data) for r in session.log]
        replayed = [(r.type, r.data)
                    for r in read_activity_log(emulator.kernel)]
        assert replayed == original  # payloads identical
        assert result.delays_applied  # some events actually slipped
        # And each slipped by less than 20 ticks.
        orig_ticks = [r.tick for r in session.log]
        repl_ticks = [r.tick
                      for r in read_activity_log(emulator.kernel)]
        assert all(0 <= b - a < 20 for a, b in zip(orig_ticks, repl_ticks))
