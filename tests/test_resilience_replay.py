"""Integration tests for the resilience subsystem against a live
emulator: checkpoint/resume byte-identity (including as a hypothesis
property), the typed guest-reset timeout, same-tick collision bumping,
and the three divergence policies of ``resilient_replay``.
"""

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro import replay_session, standard_apps
from repro.device import Button
from repro.emulator.playback import (
    DEFAULT_RESET_TIMEOUT,
    GuestResetTimeout,
    PlaybackDriver,
)
from repro.emulator.pose import Emulator
from repro.resilience import (
    Checkpoint,
    DivergenceError,
    DivergenceKind,
    FaultPlan,
    ReplayFault,
    resilient_replay,
)
from repro.tracelog import (
    ActivityLog,
    LogEventType,
    LogRecord,
    read_activity_log,
)
from repro.workloads import UserScript, collect_session

EMU_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}

_APPS = standard_apps()


def _script() -> UserScript:
    script = UserScript("resil")
    script.at(80)
    script.tap(30, 50, hold_ticks=4)
    script.wait(60)
    script.tap(100, 120, hold_ticks=4)
    script.wait(200)
    return script


def _reset_script() -> UserScript:
    return (UserScript("resil-reset").at(80)
            .tap(150, 150).wait(150)      # launcher corner -> soft reset
            .tap(60, 40).wait(120))       # epoch 2


@pytest.fixture(scope="module")
def session():
    return collect_session(_APPS, _script(), name="resil", entropy_seed=77,
                           ram_size=EMU_KW["ram_size"])


@pytest.fixture(scope="module")
def reset_session():
    return collect_session(_APPS, _reset_script(), name="resil-reset",
                           entropy_seed=77, ram_size=EMU_KW["ram_size"])


def log_tuples(kernel):
    return [(int(r.type), r.tick, r.data)
            for r in read_activity_log(kernel)]


def db_fingerprint(databases):
    return [(db.name, [(r.attr, r.uid, bytes(r.data)) for r in db.records])
            for db in databases]


def run_with_checkpoints(session, every=100):
    cps = []
    emulator = Emulator(apps=_APPS, **EMU_KW)
    emulator.load_state(session.initial_state, final_reset=False)
    driver = PlaybackDriver(emulator, session.log, checkpoint_every=every,
                            checkpoint_hook=cps.append)
    result = driver.run(reset=True)
    return emulator, result, cps


def resume_on_fresh_emulator(session, checkpoint):
    emulator = Emulator(apps=_APPS, **EMU_KW)
    driver = PlaybackDriver(emulator, session.log)
    result = driver.resume_from(checkpoint)
    return emulator, result


# ----------------------------------------------------------------------
# Checkpoint/resume byte-identity
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_checkpointing_does_not_perturb_the_replay(self, session):
        plain, _, res_plain = replay_session(
            session.initial_state, session.log, apps=_APPS, profile=False,
            emulator_kwargs=EMU_KW)
        ckpt, res_ckpt, cps = run_with_checkpoints(session)
        assert cps, "session too short to capture any checkpoint"
        assert vars(res_plain) == vars(res_ckpt)
        assert log_tuples(plain.kernel) == log_tuples(ckpt.kernel)

    def test_every_checkpoint_resumes_byte_identically(self, session):
        reference, res_ref, cps = run_with_checkpoints(session)
        ref_log = log_tuples(reference.kernel)
        ref_fp = db_fingerprint(reference.final_state())
        for cp in cps:
            # Round-trip through the serialized container: what resumes
            # is what a crashed process would reload from disk.
            reloaded = Checkpoint.from_bytes(cp.to_bytes())
            emulator, result = resume_on_fresh_emulator(session, reloaded)
            assert vars(result) == vars(res_ref), f"checkpoint @{cp.tick}"
            assert log_tuples(emulator.kernel) == ref_log
            assert db_fingerprint(emulator.final_state()) == ref_fp

    def test_resume_preserves_profiler_streams(self, session):
        cps = []
        emulator = Emulator(apps=_APPS, **EMU_KW)
        emulator.load_state(session.initial_state, final_reset=False)
        emulator.start_profiling(trace_references=True)
        driver = PlaybackDriver(emulator, session.log, checkpoint_every=100,
                                checkpoint_hook=cps.append)
        res_ref = driver.run(reset=True)
        profiler = emulator.profiler
        assert cps

        cp = cps[len(cps) // 2]
        fresh = Emulator(apps=_APPS, **EMU_KW)
        fresh.start_profiling(trace_references=True)
        result = PlaybackDriver(fresh, session.log).resume_from(cp)
        assert vars(result) == vars(res_ref)
        assert fresh.profiler.instructions == profiler.instructions
        assert bytes(fresh.profiler.opcode_counts) == \
            bytes(profiler.opcode_counts)
        assert fresh.profiler.reference_trace().addresses.tobytes() == \
            profiler.reference_trace().addresses.tobytes()

    def test_resume_across_a_guest_reset(self, reset_session):
        reference, res_ref, cps = run_with_checkpoints(reset_session)
        ref_log = log_tuples(reference.kernel)
        for cp in cps:
            emulator, result = resume_on_fresh_emulator(reset_session, cp)
            assert vars(result) == vars(res_ref), f"checkpoint @{cp.tick}"
            assert log_tuples(emulator.kernel) == ref_log


@st.composite
def short_scripts(draw):
    script = UserScript("resil-prop")
    script.at(draw(st.integers(60, 150)))
    for _ in range(draw(st.integers(1, 3))):
        if draw(st.booleans()):
            script.tap(draw(st.integers(0, 140)), draw(st.integers(0, 140)),
                       hold_ticks=draw(st.integers(2, 6)))
        else:
            script.press(draw(st.sampled_from([
                Button.UP, Button.DOWN, Button.MEMO])),
                hold_ticks=draw(st.integers(2, 6)))
        script.wait(draw(st.integers(20, 100)))
    script.wait(150)
    return script


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(script=short_scripts(), entropy=st.integers(1, 2**31),
       pick=st.integers(0, 100))
def test_property_interrupted_replay_is_bit_exact(script, entropy, pick):
    """Replay-to-T, checkpoint, resume on a fresh machine, replay to
    the end: stats, replayed log, and final databases all match the
    uninterrupted run — for arbitrary schedules and interrupt points."""
    session = collect_session(_APPS, script, name="resil-prop",
                              entropy_seed=entropy,
                              ram_size=EMU_KW["ram_size"])
    reference, res_ref, cps = run_with_checkpoints(session, every=120)
    assume(cps)
    cp = cps[pick % len(cps)]
    emulator, result = resume_on_fresh_emulator(session, cp)
    assert vars(result) == vars(res_ref)
    assert log_tuples(emulator.kernel) == log_tuples(reference.kernel)
    assert db_fingerprint(emulator.final_state()) == \
        db_fingerprint(reference.final_state())


# ----------------------------------------------------------------------
# Satellite: typed guest-reset timeout
# ----------------------------------------------------------------------
class TestGuestResetTimeout:
    def test_missing_reset_raises_typed_error(self, session):
        # A RESET record whose reset the guest never performs: the
        # driver must fail with the typed, localized timeout, not a
        # bare RuntimeError.
        log = ActivityLog()
        for rec in session.log:
            log.append(rec)
        last = log.records[-1].tick
        log.append(LogRecord(LogEventType.RESET, last + 10, 0, 0))
        # Epoch 2 must exist, else the RESET merely ends the session.
        log.append(LogRecord(LogEventType.PEN, 5, 50, 0x8000_3232))
        emulator = Emulator(apps=_APPS, **EMU_KW)
        emulator.load_state(session.initial_state, final_reset=False)
        driver = PlaybackDriver(emulator, log, reset_timeout=300)
        with pytest.raises(GuestResetTimeout) as exc_info:
            driver.run(reset=True)
        err = exc_info.value
        assert err.reset_timeout == 300
        assert err.ticks_waited >= 300
        assert err.boots_seen == err.boots_expected - 1
        assert "boot count" in str(err)

    def test_default_budget_is_the_old_hardcoded_bound(self):
        assert DEFAULT_RESET_TIMEOUT == 100_000


# ----------------------------------------------------------------------
# Satellite: same-tick same-peripheral collision bump
# ----------------------------------------------------------------------
class TestCollisionBump:
    def test_same_tick_key_events_are_bumped_apart(self, session):
        down = 0x8000_0000 | int(Button.MEMO)
        up = int(Button.MEMO)
        log = ActivityLog()
        log.append(LogRecord(LogEventType.KEY, 300, 300, down))
        log.append(LogRecord(LogEventType.KEY, 300, 300, up))
        emulator = Emulator(apps=_APPS, **EMU_KW)
        emulator.load_state(session.initial_state, final_reset=False)
        driver = PlaybackDriver(emulator, log)
        result = driver.run(reset=True)
        assert result.events_injected == 2
        key_ticks = [tick for tick, kind, _ in driver._sched if kind == "key"]
        assert len(set(key_ticks)) == 2, "second event must not overwrite " \
                                         "the latch before the ISR reads it"
        assert sorted(key_ticks) == key_ticks

    def test_different_peripherals_may_share_a_tick(self, session):
        log = ActivityLog()
        log.append(LogRecord(LogEventType.KEY, 300, 300,
                             0x8000_0000 | int(Button.UP)))
        log.append(LogRecord(LogEventType.PEN, 300, 300, 0x8000_3232))
        emulator = Emulator(apps=_APPS, **EMU_KW)
        emulator.load_state(session.initial_state, final_reset=False)
        driver = PlaybackDriver(emulator, log)
        driver.run(reset=True)
        assert sorted(t for t, _, _ in driver._sched) == [300, 300]


# ----------------------------------------------------------------------
# resilient_replay policies
# ----------------------------------------------------------------------
class TestResilientReplay:
    def _run(self, session, **kw):
        kw.setdefault("profile", False)
        kw.setdefault("checkpoint_every", 100)
        return resilient_replay(session.initial_state, session.log,
                                apps=_APPS, emulator_kwargs=EMU_KW, **kw)

    def test_clean_run_is_clean(self, session):
        out = self._run(session, on_divergence="strict")
        assert out.clean and not out.tainted and out.retries == 0
        assert not out.report
        assert out.checkpoints.ticks, "no checkpoints captured"

    def test_runtime_crash_recovers_under_resync(self, session):
        clean = self._run(session, on_divergence="strict")
        out = self._run(session, on_divergence="resync",
                        faults="crash:at=250")
        assert out.recovered and out.retries == 1 and not out.tainted
        assert any("crash" in note for note in out.fault_notes)
        # The recovery is invisible in the result: identical stats.
        assert vars(out.result) == vars(clean.result)
        assert log_tuples(out.emulator.kernel) == \
            log_tuples(clean.emulator.kernel)

    def test_runtime_crash_under_strict_raises_typed_fault(self, session):
        with pytest.raises(ReplayFault) as exc_info:
            self._run(session, on_divergence="strict", faults="crash:at=250")
        assert exc_info.value.fault_name == "crash"

    def test_trace_corruption_under_strict_is_localized(self, session):
        with pytest.raises(DivergenceError) as exc_info:
            self._run(session, on_divergence="strict", faults="truncate:at=4")
        report = exc_info.value.report
        assert DivergenceKind.MISSING_EVENT in report.kinds
        assert report.last_good_tick is not None
        assert report.first_bad_tick is not None
        assert report.last_good_tick <= report.first_bad_tick

    def test_trace_corruption_under_degrade_taints_and_completes(self,
                                                                 session):
        out = self._run(session, on_divergence="degrade",
                        faults="truncate:at=4")
        assert out.tainted and not out.clean
        assert out.report.divergences

    def test_deterministic_corruption_exhausts_resync_budget(self, session):
        with pytest.raises(DivergenceError) as exc_info:
            self._run(session, on_divergence="resync", retry_budget=2,
                      faults="truncate:at=4")
        assert exc_info.value.report.retries == 2

    def test_salvage_recovers_a_garbled_trace(self, session):
        # The log was corrupted *on disk* (before replay): salvage must
        # diagnose it and the replay must still run to completion.
        garbled, _ = FaultPlan.parse("type-garbage:n=1").apply_to_log(
            session.log)
        out = resilient_replay(session.initial_state, garbled,
                               apps=_APPS, emulator_kwargs=EMU_KW,
                               profile=False, checkpoint_every=100,
                               salvage=True, on_divergence="degrade")
        assert out.salvage is not None
        assert not out.salvage.clean
        assert out.salvage.report.errors[0].code == "unknown-event-type"

    def test_stalled_reset_is_typed_under_strict(self, reset_session):
        with pytest.raises(GuestResetTimeout):
            self._run(reset_session, on_divergence="strict",
                      faults="stall-reset", reset_timeout=800)

    def test_stalled_reset_recovers_under_resync(self, reset_session):
        out = self._run(reset_session, on_divergence="resync",
                        faults="stall-reset", reset_timeout=800,
                        keep_checkpoints=8)
        assert out.recovered and not out.tainted
        assert not out.report.divergences

    def test_checkpoint_dir_is_populated(self, session, tmp_path):
        out = self._run(session, on_divergence="strict",
                        checkpoint_dir=tmp_path)
        assert list(tmp_path.glob("ckpt-*.bin"))
        assert out.clean
