"""Shared fixtures for kernel-level tests: a recorder application that
logs every event it receives to a RAM area the host can inspect."""

from __future__ import annotations

from repro.palmos import AppSpec, PalmOS

# Event log written by the recorder app (inside the dynamic heap area,
# safe as long as the test does not also allocate).
REC_COUNT = 0x30000
REC_ENTRIES = 0x30010

RECORDER_APP = AppSpec(
    name="recorder",
    source="""
app_recorder:
        link    a6,#-16
rec_loop:
        move.l  #$ffffffff,-(sp)        ; evtWaitForever
        pea     -16(a6)
        dc.w    SYS_EvtGetEvent
        addq.l  #8,sp
        ; append the 16-byte event to the log
        move.l  $30000,d0
        move.l  d0,d1
        lsl.l   #4,d1
        lea     $30010,a0
        adda.l  d1,a0
        move.l  -16(a6),(a0)
        move.l  -12(a6),4(a0)
        move.l  -8(a6),8(a0)
        move.l  -4(a6),12(a0)
        addq.l  #1,d0
        move.l  d0,$30000
        move.w  -16(a6),d0
        cmpi.w  #22,d0                  ; appStopEvent
        bne.s   rec_loop
        unlk    a6
        rts
""",
)

BLANK_APP = AppSpec(
    name="blank",
    source="""
app_blank:
        link    a6,#-16
blank_loop:
        move.l  #$ffffffff,-(sp)
        pea     -16(a6)
        dc.w    SYS_EvtGetEvent
        addq.l  #8,sp
        move.w  -16(a6),d0
        cmpi.w  #22,d0
        bne.s   blank_loop
        unlk    a6
        rts
""",
)


def make_kernel(apps=None, **kwargs) -> PalmOS:
    kwargs.setdefault("ram_size", 1 << 21)
    kwargs.setdefault("flash_size", 1 << 20)
    kernel = PalmOS(apps if apps is not None else [RECORDER_APP], **kwargs)
    kernel.boot()
    return kernel


def recorded_events(kernel: PalmOS) -> list[tuple[int, int, int, int, int]]:
    """(etype, x, y, key, data) tuples from the recorder app's log."""
    host = kernel.host
    count = host.read32(REC_COUNT)
    events = []
    for i in range(count):
        base = REC_ENTRIES + i * 16
        events.append((
            host.read16(base),        # eType
            host.read16(base + 4),    # x
            host.read16(base + 6),    # y
            host.read16(base + 8),    # key
            host.read32(base + 10),   # data
        ))
    return events
