"""PTRC trace containers and the out-of-core cache layer.

Covers the container round trip (both codecs, pathological chunk
sizes), the bit-identity of chunk-streamed cache simulation against
the whole-trace kernels, torn-tail salvage, the profiler's streaming
trace sink, dinero interchange, the fleet's per-session trace archive
with digest verification on resume, and the CLI surface.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig, sweep_parallel
from repro.cache.cache import (
    POLICY_FIFO,
    POLICY_RANDOM,
    WRITE_BACK,
    WRITE_THROUGH,
)
from repro.cache.kernels import (
    kernel_misses_by_associativity,
    lru_hit_depths,
    simulate,
    simulate_auto,
)
from repro.cache.stackdist import lru_family_stats, to_line_addresses
from repro.device.memmap import (
    KIND_FETCH,
    KIND_READ,
    KIND_WRITE,
    REGION_FLASH,
    REGION_HW,
    REGION_RAM,
)
from repro.emulator import ReferenceTrace
from repro.emulator.profiling import Profiler
from repro.traces.container import (
    ContainerWriter,
    TraceArchive,
    TraceContainer,
    TraceContainerError,
    available_codecs,
    from_reference_trace,
    open_chunk_source,
    pack_tokens,
    recover_container,
    scan_frames,
    unpack_tokens,
    write_container,
)
from repro.traces.dinero import (
    DineroFormatError,
    container_to_dinero,
    dinero_to_container,
    read_dinero,
    write_dinero,
    write_dinero_chunks,
)

CODECS = [c for c in available_codecs() if c in ("raw", "zlib")]


def random_tokens(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << 26, size=n, dtype=np.uint64)
    kind = rng.choice([KIND_FETCH, KIND_READ, KIND_WRITE], size=n)
    region = rng.choice([REGION_RAM, REGION_FLASH, REGION_HW],
                        size=n, p=[0.6, 0.35, 0.05])
    return pack_tokens(addrs.astype(np.uint32),
                       (kind | (region << 4)).astype(np.uint8))


def random_accesses(n: int, seed: int = 0, addr_bits: int = 14):
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << addr_bits, size=n, dtype=np.uint32)
    writes = rng.random(n) < 0.3
    return addrs, writes


def chunked(arr, size):
    return [arr[i:i + size] for i in range(0, len(arr), size)]


# ----------------------------------------------------------------------
# Container round trip
# ----------------------------------------------------------------------

class TestContainerRoundTrip:
    @pytest.mark.parametrize("codec", CODECS)
    @pytest.mark.parametrize("chunk_tokens", [1, 3, 17, 1024])
    def test_round_trip_exact(self, tmp_path, codec, chunk_tokens):
        tokens = random_tokens(401, seed=chunk_tokens)
        path = tmp_path / "t.ptrc"
        manifest = write_container(tokens, path, codec=codec,
                                   chunk_tokens=chunk_tokens)
        assert manifest["tokens"] == 401
        with TraceContainer(path) as container:
            assert np.array_equal(container.tokens_array(), tokens)
            assert container.verify(deep=True)["digest"] == \
                manifest["digest"]

    def test_digest_is_codec_invariant(self, tmp_path):
        tokens = random_tokens(500, seed=7)
        digests = set()
        for codec in CODECS:
            manifest = write_container(tokens, tmp_path / f"{codec}.ptrc",
                                       codec=codec, chunk_tokens=64)
            digests.add(manifest["digest"])
        assert len(digests) == 1

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.ptrc"
        manifest = write_container(np.empty(0, dtype=np.uint64), path)
        assert manifest["tokens"] == 0
        with TraceContainer(path) as container:
            assert len(container.tokens_array()) == 0
            container.verify(deep=True)

    def test_incremental_writes_rechunk(self, tmp_path):
        tokens = random_tokens(300, seed=3)
        path = tmp_path / "t.ptrc"
        with ContainerWriter(path, chunk_tokens=64) as writer:
            for block in chunked(tokens, 7):   # misaligned feed sizes
                writer.append_tokens(block)
        with TraceContainer(path) as container:
            assert all(len(c) == 64 for c in list(container.chunks())[:-1])
            assert np.array_equal(container.tokens_array(), tokens)

    def test_reference_trace_round_trip(self, tmp_path):
        tokens = random_tokens(1000, seed=5)
        addrs, kinds = unpack_tokens(tokens)
        trace = ReferenceTrace(addresses=addrs, kinds=kinds)
        path = tmp_path / "t.ptrc"
        from_reference_trace(trace, path, chunk_tokens=128)
        with TraceContainer(path) as container:
            back = container.reference_trace()
            assert np.array_equal(back.addresses, addrs)
            assert np.array_equal(back.kinds, kinds)
            counts = container.counts()
        assert counts == trace.counts()

    def test_unknown_codec_is_typed_error(self, tmp_path):
        with pytest.raises(TraceContainerError):
            ContainerWriter(tmp_path / "t.ptrc", codec="lz4")

    def test_zstd_gated_when_absent(self, tmp_path):
        if "zstd" in available_codecs():
            pytest.skip("zstd backend available in this environment")
        with pytest.raises(TraceContainerError):
            ContainerWriter(tmp_path / "t.ptrc", codec="zstd")

    def test_corrupt_payload_is_typed_error(self, tmp_path):
        path = tmp_path / "t.ptrc"
        write_container(random_tokens(200, seed=9), path, chunk_tokens=64)
        data = bytearray(path.read_bytes())
        data[80] ^= 0xFF    # inside the first compressed payload
        path.write_bytes(bytes(data))
        with TraceContainer(path) as container:
            with pytest.raises(TraceContainerError):
                container.verify(deep=True)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(0, 200), chunk_tokens=st.integers(1, 64),
           codec=st.sampled_from(CODECS), seed=st.integers(0, 2**16))
    def test_round_trip_property(self, tmp_path_factory, n, chunk_tokens,
                                 codec, seed):
        tokens = random_tokens(n, seed=seed)
        path = tmp_path_factory.mktemp("prop") / "t.ptrc"
        write_container(tokens, path, codec=codec,
                        chunk_tokens=chunk_tokens)
        with TraceContainer(path) as container:
            assert np.array_equal(container.tokens_array(), tokens)
            container.verify(deep=True)


# ----------------------------------------------------------------------
# Out-of-core kernels: chunk streams are bit-identical to whole traces
# ----------------------------------------------------------------------

CONFIG_GRID = [
    CacheConfig(size=2048, line_size=16, associativity=1),
    CacheConfig(size=2048, line_size=16, associativity=4),
    CacheConfig(size=4096, line_size=32, associativity=2,
                policy=POLICY_FIFO),
    CacheConfig(size=2048, line_size=16, associativity=4,
                write_policy=WRITE_THROUGH),
    CacheConfig(size=2048, line_size=16, associativity=2,
                write_allocate=False),
]


class TestOutOfCoreKernels:
    @pytest.mark.parametrize("config", CONFIG_GRID)
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 1000])
    def test_simulate_chunked_bit_identical(self, config, chunk_size):
        addrs, writes = random_accesses(3000, seed=config.associativity)
        whole = simulate(addrs, config, writes=writes)
        parts = list(zip(chunked(addrs, chunk_size),
                         chunked(writes, chunk_size)))
        assert simulate(iter(parts), config) == whole

    def test_write_free_chunks_keep_dirty_state(self):
        # A dirty line from chunk 0 must still cost a writeback when
        # evicted in a later all-read chunk (and at the final flush).
        config = CacheConfig(size=512, line_size=16, associativity=1,
                             write_policy=WRITE_BACK)
        addrs = np.array([0x0, 0x1000, 0x0, 0x1000] * 8, dtype=np.uint32)
        writes = np.zeros(len(addrs), dtype=bool)
        writes[:2] = True
        whole = simulate(addrs, config, writes=writes)
        parts = [(addrs[:2], writes[:2])] + \
            [(a, None) for a in chunked(addrs[2:], 3)]
        assert simulate(iter(parts), config) == whole

    def test_simulate_auto_random_policy_streams(self):
        addrs, writes = random_accesses(800, seed=4)
        config = CacheConfig(size=1024, line_size=16, associativity=4,
                             policy=POLICY_RANDOM)
        whole = simulate_auto(addrs, config, writes=writes)
        parts = list(zip(chunked(addrs, 97), chunked(writes, 97)))
        assert simulate_auto(iter(parts), config) == whole

    def test_lru_hit_depths_chunked(self):
        addrs, _ = random_accesses(2000, seed=5)
        lines = to_line_addresses(addrs, 16)
        whole_hist, whole_cold = lru_hit_depths(lines, 32, 8)
        hist, cold = lru_hit_depths(iter(chunked(lines, 111)), 32, 8)
        assert np.array_equal(hist, whole_hist) and cold == whole_cold

    def test_family_stats_chunked(self):
        addrs, writes = random_accesses(1500, seed=6)
        lines = to_line_addresses(addrs, 16)
        whole = lru_family_stats(lines, writes, 16, (1, 2, 4))
        parts = list(zip(chunked(lines, 64), chunked(writes, 64)))
        assert lru_family_stats(iter(parts), None, 16, (1, 2, 4)) == whole

    def test_kernel_misses_chunked(self):
        addrs, _ = random_accesses(1500, seed=8)
        lines = to_line_addresses(addrs, 32)
        whole = kernel_misses_by_associativity(lines, 16, (1, 2, 8))
        parts = iter(chunked(lines, 190))
        assert kernel_misses_by_associativity(parts, 16, (1, 2, 8)) == whole

    def test_container_simulate_matches_in_ram(self, tmp_path):
        tokens = random_tokens(4000, seed=11)
        path = tmp_path / "t.ptrc"
        write_container(tokens, path, chunk_tokens=256)
        addrs, kinds = unpack_tokens(tokens)
        trace = ReferenceTrace(addresses=addrs, kinds=kinds).memory_only()
        config = CacheConfig(size=2048, line_size=16, associativity=2)
        whole = simulate(trace.addresses, config, writes=trace.is_write)
        with TraceContainer(path) as container:
            assert simulate(container.cache_chunks(), config) == whole

    def test_sweep_container_matches_in_ram(self, tmp_path):
        tokens = random_tokens(3000, seed=13)
        path = tmp_path / "t.ptrc"
        write_container(tokens, path, chunk_tokens=500)
        addrs, kinds = unpack_tokens(tokens)
        trace = ReferenceTrace(addresses=addrs, kinds=kinds).memory_only()
        sizes = (1024, 2048)
        in_ram = sweep_parallel(trace.addresses, sizes=sizes,
                                line_sizes=(16, 32),
                                associativities=(1, 2))
        streamed = sweep_parallel(container=path, sizes=sizes,
                                  line_sizes=(16, 32),
                                  associativities=(1, 2))
        assert [(p.config, p.misses) for p in streamed] == \
            [(p.config, p.misses) for p in in_ram]

    def test_sweep_rejects_both_sources(self, tmp_path):
        with pytest.raises(ValueError):
            sweep_parallel(np.zeros(4, dtype=np.uint32),
                           container=tmp_path / "t.ptrc")


# ----------------------------------------------------------------------
# Torn containers and salvage
# ----------------------------------------------------------------------

class TestTornSalvage:
    def build(self, tmp_path, n_chunks=10, chunk_tokens=100):
        tokens = random_tokens(n_chunks * chunk_tokens, seed=n_chunks)
        path = tmp_path / "whole.ptrc"
        write_container(tokens, path, chunk_tokens=chunk_tokens)
        return path, tokens

    def test_torn_tail_refuses_open_then_salvages(self, tmp_path):
        path, tokens = self.build(tmp_path)
        data = path.read_bytes()
        torn = tmp_path / "torn.ptrc"
        # Cut inside the last chunk's payload (well before the footer).
        entries, problems, _ = scan_frames(path)
        assert not problems
        torn.write_bytes(data[:entries[-1]["offset"] + 10])
        with pytest.raises(TraceContainerError):
            TraceContainer(torn)
        out = tmp_path / "recovered.ptrc"
        manifest, recovery = recover_container(torn, out)
        assert recovery["chunks_kept"] == 9
        assert recovery["problems"][0]["code"] == "torn-chunk"
        with TraceContainer(out) as container:
            assert np.array_equal(container.tokens_array(), tokens[:900])
            container.verify(deep=True)

    def test_garbage_is_unrecoverable(self, tmp_path):
        path = tmp_path / "junk.ptrc"
        path.write_bytes(b"not a container" * 10)
        with pytest.raises(TraceContainerError):
            recover_container(path, tmp_path / "out.ptrc")

    def test_resilience_wrapper_reports_findings(self, tmp_path):
        from repro.resilience import salvage_container

        path, _ = self.build(tmp_path, n_chunks=4)
        entries, _, _ = scan_frames(path)
        torn = tmp_path / "torn.ptrc"
        torn.write_bytes(path.read_bytes()[:entries[1]["offset"] + 10])
        result = salvage_container(torn, tmp_path / "rec.ptrc")
        assert result.chunks_kept >= 1
        assert not result.clean
        assert result.report.ok          # torn tail is warning severity
        codes = [f.code for f in result.report.findings]
        assert "torn-chunk" in codes or "torn-frame-header" in codes

    def test_resilience_wrapper_strict_and_fatal(self, tmp_path):
        from repro.resilience import salvage_container

        path = tmp_path / "junk.ptrc"
        path.write_bytes(b"\xff" * 64)
        result = salvage_container(path, tmp_path / "rec.ptrc")
        assert result.tokens_kept == 0 and not result.report.ok
        with pytest.raises(TraceContainerError):
            salvage_container(path, tmp_path / "rec2.ptrc", strict=True)


# ----------------------------------------------------------------------
# Multi-session archives
# ----------------------------------------------------------------------

class TestArchive:
    def test_members_chain_and_verify(self, tmp_path):
        root = tmp_path / "arch"
        archive = TraceArchive(root, create=True, meta={"campaign": "t"})
        all_tokens = []
        for i in range(3):
            tokens = random_tokens(250 + i, seed=20 + i)
            member_path = root / f"s{i}.ptrc"
            write_container(tokens, member_path, chunk_tokens=64)
            archive.add(member_path, f"s{i}")
            all_tokens.append(tokens)
        expected = np.concatenate(all_tokens)
        reopened = TraceArchive(root)
        assert reopened.total_tokens == len(expected)
        assert np.array_equal(np.concatenate(list(reopened.chunks())),
                              expected)
        reopened.verify(deep=True)
        # The archive streams through the same kernel path as one trace.
        addrs, kinds = unpack_tokens(expected)
        trace = ReferenceTrace(addresses=addrs, kinds=kinds).memory_only()
        config = CacheConfig(size=1024, line_size=16, associativity=2)
        whole = simulate(trace.addresses, config, writes=trace.is_write)
        assert simulate(reopened.cache_chunks(), config) == whole

    def test_member_digest_mismatch_detected(self, tmp_path):
        root = tmp_path / "arch"
        archive = TraceArchive(root, create=True)
        member = root / "s0.ptrc"
        write_container(random_tokens(100, seed=1), member)
        archive.add(member, "s0")
        write_container(random_tokens(100, seed=2), member)  # swapped
        with pytest.raises(TraceContainerError):
            TraceArchive(root).verify()

    def test_open_chunk_source_dispatch(self, tmp_path):
        root = tmp_path / "arch"
        TraceArchive(root, create=True)
        assert isinstance(open_chunk_source(root), TraceArchive)
        path = tmp_path / "t.ptrc"
        write_container(random_tokens(10), path)
        src = open_chunk_source(path)
        assert isinstance(src, TraceContainer)
        src.close()


# ----------------------------------------------------------------------
# Profiler streaming (trace sink, spill, counts without materializing)
# ----------------------------------------------------------------------

class TestProfilerStreaming:
    def fill(self, profiler, tokens):
        for block in chunked(tokens, 333):
            profiler.bulk_references(block)

    def test_counts_dict_matches_reference_trace(self):
        profiler = Profiler()
        self.fill(profiler, random_tokens(5000, seed=31))
        trace = profiler.reference_trace()
        assert profiler.counts_dict() == trace.counts()
        assert profiler.counts_dict(memory_only=True) == \
            trace.memory_only().counts()

    def test_chunks_stream_equals_packed(self):
        profiler = Profiler()
        tokens = random_tokens(3000, seed=32)
        self.fill(profiler, tokens)
        assert np.array_equal(np.concatenate(list(profiler.chunks())),
                              tokens)

    def test_sink_receives_whole_trace(self, tmp_path):
        tokens = random_tokens(2000, seed=33)
        path = tmp_path / "sink.ptrc"
        profiler = Profiler()
        self.fill(profiler, tokens[:500])          # buffered pre-attach
        with ContainerWriter(path, chunk_tokens=256) as writer:
            profiler.attach_trace_sink(writer)
            self.fill(profiler, tokens[500:])
            profiler.flush_trace_sink()
        with TraceContainer(path) as container:
            assert np.array_equal(container.tokens_array(), tokens)
        # No spill: the in-RAM accessors still work.
        assert np.array_equal(profiler.reference_trace().addresses,
                              unpack_tokens(tokens)[0])

    def test_spill_bounds_memory_and_guards_accessors(self, tmp_path):
        tokens = random_tokens(2000, seed=34)
        path = tmp_path / "spill.ptrc"
        profiler = Profiler()
        with ContainerWriter(path, chunk_tokens=256) as writer:
            profiler.attach_trace_sink(writer, spill=True)
            self.fill(profiler, tokens)
            profiler.flush_trace_sink()
        assert profiler._chunks == []              # nothing retained
        with pytest.raises(RuntimeError):
            profiler.reference_trace()
        # Counts survive the spill (they come from the flat counters).
        with TraceContainer(path) as container:
            assert np.array_equal(container.tokens_array(), tokens)
            assert profiler.counts_dict() == \
                container.reference_trace().counts()


# ----------------------------------------------------------------------
# Dinero interchange (vectorized writer, streaming reader/converters)
# ----------------------------------------------------------------------

class TestDineroStreaming:
    def test_writer_byte_identical_to_per_line_format(self, tmp_path):
        rng = np.random.default_rng(41)
        addrs = rng.integers(0, 1 << 32, size=5000,
                             dtype=np.uint64).astype(np.uint32)
        addrs[:3] = [0, 1, 0xFFFFFFFF]
        kinds = rng.choice([KIND_FETCH, KIND_READ, KIND_WRITE],
                           size=5000).astype(np.uint8)
        trace = ReferenceTrace(addresses=addrs, kinds=kinds)
        path = tmp_path / "t.din"
        write_dinero(trace, path)
        label = {KIND_READ: 0, KIND_WRITE: 1, KIND_FETCH: 2}
        expected = "".join(f"{label[int(k)]} {int(a):x}\n"
                           for a, k in zip(addrs, kinds))
        assert path.read_bytes() == expected.encode()

    def test_unmappable_kind_raises(self, tmp_path):
        with pytest.raises(DineroFormatError):
            write_dinero_chunks(tmp_path / "x.din",
                               [(np.array([1], dtype=np.uint32),
                                 np.array([0x0F], dtype=np.uint8))])

    def test_dinero_container_round_trip_streams(self, tmp_path):
        rng = np.random.default_rng(42)
        addrs = rng.integers(0, 1 << 27, size=3000,
                             dtype=np.uint64).astype(np.uint32)
        kinds = rng.choice([KIND_FETCH, KIND_READ, KIND_WRITE],
                           size=3000).astype(np.uint8)
        din = tmp_path / "t.din"
        write_dinero(ReferenceTrace(addresses=addrs, kinds=kinds), din)
        ptrc = tmp_path / "t.ptrc"
        manifest = dinero_to_container(din, ptrc, chunk_tokens=512)
        assert manifest["tokens"] == 3000
        din2 = tmp_path / "t2.din"
        assert container_to_dinero(ptrc, din2) == 3000
        assert din2.read_bytes() == din.read_bytes()
        # The container carries the synthesized regions the reader adds.
        back = read_dinero(din)
        with TraceContainer(ptrc) as container:
            trace = container.reference_trace()
            assert np.array_equal(trace.addresses, back.addresses)
            assert np.array_equal(trace.kinds, back.kinds)


# ----------------------------------------------------------------------
# Replay + fleet integration
# ----------------------------------------------------------------------

def collect_tiny_session():
    from repro.apps import standard_apps
    from repro.workloads.gremlins import (
        GremlinConfig,
        Gremlins,
        derive_entropy_seed,
    )
    from repro.workloads.sessions import collect_session

    apps = [a for a in standard_apps() if a.name in ("launcher", "memopad")]
    script = Gremlins(5, GremlinConfig(events=40)).build_script()
    return apps, collect_session(
        apps, script, name="tiny",
        entropy_seed=derive_entropy_seed(5, apps, 40),
        ram_size=8 << 20, default_app="launcher")


@pytest.mark.slow
class TestReplayTraceOut:
    def test_streamed_and_checkpointed_replays_share_digest(self, tmp_path):
        """--trace-out interop: a spilling plain replay and a
        checkpointing resilient replay produce digest-identical
        containers for the same session."""
        from repro.emulator import replay_session
        from repro.resilience import resilient_replay
        from repro.workloads.sessions import CollectedSession

        apps, session = collect_tiny_session()
        # Replay mutates state in place; give each replay a fresh copy
        # via the serialization round trip (the CLI's load-from-disk).
        bundle = session.to_json()
        streamed = tmp_path / "streamed.ptrc"
        first = CollectedSession.from_json(bundle)
        with ContainerWriter(streamed) as writer:
            _, profiler, _ = replay_session(
                first.initial_state, first.log, apps=apps,
                emulator_kwargs={"ram_size": 8 << 20,
                                 "flash_size": 1 << 20},
                trace_sink=writer, trace_spill=True)
            assert profiler._spilled_tokens > 0
        second = CollectedSession.from_json(bundle)
        outcome = resilient_replay(
            second.initial_state, second.log, apps=apps,
            emulator_kwargs={"ram_size": 8 << 20, "flash_size": 1 << 20},
            checkpoint_every=2000)
        drained = tmp_path / "drained.ptrc"
        with ContainerWriter(drained) as writer:
            for chunk in outcome.profiler.chunks():
                writer.append_tokens(chunk)
        with TraceContainer(streamed) as a, TraceContainer(drained) as b:
            assert a.digest == b.digest
            assert a.tokens > 0


@pytest.mark.slow
class TestFleetTraceArchive:
    SPEC = dict(
        app_mixes=(("launcher", "memopad"),),
        behaviors=("gremlins",),
        durations=(0.01,),
        caches=((8192, 32, 4),),
        archive_traces=True,
    )

    def test_campaign_archives_and_resume_verifies(self, tmp_path):
        from repro.fleet import CampaignSpec, JournalError, run_campaign
        from repro.fleet.journal import JOURNAL_NAME, read_journal

        spec = CampaignSpec(name="tr", sessions=2, seed=23, **self.SPEC)
        out = tmp_path / "camp"
        result = run_campaign(spec, out)
        assert result.complete and result.completed == 2
        digests = {}
        for entry in read_journal(out / JOURNAL_NAME):
            if entry["kind"] == "done":
                digests[entry["id"]] = entry["stats"]["trace_digest"]
        assert len(digests) == 2
        for session_id, digest in digests.items():
            with TraceContainer(out / "traces"
                                / f"{session_id}.ptrc") as container:
                assert container.digest == digest
                container.verify(deep=True)
        # Clean resume re-verifies and runs nothing.
        resumed = run_campaign(spec, out, resume=True)
        assert resumed.ran == 0 and resumed.complete
        # Payload corruption (digest in the footer untouched) must
        # still fail the resume: the check is deep.
        victim = out / "traces" / "s00000.ptrc"
        data = bytearray(victim.read_bytes())
        data[60] ^= 0xFF
        victim.write_bytes(bytes(data))
        with pytest.raises(JournalError):
            run_campaign(spec, out, resume=True)
        # A missing member fails too.
        victim.unlink()
        with pytest.raises(JournalError):
            run_campaign(spec, out, resume=True)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------

class TestCliTrace:
    def make_container(self, tmp_path, n=500, seed=51):
        path = tmp_path / "t.ptrc"
        write_container(random_tokens(n, seed=seed), path,
                        chunk_tokens=128)
        return path

    def test_info_verify_cat(self, tmp_path, capsys):
        from repro.cli import main

        path = self.make_container(tmp_path)
        assert main(["trace", "info", str(path)]) == 0
        out = capsys.readouterr().out
        assert "500" in out and "zlib" in out
        assert main(["trace", "verify", str(path)]) == 0
        assert "verify OK" in capsys.readouterr().out
        assert main(["trace", "cat", str(path), "--limit", "3"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 3

    def test_convert_matrix(self, tmp_path, capsys):
        from repro.cli import main

        ptrc = self.make_container(tmp_path)
        npz = tmp_path / "t.npz"
        assert main(["trace", "convert", str(ptrc), str(npz)]) == 0
        back = tmp_path / "back.ptrc"
        assert main(["trace", "convert", str(npz), str(back)]) == 0
        with TraceContainer(ptrc) as a, TraceContainer(back) as b:
            assert a.digest == b.digest
        din = tmp_path / "t.din"
        assert main(["trace", "convert", str(ptrc), str(din)]) == 0
        assert din.stat().st_size > 0

    def test_verify_salvage_recovers_prefix(self, tmp_path, capsys):
        from repro.cli import main

        path = self.make_container(tmp_path)
        entries, _, _ = scan_frames(path)
        torn = tmp_path / "torn.ptrc"
        torn.write_bytes(path.read_bytes()[:entries[2]["offset"] + 30])
        rec = tmp_path / "rec.ptrc"
        assert main(["trace", "verify", str(torn),
                     "--salvage", str(rec)]) == 0
        assert "recovered" in capsys.readouterr().out
        with TraceContainer(rec) as container:
            container.verify(deep=True)
            assert container.tokens > 0
