"""Tests for the extension modules: Gremlins fuzzing, trace sampling,
and the instruction-level energy model."""

import numpy as np
import pytest

from repro.analysis import (
    OPCODE_CLASS_ENERGY,
    classify_opcode,
    instruction_energy,
)
from repro.cache import (
    CacheConfig,
    estimate_miss_rate,
    full_miss_rate,
    sample_intervals,
    sampling_error_study,
)
from repro.traces import generate_desktop_trace
from repro.workloads import GremlinConfig, Gremlins, gremlin_session

EMU_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}


class TestGremlins:
    def test_script_deterministic_per_seed(self):
        a = Gremlins(7).build_script()
        b = Gremlins(7).build_script()
        assert a.actions == b.actions
        assert Gremlins(8).build_script().actions != a.actions

    def test_script_respects_screen_bounds(self):
        script = Gremlins(3, GremlinConfig(events=100)).build_script()
        for _, kind, args in script.actions:
            if kind in ("pen_down", "pen_move"):
                assert 0 <= args[0] < 160 and 0 <= args[1] < 160

    def test_pen_state_machine_well_formed(self):
        script = Gremlins(5, GremlinConfig(events=80)).build_script()
        depth = 0
        for _, kind, _ in sorted(script.actions, key=lambda a: a[0]):
            if kind == "pen_down":
                assert depth == 0
                depth = 1
            elif kind == "pen_up":
                assert depth == 1
                depth = 0
        assert depth == 0

    def test_gremlin_session_survives_and_replays(self):
        """The torture run must neither crash the kernel nor break the
        deterministic replay property."""
        from repro import replay_session, standard_apps
        from repro.tracelog import read_activity_log

        session = gremlin_session(seed=42, events=60,
                                  ram_size=EMU_KW["ram_size"])
        assert session.events > 0
        emulator, _, _ = replay_session(
            session.initial_state, session.log, apps=standard_apps(),
            profile=False, emulator_kwargs=EMU_KW)
        original = [(r.type, r.tick, r.data) for r in session.log]
        replayed = [(r.type, r.tick, r.data)
                    for r in read_activity_log(emulator.kernel)]
        assert replayed == original


class TestTraceSampling:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_desktop_trace(400_000, seed=12)

    CONFIG = CacheConfig(8192, 16, 2)

    def test_intervals_cover_requested_shape(self):
        slices = sample_intervals(1_000_000, 10, 20_000)
        assert len(slices) == 10
        assert all(s.stop - s.start == 20_000 for s in slices)

    def test_small_trace_collapses_to_full(self):
        slices = sample_intervals(1_000, 10, 500)
        assert slices == [slice(0, 1_000)]

    def test_cold_start_biases_upward(self, trace):
        """Wood/Hill/Kessler's effect: cold intervals over-estimate."""
        study = sampling_error_study(trace, self.CONFIG,
                                     num_samples=8, sample_length=20_000)
        cold_rate, cold_err = study["cold"]
        assert cold_rate >= study["full"]
        assert cold_err > 0

    def test_warmup_discard_reduces_bias(self, trace):
        study = sampling_error_study(trace, self.CONFIG,
                                     num_samples=8, sample_length=20_000)
        _, cold_err = study["cold"]
        _, discard_err = study["discard"]
        assert abs(discard_err) < abs(cold_err)

    def test_continuous_close_to_truth(self, trace):
        study = sampling_error_study(trace, self.CONFIG,
                                     num_samples=8, sample_length=20_000)
        _, continuous_err = study["continuous"]
        assert abs(continuous_err) < 0.5

    def test_estimate_counts_refs(self, trace):
        estimate = estimate_miss_rate(trace, self.CONFIG, num_samples=4,
                                      sample_length=10_000, policy="cold")
        assert estimate.sampled_refs == 40_000
        assert 0 <= estimate.estimated_miss_rate <= 1

    def test_full_rate_matches_direct_simulation(self, trace):
        from repro.cache import Cache
        cache = Cache(self.CONFIG)
        cache.run(trace[:50_000])
        assert full_miss_rate(trace[:50_000], self.CONFIG) == pytest.approx(
            cache.stats.miss_rate)


class TestInstructionEnergy:
    def test_classification(self):
        assert classify_opcode(0x7001) == "move"      # moveq
        assert classify_opcode(0x2200) == "move"      # move.l
        assert classify_opcode(0xD081) == "alu"       # add.l
        assert classify_opcode(0xE388) == "shift"     # lsl.l
        assert classify_opcode(0xC0C1) == "mul"       # mulu
        assert classify_opcode(0x80C1) == "div"       # divu
        assert classify_opcode(0x6604) == "branch"    # bne
        assert classify_opcode(0x4E75) == "control"   # rts
        assert classify_opcode(0xA033) == "system"    # A-line
        assert classify_opcode(0xF123) == "system"    # F-line

    def test_all_classes_have_energies(self):
        for op in (0x7001, 0xD081, 0xE388, 0xC0C1, 0x80C1, 0x6604,
                   0x4E75, 0xA033, 0x4280):
            assert classify_opcode(op) in OPCODE_CLASS_ENERGY

    def test_histogram_aggregation(self):
        histogram = np.zeros(0x10000, dtype=np.uint64)
        histogram[0x7001] = 100     # moves: 100 * 1.0
        histogram[0x80C1] = 10      # divides: 10 * 9.0
        result = instruction_energy(histogram)
        assert result["instructions"] == 110
        assert result["total"] == pytest.approx(100 * 1.0 + 10 * 9.0)
        assert result["by_class"] == {"move": 100, "div": 10}

    def test_profiler_histogram_feeds_model(self):
        from repro import replay_session, standard_apps
        from repro.workloads import UserScript, collect_session
        from repro.device import Button

        script = (UserScript().at(80).press(Button.DATEBOOK).wait(60)
                  .tap(50, 10).wait(30))
        session = collect_session(standard_apps(), script,
                                  ram_size=EMU_KW["ram_size"])
        _, profiler, _ = replay_session(session.initial_state, session.log,
                                        apps=standard_apps(),
                                        emulator_kwargs=EMU_KW)
        result = instruction_energy(profiler.opcode_histogram())
        assert result["instructions"] == profiler.instructions
        assert result["total"] > 0
        assert "move" in result["by_class"]