"""Differential tests for the vectorized cache kernels and the
parallel sweep engine.

The vectorized paths are trusted only because they match the scalar
reference simulator byte for byte: hypothesis drives randomized traces
through every policy/write-mode combination and compares whole
``CacheStats``; the parallel sweep must return identical points for
any job count and must never leak shared-memory segments, even when a
worker dies.
"""

import glob

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    Cache,
    CacheConfig,
    KernelUnsupported,
    POLICY_FIFO,
    POLICY_LRU,
    POLICY_RANDOM,
    WRITE_BACK,
    WRITE_THROUGH,
    kernel_misses_by_associativity,
    lru_depth_histogram,
    lru_family_stats,
    lru_hit_depths,
    misses_by_associativity,
    simulate,
    simulate_auto,
    sweep_paper_grid,
    sweep_parallel,
    to_line_addresses,
)
import repro.cache.sweep as sweep_module

STAT_FIELDS = ("accesses", "hits", "misses", "writebacks",
               "write_throughs")


def scalar_stats(addresses, config, writes=None, flush=False, seed=0):
    cache = Cache(config, rng_seed=seed)
    cache.run(np.asarray(addresses),
              None if writes is None else np.asarray(writes))
    if flush:
        cache.flush_dirty()
    return cache.stats


def assert_stats_equal(expected, got, context=""):
    for field in STAT_FIELDS:
        assert getattr(expected, field) == getattr(got, field), (
            f"{context}: {field}: scalar {getattr(expected, field)} "
            f"!= kernel {getattr(got, field)}")


configs = st.builds(
    CacheConfig,
    size=st.sampled_from([256, 1024, 8192]),
    line_size=st.sampled_from([16, 32]),
    associativity=st.sampled_from([1, 2, 4]),
    policy=st.sampled_from([POLICY_LRU, POLICY_FIFO]),
    write_policy=st.sampled_from([WRITE_THROUGH, WRITE_BACK]),
    write_allocate=st.booleans(),
)

traces = st.lists(st.tuples(st.integers(0, 0x7FFF), st.booleans()),
                  min_size=0, max_size=400)


class TestKernelDifferential:
    @settings(max_examples=120, deadline=None)
    @given(config=configs, trace=traces, flush=st.booleans(),
           tail_width=st.sampled_from([0, 3, 10 ** 9]))
    def test_matches_scalar_cache(self, config, trace, flush, tail_width):
        """Byte-for-byte CacheStats equality, on the wave path
        (tail_width 0), the scalar drain path (huge tail_width), and
        the mixed default."""
        addresses = np.array([a for a, _ in trace], dtype=np.uint32)
        writes = np.array([w for _, w in trace], dtype=bool)
        expected = scalar_stats(addresses, config, writes, flush)
        got = simulate(addresses, config, writes=writes, flush=flush,
                       tail_width=tail_width)
        assert_stats_equal(expected, got, context=config.label())

    @settings(max_examples=40, deadline=None)
    @given(config=configs, trace=traces)
    def test_read_only_matches(self, config, trace):
        addresses = np.array([a for a, _ in trace], dtype=np.uint32)
        expected = scalar_stats(addresses, config)
        got = simulate(addresses, config)
        assert_stats_equal(expected, got, context=config.label())

    @settings(max_examples=40, deadline=None)
    @given(trace=traces, flush=st.booleans())
    def test_auto_falls_back_for_random_policy(self, trace, flush):
        config = CacheConfig(512, 16, 4, policy=POLICY_RANDOM)
        addresses = np.array([a for a, _ in trace], dtype=np.uint32)
        writes = np.array([w for _, w in trace], dtype=bool)
        expected = scalar_stats(addresses, config, writes, flush, seed=7)
        got = simulate_auto(addresses, config, writes=writes, flush=flush,
                            rng_seed=7)
        assert_stats_equal(expected, got)

    def test_random_policy_raises_kernel_unsupported(self):
        config = CacheConfig(512, 16, 4, policy=POLICY_RANDOM)
        with pytest.raises(KernelUnsupported):
            simulate(np.arange(10, dtype=np.uint32), config)

    def test_int64_addresses_accepted(self):
        config = CacheConfig(1024, 16, 2)
        addresses = np.array([0, 16, 4096, 0, 16], dtype=np.int64)
        expected = scalar_stats(addresses, config)
        assert_stats_equal(expected, simulate(addresses, config))

    @settings(max_examples=60, deadline=None)
    @given(lines=st.lists(st.integers(0, 2047), max_size=300),
           num_sets=st.sampled_from([1, 4, 64]),
           max_depth=st.sampled_from([1, 3, 8]),
           tail_width=st.sampled_from([0, 3, 10 ** 9]))
    def test_depth_histogram_matches_scalar(self, lines, num_sets,
                                            max_depth, tail_width):
        arr = np.array(lines, dtype=np.uint32)
        hist_ref, cold_ref = lru_depth_histogram(
            arr.astype(np.int64), num_sets, max_depth)
        hist, cold = lru_hit_depths(arr, num_sets, max_depth,
                                    tail_width=tail_width)
        assert np.array_equal(np.asarray(hist_ref), hist)
        assert cold == cold_ref

    def test_misses_by_associativity_matches(self):
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1 << 18, 5000, dtype=np.uint64)
        lines = to_line_addresses(addrs.astype(np.uint32), 16)
        ref = misses_by_associativity(lines, 64, [1, 2, 4, 8])
        got = kernel_misses_by_associativity(lines, 64, [1, 2, 4, 8])
        assert ref == got


class TestFamilyStats:
    @settings(max_examples=30, deadline=None)
    @given(trace=traces, num_sets=st.sampled_from([1, 8, 64]))
    def test_family_pass_matches_per_config_simulation(self, trace,
                                                       num_sets):
        """One write-aware stack pass equals 8 scalar simulations (both
        write policies x 4 associativities)."""
        addresses = np.array([a for a, _ in trace], dtype=np.uint32)
        writes = np.array([w for _, w in trace], dtype=bool)
        line = 16
        family = lru_family_stats(to_line_addresses(addresses, line),
                                  writes, num_sets, [1, 2, 4, 8])
        for assoc, fam in family.items():
            for write_policy in (WRITE_BACK, WRITE_THROUGH):
                config = CacheConfig(size=num_sets * line * assoc,
                                     line_size=line, associativity=assoc,
                                     write_policy=write_policy)
                expected = scalar_stats(addresses, config, writes)
                assert (fam.accesses, fam.hits, fam.misses) == (
                    expected.accesses, expected.hits, expected.misses)
                if write_policy == WRITE_BACK:
                    assert fam.writebacks == expected.writebacks
                else:
                    assert fam.write_throughs == expected.write_throughs


def _shm_segments():
    return set(glob.glob("/dev/shm/psm_*"))


def _boom(unit):
    # Module-level so the pool can pickle it by name into workers.
    raise RuntimeError("injected worker failure")


class TestSweepParallel:
    def _trace(self, n=40_000):
        rng = np.random.default_rng(5)
        # Mix of sequential runs and random jumps, session-style.
        jumps = rng.integers(0, 1 << 20, n // 8, dtype=np.uint64)
        addrs = (np.repeat(jumps, 8) +
                 2 * np.tile(np.arange(8, dtype=np.uint64), n // 8))
        return addrs.astype(np.uint32)

    def test_matches_previous_engine(self):
        addresses = self._trace()
        ref = sweep_paper_grid(addresses)
        got = sweep_parallel(addresses, jobs=1)
        assert [(p.config, p.accesses, p.misses) for p in ref] == \
               [(p.config, p.accesses, p.misses) for p in got]

    def test_deterministic_jobs_1_vs_4(self):
        addresses = self._trace()
        p1 = sweep_parallel(addresses, jobs=1)
        p4 = sweep_parallel(addresses, jobs=4)
        assert [(p.config, p.accesses, p.misses) for p in p1] == \
               [(p.config, p.accesses, p.misses) for p in p4]

    def test_config_mode_deterministic_and_exact(self):
        addresses = self._trace(8_000)
        writes = np.random.default_rng(6).random(len(addresses)) < 0.3
        cfgs = [
            CacheConfig(8192, 16, 4, policy=POLICY_FIFO,
                        write_policy=WRITE_BACK),
            CacheConfig(8192, 16, 4, policy=POLICY_RANDOM),
            CacheConfig(4096, 32, 2, write_policy=WRITE_BACK,
                        write_allocate=False),
        ]
        p1 = sweep_parallel(addresses, writes=writes, configs=cfgs, jobs=1)
        p4 = sweep_parallel(addresses, writes=writes, configs=cfgs, jobs=4)
        for a, b in zip(p1, p4):
            assert (a.accesses, a.misses, a.writebacks,
                    a.write_throughs) == (b.accesses, b.misses,
                                          b.writebacks, b.write_throughs)
        for config, point in zip(cfgs, p1):
            expected = scalar_stats(addresses, config, writes)
            assert (point.misses, point.writebacks,
                    point.write_throughs) == (expected.misses,
                                              expected.writebacks,
                                              expected.write_throughs)

    def test_no_leaked_segments_after_success(self):
        before = _shm_segments()
        sweep_parallel(self._trace(8_000), jobs=2)
        assert _shm_segments() == before

    def test_no_leaked_segments_after_worker_raises(self, monkeypatch):
        """A worker exception propagates and the shared trace segments
        are still unlinked (workers are forked, so the monkeypatched
        unit function crosses into them)."""

        monkeypatch.setattr(sweep_module, "_family_unit", _boom)
        before = _shm_segments()
        with pytest.raises(RuntimeError, match="injected worker failure"):
            sweep_parallel(self._trace(8_000), jobs=2)
        assert _shm_segments() == before

    def test_serial_fallback_used_for_single_job(self, monkeypatch):
        """jobs=1 must not touch multiprocessing at all."""

        def no_pool(*a, **k):
            raise AssertionError("Pool should not be created for jobs=1")

        import multiprocessing

        monkeypatch.setattr(multiprocessing, "get_context", no_pool)
        points = sweep_parallel(self._trace(8_000), jobs=1)
        assert len(points) == 56
