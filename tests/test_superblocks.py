"""Superblock replay-core edge cases.

The fast core chains basic blocks across unconditional branches into
superblocks and compiles hot ones to fused bodies; these tests pin the
hazardous seams the generic differential suite (test_fastcore) is
unlikely to hit by chance:

* self-modifying code that patches the *middle* chunk of a chained
  superblock (past the unconditional branch the chain crossed);
* suspend/resume with the cycle budget landing mid-superblock — the
  split run must be bit-identical to an uninterrupted one, and a
  ``PRCKPT01`` checkpoint captured there must resume bit-identically;
* the sanitizer riding along with the fast core (fused bodies are
  gated off while shadow checking is attached);
* dataflow region facts: replays with and without the audit's fact set
  must be bit-identical (facts only elide checks, never change
  behaviour), and the facts-absent fallback is the default for bare
  devices;
* the vectorized counted-fill path (``move.w dX,(aY)+`` /
  ``subq.l #1,dZ`` / ``bne``) against the stepping core.
"""

import struct

import pytest

from repro import replay_session, standard_apps
from repro.device.device import PalmDevice
from repro.emulator import Emulator, PlaybackDriver
from repro.emulator.profiling import Profiler
from repro.workloads import UserScript, collect_session

EMU_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}
_APPS = standard_apps()

RAM_SIZE = 1 << 20
FLASH_SIZE = 1 << 16
CODE = 0x1000
STACK_TOP = 0x8000
STOP_SUPER = (0x4E72, 0x2700)


def _make_device(core, words, fuse_threshold=None):
    dev = PalmDevice(ram_size=RAM_SIZE, flash_size=FLASH_SIZE, core=core)
    mem = dev.mem
    mem.ram.write32(0, STACK_TOP)
    mem.ram.write32(4, CODE)
    mem.ram.load(CODE, b"".join(struct.pack(">H", w & 0xFFFF)
                                for w in words))
    dev.cpu.reset()
    prof = Profiler(trace_references=True)
    mem.tracer = prof
    dev.cpu.opcode_hook = prof.opcode
    if fuse_threshold is not None and hasattr(dev.core, "fuse_threshold"):
        dev.core.fuse_threshold = fuse_threshold
    return dev, prof


def _run_words(core, words, cycle_limit=200_000, fuse_threshold=None):
    dev, prof = _make_device(core, words, fuse_threshold)
    fault = None
    try:
        dev._run_cpu_until_cycles(dev.cpu.cycles + cycle_limit)
    except Exception as exc:
        fault = (type(exc).__name__, str(exc))
    return dev, prof, fault


def _state(dev, prof):
    cpu = dev.cpu
    return (tuple(cpu.d), tuple(cpu.a), cpu.pc, cpu.sr, cpu.stopped,
            cpu.cycles, cpu.instructions, bytes(dev.mem.ram.data),
            prof.instructions, bytes(prof.opcode_counts),
            prof.counts_bytes(), prof.trace_bytes())


def _assert_bit_exact(words, cycle_limit=200_000, fuse_threshold=None):
    dev_s, prof_s, fault_s = _run_words("simple", words, cycle_limit)
    dev_f, prof_f, fault_f = _run_words("fast", words, cycle_limit,
                                        fuse_threshold=fuse_threshold)
    assert fault_f == fault_s
    assert _state(dev_f, prof_f) == _state(dev_s, prof_s)


def _long_imm(value):
    return [(value >> 16) & 0xFFFF, value & 0xFFFF]


# ----------------------------------------------------------------------
# Self-modifying code into the middle of a chained superblock
# ----------------------------------------------------------------------
def test_smc_into_middle_of_chained_superblock():
    """The superblock chains across a ``bra.s``; the store patches an
    instruction *past* that branch — the middle chunk of the chain.
    The fast core must unlink the whole superblock and execute the
    patched word, exactly like the stepping core."""
    words = [
        0x33FC, 0x4E71, 0x0000, 0x0000,  # move.w #$4e71, (target).l
        0x6002,                          # bra.s +2: chains the blocks
        0xFFFF,                          # skipped garbage
        0x7001,                          # moveq #1, d0   (second chunk)
        0x60FE,                          # at target: bra.s self
        0x7202,                          # moveq #2, d1   (after patch)
    ]
    target = CODE + 2 * words.index(0x60FE)
    words[2:4] = _long_imm(target)
    words.extend(STOP_SUPER)
    dev_s, _, fault = _run_words("simple", words, cycle_limit=10_000)
    assert fault is None and dev_s.cpu.stopped   # the patch really lands
    assert dev_s.cpu.d[1] == 2
    _assert_bit_exact(words, cycle_limit=10_000)


def test_smc_into_middle_of_fused_superblock():
    """Same shape, but the superblock is re-entered enough to compile a
    fused body first (threshold forced to 1): the write must invalidate
    the compiled body, not just the predecoded tuples."""
    # Run the harmless chain a few times via a dbf loop, then patch it.
    words = [
        0x7603,                          # moveq #3, d3
        # loop: chained superblock (bra.s crosses into chunk 2)
        0x7001,                          # moveq #1, d0
        0x6002,                          # bra.s +2
        0xFFFF,                          # skipped garbage
        0x7202,                          # moveq #2, d1
        0x51CB, 0xFFF6,                  # dbf d3, loop (-10)
        # patch the second chunk's moveq with nop, re-enter once
        0x33FC, 0x4E71, 0x0000, 0x0000,  # move.w #$4e71, (target).l
        0x7603,                          # moveq #3, d3 -> one more pass
        0x7001, 0x6002, 0xFFFF, 0x7202,  # (same chain, now patched)
        0x51CB, 0xFFF6,                  # dbf d3, second loop
    ]
    target = CODE + 2 * 4               # the first chain's 0x7202
    idx = words.index(0x33FC) + 1
    words[idx + 1:idx + 3] = _long_imm(target)
    words.extend(STOP_SUPER)
    _assert_bit_exact(words, cycle_limit=20_000, fuse_threshold=1)


# ----------------------------------------------------------------------
# Mid-superblock suspend/resume
# ----------------------------------------------------------------------
def test_budget_split_mid_superblock_is_bit_identical():
    """Running to an intermediate cycle budget that lands inside a
    fused superblock, then continuing, must be bit-identical to one
    uninterrupted run (and to the stepping core)."""
    words = [
        0x7001,                          # moveq #1, d0
        0x223C] + _long_imm(400) + [     # move.l #400, d1
        # loop: eight ALU words then the counted backedge
        0xD240, 0x4641, 0xE359, 0x3401, 0xD240, 0x4641, 0xE359, 0x3401,
        0x5381,                          # subq.l #1, d1
        0x66EE,                          # bne.s loop (-18)
    ]
    words.extend(STOP_SUPER)
    full_limit = 60_000
    dev_ref, prof_ref, fault = _run_words("fast", words, full_limit,
                                          fuse_threshold=1)
    assert fault is None

    dev, prof = _make_device("fast", words, fuse_threshold=1)
    base = dev.cpu.cycles
    # Many small legs: the budget boundary lands mid-superblock over
    # and over, exercising every escape path's state sync.
    for frac in range(1, 20):
        dev._run_cpu_until_cycles(base + (full_limit * frac) // 20)
    dev._run_cpu_until_cycles(base + full_limit)
    assert _state(dev, prof) == _state(dev_ref, prof_ref)
    _assert_bit_exact(words, cycle_limit=full_limit, fuse_threshold=1)


def _session_script():
    script = UserScript("superblk")
    script.at(80)
    script.tap(80, 80, hold_ticks=4)
    script.wait(60)
    script.tap(20, 150, hold_ticks=3)
    script.wait(160)
    return script


@pytest.fixture(scope="module")
def session():
    return collect_session(_APPS, _session_script(), name="superblk",
                           entropy_seed=4242, ram_size=EMU_KW["ram_size"])


def test_checkpoint_mid_superblock_resumes_bit_identically(session):
    """PRCKPT01 checkpoints captured at a fine cadence (so captures
    land while superblock state is hot) must resume on the fast core
    bit-identically to the uninterrupted reference run."""
    cps = []
    emulator = Emulator(apps=_APPS, **EMU_KW, core="fast")
    emulator.load_state(session.initial_state, final_reset=False)
    emulator.start_profiling()
    driver = PlaybackDriver(emulator, session.log, checkpoint_every=40,
                            checkpoint_hook=cps.append)
    reference = driver.run(reset=True)
    assert len(cps) >= 2, "session too short for mid-run checkpoints"

    for checkpoint in (cps[0], cps[-1]):
        fresh = Emulator(apps=_APPS, **EMU_KW, core="fast")
        fresh.start_profiling()
        result = PlaybackDriver(fresh, session.log).resume_from(checkpoint)
        assert vars(result) == vars(reference)
        assert bytes(fresh.device.mem.ram.data) == \
            bytes(emulator.device.mem.ram.data)
        assert fresh.profiler.trace_bytes() == \
            emulator.profiler.trace_bytes()
        assert fresh.profiler.counts_bytes() == \
            emulator.profiler.counts_bytes()


# ----------------------------------------------------------------------
# Sanitizer interop
# ----------------------------------------------------------------------
def test_sanitizer_rides_fast_core_bit_identically(session):
    """--sanitize with the fast core: fused dispatch is gated off while
    shadow checking is attached, and every finding and statistic
    matches the stepping core."""
    outputs = {}
    for core in ("simple", "fast"):
        emulator, prof, result = replay_session(
            session.initial_state, session.log, apps=_APPS,
            emulator_kwargs={**EMU_KW, "core": core}, sanitize=True)
        findings = sorted((f.code, int(f.severity), f.address, f.block)
                          for f in emulator.sanitizer.report.sorted())
        outputs[core] = (vars(result), findings, prof.instructions,
                         prof.counts_bytes(), prof.trace_bytes())
    assert outputs["fast"] == outputs["simple"]


def test_trap_fast_table_dropped_when_sanitizer_attaches():
    """The A-line fast table is resolved while the kernel runs bare
    (boot happens before --sanitize attaches); attaching a sanitizer
    must drop it even though the handler object is unchanged, or trap
    dispatch would bypass the kernel_enter/kernel_exit brackets."""
    from repro.analysis.sanitizer import MemorySanitizer
    from repro.palmos.kernel import PalmOS

    kernel = PalmOS()
    kernel.boot()
    core = kernel.device.core
    assert core.name == "fast"
    assert core._resolve_trap_table() is not None     # bare kernel
    san = MemorySanitizer()
    san.attach(kernel)
    assert core._resolve_trap_table() is None         # brackets required
    san.detach()
    assert core._resolve_trap_table() is not None     # restored


# ----------------------------------------------------------------------
# Dataflow facts: elision is behaviour-free, absence is the fallback
# ----------------------------------------------------------------------
def test_region_facts_do_not_change_replay(session, monkeypatch):
    """Replays with the audit's fact set and with facts forced absent
    must be bit-identical: facts only remove redundant region dispatch
    from fused code, never observable behaviour."""
    from repro.emulator import playback

    outputs = {}
    for label, fn in (("facts", playback._region_facts),
                      ("absent", lambda apps, kwargs: {})):
        monkeypatch.setattr(playback, "_region_facts", fn)
        emulator, prof, result = replay_session(
            session.initial_state, session.log, apps=_APPS,
            emulator_kwargs={**EMU_KW, "core": "fast"})
        outputs[label] = (vars(result), prof.instructions,
                         prof.counts_bytes(), prof.trace_bytes(),
                         bytes(emulator.device.mem.ram.data))
    assert outputs["facts"] == outputs["absent"]


def test_region_facts_shape():
    """The audit's fact set has the shape the fused code generator
    consumes: pc -> (read_region, write_region), regions in 0..3."""
    from repro.emulator.playback import _region_facts

    facts = _region_facts(_APPS, EMU_KW)
    assert facts, "the built-in ROM should yield at least some facts"
    for pc, (read, write) in facts.items():
        assert isinstance(pc, int)
        assert read is None or read in (0, 1, 2, 3)
        assert write is None or write in (0, 1, 2, 3)
        assert read is not None or write is not None


# ----------------------------------------------------------------------
# The vectorized counted-fill path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("store,count", [
    (0x30C0, 300),    # move.w d0,(a0)+ — hits the bulk prelude
    (0x20C0, 300),    # move.l d0,(a0)+
    (0x30C0, 7),      # too few iterations: stays on the scalar loop
])
def test_counted_fill_is_bit_exact(store, count):
    """The fused counted-fill fast path (slice assignment + one token
    block) against the stepping core, across both store widths and a
    below-threshold count."""
    dst = 0x40000                       # far from the watched code pages
    words = ([0x207C] + _long_imm(dst)          # movea.l #dst, a0
             + [0x223C] + _long_imm(count)      # move.l #count, d1
             + [0x303C, 0xBEEF,                 # move.w #$beef, d0
                store,                          # loop: move.w/l d0,(a0)+
                0x5381,                         # subq.l #1, d1
                0x66FA])                        # bne.s loop (-6)
    words.extend(STOP_SUPER)
    _assert_bit_exact(words, cycle_limit=80_000, fuse_threshold=1)
    # The fill really lands in guest RAM.
    dev, _, fault = _run_words("fast", words, 80_000, fuse_threshold=1)
    assert fault is None and dev.cpu.stopped
    unit = 2 if store == 0x30C0 else 4
    pattern = b"\xbe\xef" if unit == 2 else b"\x00\x00\xbe\xef"
    assert bytes(dev.mem.ram.data[dst:dst + unit * count]) == \
        pattern * count
