"""Tests for the hack framework: installation, interception, logging,
reset persistence, and the overhead measurements of §2.3.3."""

import pytest

from repro.device import Button, constants as C
from repro.hacks import (
    HackManager,
    measure_hack_overhead,
    measure_pen_sampling_rate,
    prefill_log,
    run_trap_loop,
)
from repro.hacks.logging_hacks import (
    evt_enqueue_key_hack,
    key_current_state_hack,
    standard_hacks,
    sys_random_hack,
)
from repro.palmos import EXTENSIONS_DB_NAME, Trap
from repro.palmos import layout as L
from repro.tracelog import (
    LogEventType,
    create_log_database,
    read_activity_log,
)

from tests.palmos_utils import make_kernel


def kernel_with_hacks(**kwargs):
    kernel = make_kernel(**kwargs)
    create_log_database(kernel)
    manager = HackManager(kernel)
    manager.install_standard()
    return kernel, manager


class TestInstallation:
    def test_install_patches_trap_table(self):
        kernel = make_kernel()
        manager = HackManager(kernel)
        hack = manager.install(evt_enqueue_key_hack())
        entry = kernel.host.read32(L.TRAP_TABLE + int(Trap.EvtEnqueueKey) * 4)
        assert entry == hack.code_addr
        assert entry != kernel.default_stubs[int(Trap.EvtEnqueueKey)]

    def test_install_records_in_extensions_db(self):
        kernel = make_kernel()
        manager = HackManager(kernel)
        manager.install_standard()
        db = kernel.dm_host.find(EXTENSIONS_DB_NAME)
        # The paper's five hacks plus the reset extension.
        assert kernel.dm_host.num_records(db) == 6

    def test_double_install_rejected(self):
        kernel = make_kernel()
        manager = HackManager(kernel)
        manager.install(evt_enqueue_key_hack())
        with pytest.raises(ValueError):
            manager.install(evt_enqueue_key_hack())

    def test_uninstall_restores_table(self):
        kernel = make_kernel()
        manager = HackManager(kernel)
        manager.install(evt_enqueue_key_hack())
        manager.uninstall(Trap.EvtEnqueueKey)
        entry = kernel.host.read32(L.TRAP_TABLE + int(Trap.EvtEnqueueKey) * 4)
        assert entry == kernel.default_stubs[int(Trap.EvtEnqueueKey)]

    def test_hacks_survive_soft_reset(self):
        """X-Master behaviour: extensions re-patch the table at boot."""
        kernel, _ = kernel_with_hacks()
        kernel.boot()
        entry = kernel.host.read32(L.TRAP_TABLE + int(Trap.EvtEnqueueKey) * 4)
        assert entry != kernel.default_stubs[int(Trap.EvtEnqueueKey)]
        # And they still log after the reset.
        kernel.device.schedule_button_press(kernel.device.tick + 5, Button.UP)
        kernel.device.schedule_button_release(kernel.device.tick + 8, Button.UP)
        kernel.device.run_until_idle()
        log = read_activity_log(kernel)
        assert len(log.of_type(LogEventType.KEY)) >= 2


class TestLogging:
    def test_key_events_logged_with_timestamps(self):
        kernel, _ = kernel_with_hacks()
        kernel.device.schedule_button_press(40, Button.MEMO)
        kernel.device.schedule_button_release(45, Button.MEMO)
        kernel.device.run_until_idle()
        records = read_activity_log(kernel).of_type(LogEventType.KEY)
        assert len(records) == 2
        down, up = records
        assert down.key_down and down.key_code == Button.MEMO
        assert not up.key_down and up.key_code == Button.MEMO
        assert down.tick == 40 and up.tick == 45
        assert down.rtc == kernel.device.rtc.seconds_at(40)

    def test_pen_events_logged_with_coordinates(self):
        kernel, _ = kernel_with_hacks()
        kernel.device.schedule_pen_down(20, 55, 66)
        kernel.device.schedule_pen_up(24)
        kernel.device.run_until_idle()
        records = read_activity_log(kernel).of_type(LogEventType.PEN)
        assert len(records) >= 2
        assert records[0].pen_down
        assert (records[0].pen_x, records[0].pen_y) == (55, 66)
        assert not records[-1].pen_down

    def test_boot_random_seeding_logged(self):
        """The boot-time SysRandom(entropy) call goes through the trap
        path, so the hack captures the seed — the mechanism that makes
        replay deterministic even with different hardware entropy."""
        kernel, _ = kernel_with_hacks()
        kernel.boot()
        seeds = read_activity_log(kernel).of_type(LogEventType.RANDOM)
        assert len(seeds) == 1
        assert seeds[0].data != 0

    def test_sysrandom_zero_not_logged(self):
        kernel, _ = kernel_with_hacks()
        kernel.call_trap(Trap.SysRandom, 0)
        kernel.call_trap(Trap.SysRandom, 1234)
        seeds = read_activity_log(kernel).of_type(LogEventType.RANDOM)
        assert [s.data for s in seeds] == [1234]

    def test_keycurrentstate_logged_as_short_record(self):
        kernel, _ = kernel_with_hacks()
        kernel.device.buttons.press(Button.UP)
        kernel.call_trap(Trap.KeyCurrentState)
        kernel.device.buttons.release(Button.UP)
        records = read_activity_log(kernel).of_type(LogEventType.KEYSTATE)
        assert len(records) == 1
        assert records[0].data == Button.UP
        assert records[0].size == 12

    def test_notify_broadcast_logged(self):
        kernel, _ = kernel_with_hacks()
        kernel.call_trap(Trap.SysNotifyBroadcast, 0xCAFE)
        records = read_activity_log(kernel).of_type(LogEventType.NOTIFY)
        assert len(records) == 1
        assert records[0].data == 0xCAFE

    def test_hack_chains_to_original(self):
        """With the hack installed the event must still reach the app's
        queue (log and deliver, not log instead of deliver)."""
        kernel, _ = kernel_with_hacks()
        from tests.palmos_utils import recorded_events
        kernel.device.schedule_button_press(40, Button.UP)
        kernel.device.schedule_button_release(44, Button.UP)
        kernel.device.run_until_idle()
        events = recorded_events(kernel)
        assert any(e[0] == 4 and e[3] == Button.UP for e in events)  # keyDown

    def test_isolated_hack_does_not_chain(self):
        kernel = make_kernel()
        create_log_database(kernel)
        manager = HackManager(kernel)
        manager.install(evt_enqueue_key_hack(isolate=True))
        from tests.palmos_utils import recorded_events
        kernel.device.schedule_button_press(40, Button.UP)
        kernel.device.run_until_idle()
        # Logged but never enqueued.
        assert len(read_activity_log(kernel).of_type(LogEventType.KEY)) == 1
        assert not any(e[0] == 4 for e in recorded_events(kernel))


class TestOverheadMeasurements:
    def test_pen_sampling_rate_is_50_per_second(self):
        """§2.3.3: 'The device recorded an average of 50.0 pen events
        per second in the database.'"""
        kernel = make_kernel()
        rate = measure_pen_sampling_rate(kernel, seconds=2)
        assert rate == pytest.approx(50.0, abs=1.0)

    def test_overhead_grows_with_database_size(self):
        """Figure 3's shape: per-call overhead grows linearly with the
        number of records already in the log."""
        kernel = make_kernel(ram_size=1 << 23)
        points = measure_hack_overhead(
            kernel, evt_enqueue_key_hack(isolate=True), arg=0x8000_0001,
            db_sizes=[0, 1000, 4000], calls_per_size=8)
        cycles = [p.avg_cycles for p in points]
        assert cycles[0] < cycles[1] < cycles[2]
        # Roughly linear: the 4000-record point is ~4x the 1000 one.
        growth_1k = cycles[1] - cycles[0]
        growth_4k = cycles[2] - cycles[0]
        assert 3.0 <= growth_4k / growth_1k <= 5.0

    def test_all_five_hacks_have_similar_overhead(self):
        """Figure 3 shows the five hacks within a narrow band."""
        results = {}
        for spec, arg in [
            (evt_enqueue_key_hack(isolate=True), 0x8000_0001),
            (key_current_state_hack(isolate=True), 0),
            (sys_random_hack(isolate=True), 42),
        ]:
            kernel = make_kernel()
            prefill_log(kernel, 500)
            manager = HackManager(kernel)
            manager.install(spec)
            results[spec.name] = run_trap_loop(kernel, spec.trap, arg, 8)
            manager.uninstall_all()
        values = list(results.values())
        assert max(values) / min(values) < 1.5

    def test_record_storage_footprint(self):
        """§2.3.3: 'The individual records each consume twelve or
        sixteen bytes'; a full database costs about 1536 KB."""
        from repro.tracelog.records import LogRecord
        long_rec = LogRecord(LogEventType.PEN, 0, 0, 0)
        short_rec = LogRecord(LogEventType.KEYSTATE, 0, 0, 0)
        assert long_rec.size == 16
        assert short_rec.size == 12
        full = 65_536 * 16 + 65_536 * 8  # records + index overhead
        assert full / 1024 == pytest.approx(1536, rel=0.01)
