#!/usr/bin/env python3
"""The §3 validation study: activity-log and final-state correlation.

Runs the paper's two-fold validation on three chained test workloads
(two scripted, one a game of Puzzle), first with the deterministic
emulator (bit-exact replay) and then with the jitter model that
reproduces POSE's scheduling bursts and approximated RTC.

Run:  python examples/validation_study.py
"""

from repro import JitterModel, replay_session, standard_apps
from repro.analysis import format_validation
from repro.device import Button
from repro.tracelog import read_activity_log
from repro.validation import correlate_final_states, correlate_logs
from repro.workloads import UserScript, collect_session, preload_contacts

EMULATOR_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}


def workloads():
    """The three §3.2 test workloads."""
    w1 = (UserScript("workload-1").at(80)
          .press(Button.MEMO).wait(40)
          .tap(40, 110).wait(50).tap(80, 130).wait(50)
          .press(Button.UP).wait(60))
    w2 = (UserScript("workload-2").at(80)
          .press(Button.ADDRESS).wait(40)
          .press(Button.DOWN).wait(30).press(Button.DOWN).wait(30)
          .tap(40, 60).wait(50)
          .press(Button.MEMO).wait(40).press(Button.DOWN).wait(40))
    w3 = (UserScript("workload-3 (Puzzle)").at(80)
          .press(Button.DATEBOOK).wait(60)
          .tap(50, 10).wait(30).tap(90, 50).wait(30)
          .tap(130, 90).wait(30).press(Button.UP).wait(50)
          .tap(60, 60).wait(40))
    return [w1, w2, w3]


def run_one(script: UserScript, jitter=None) -> None:
    apps = standard_apps()
    session = collect_session(apps, script, name=script.name,
                              setup=lambda k: preload_contacts(k, 8),
                              ram_size=EMULATOR_KW["ram_size"])
    emulator, _, _ = replay_session(session.initial_state, session.log,
                                    apps=apps, profile=False, jitter=jitter,
                                    emulator_kwargs=EMULATOR_KW)
    log_corr = correlate_logs(session.log,
                              read_activity_log(emulator.kernel))
    # Under jitter the activity-log database itself records the shifted
    # replay timing; it is the measuring instrument, so its content
    # diffs are expected (like psysLaunchDB).
    extra = ["UserInputLog"] if jitter is not None else []
    state_corr = correlate_final_states(session.final_state,
                                        emulator.final_state(),
                                        extra_expected_databases=extra)
    mode = "jitter" if jitter else "deterministic"
    print(f"\n=== {script.name} ({mode} replay) ===")
    print(format_validation(log_corr.summary(), state_corr.summary()))
    if jitter is not None and state_corr.unexpected_diffs:
        print("note: remaining diffs are records with application-"
              "stamped timestamps — the paper's timing-sensitivity "
              "caveat (§2.4.4)")


def main() -> None:
    for script in workloads():
        run_one(script)

    print("\n" + "=" * 70)
    print("With the POSE jitter model (bursts < 20 ticks, host-time RTC):")
    run_one(workloads()[0], jitter=JitterModel(seed=7, burst_probability=0.3))


if __name__ == "__main__":
    main()
