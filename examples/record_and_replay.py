#!/usr/bin/env python3
"""Session archival: the desktop side of the paper's workflow.

Collects a session, writes the transferred artifacts to disk exactly
as they would arrive over the HotSync cable (a flash image, PDB files,
and the activity log — itself a PDB), then loads them back in a fresh
process context and replays.  Finishes with the profiler's opcode
statistics, the other output §2.4.2's modified POSE produces.

Run:  python examples/record_and_replay.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    ActivityLog,
    Button,
    InitialState,
    UserScript,
    collect_session,
    replay_session,
    standard_apps,
)
from repro.analysis import format_opcode_table

EMULATOR_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="palm_session_"))
    apps = standard_apps()

    script = (UserScript(name="archived")
              .at(120)
              .press(Button.ADDRESS).wait(60)
              .press(Button.DOWN).wait(40)
              .press(Button.MEMO).wait(60)
              .tap(60, 120).wait(60)
              .drag([(20, 30), (40, 45), (70, 60), (100, 80)]).wait(60))

    print("collecting ...")
    session = collect_session(apps, script, name="archived",
                              ram_size=EMULATOR_KW["ram_size"])

    # -- transfer to the desktop -------------------------------------
    state_dir = out_dir / "initial_state"
    log_path = out_dir / "activity_log.pdb"
    session.initial_state.save(state_dir)
    session.log.save(log_path)
    n_files = len(list(state_dir.iterdir()))
    print(f"archived to {out_dir}")
    print(f"  initial state: {n_files} files "
          f"(flash.rom + {n_files - 2} databases)")
    print(f"  activity log : {log_path.stat().st_size} bytes, "
          f"{len(session.log)} records")

    # -- later: load and replay ----------------------------------------
    print("loading the archive and replaying ...")
    state = InitialState.load(state_dir)
    log = ActivityLog.load(log_path)
    _, profiler, result = replay_session(state, log, apps=apps,
                                         emulator_kwargs=EMULATOR_KW)
    print(f"  {result.events_injected} events replayed, "
          f"{profiler.instructions:,} instructions profiled\n")

    print(format_opcode_table(profiler.top_opcodes(12),
                              profiler.instructions))


if __name__ == "__main__":
    main()
