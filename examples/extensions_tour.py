#!/usr/bin/env python3
"""A tour of the features beyond the paper's published scope.

1. **Soft-reset replay** (the paper's future work): a session that
   resets mid-way is collected and replayed bit-exactly across the
   restarted tick counter.
2. **Memory cards** (also future work): a card's insertion is detected
   through the SysNotifyBroadcast hack, its contents travel with the
   initial state, and the replayed guest reads identical bytes.
3. **Gremlins**: POSE-style random-input torture, replayable.

Run:  python examples/extensions_tour.py
"""

from repro import UserScript, collect_session, replay_session, standard_apps
from repro.device import MemoryCard
from repro.tracelog import LogEventType, read_activity_log, split_epochs
from repro.validation import correlate_logs
from repro.workloads import gremlin_session

EMULATOR_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}


def check(session, apps, label):
    emulator, _, _ = replay_session(session.initial_state, session.log,
                                    apps=apps, profile=False,
                                    emulator_kwargs=EMULATOR_KW)
    corr = correlate_logs(session.log, read_activity_log(emulator.kernel))
    verdict = "bit-exact" if corr.exact_matches == corr.total_original else "DIVERGED"
    print(f"  {label}: {corr.total_original} records replayed -> {verdict}")
    return emulator


def reset_demo() -> None:
    print("1. soft-reset replay")
    apps = standard_apps()
    script = (UserScript("reset-demo").at(80)
              .tap(150, 150).wait(150)     # launcher reset corner
              .tap(60, 40).wait(60)        # epoch 2: -> memopad
              .tap(40, 120).wait(60))      # epoch 2: a memo
    session = collect_session(apps, script, name="reset-demo",
                              ram_size=EMULATOR_KW["ram_size"])
    resets = len(session.log.of_type(LogEventType.RESET))
    epochs = split_epochs(session.log)
    print(f"  collected {session.events} records, {resets} soft resets, "
          f"{len(epochs)} tick epochs")
    check(session, apps, "reset session")


def card_demo() -> None:
    print("2. memory card replay")
    apps = standard_apps()
    card = MemoryCard("PhotoCard", bytearray(b"VACATION-PHOTOS!" * 16))
    script = (UserScript("card-demo").at(60)
              .insert_card().wait(80)
              .remove_card().wait(40))
    session = collect_session(apps, script, name="card-demo", card=card,
                              ram_size=EMULATOR_KW["ram_size"])
    notifies = session.log.of_type(LogEventType.NOTIFY)
    print(f"  card transitions detected via the notify hack: "
          f"{len(notifies)}; image snapshot: "
          f"{len(session.initial_state.card_image)} bytes")
    check(session, apps, "card session")


def gremlins_demo() -> None:
    print("3. gremlins (random-input torture)")
    session = gremlin_session(seed=2005, events=120,
                              ram_size=EMULATOR_KW["ram_size"])
    print(f"  gremlins produced {session.events} log records over "
          f"{session.elapsed_hms()}")
    check(session, standard_apps(), "gremlin session")


def main() -> None:
    reset_demo()
    card_demo()
    gremlins_demo()


if __name__ == "__main__":
    main()
