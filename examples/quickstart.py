#!/usr/bin/env python3
"""Quickstart: collect a session on a simulated Palm m515 and replay it.

The smallest complete tour of the pipeline:

1. build a handheld with the standard application suite,
2. instrument it with the five logging hacks and capture its initial
   state (the deterministic-state-machine model's beta),
3. drive it with a scripted user (delta, the input sequence),
4. replay the collected activity log on the emulator with profiling,
5. print what the profiler saw.

Run:  python examples/quickstart.py
"""

from repro import (
    Button,
    UserScript,
    collect_session,
    replay_session,
    standard_apps,
)
from repro.tracelog import read_activity_log
from repro.validation import correlate_logs

EMULATOR_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}


def main() -> None:
    apps = standard_apps()

    # The "volunteer user": open MemoPad, jot two memos, review the
    # list, then play a few Puzzle moves.
    script = (UserScript(name="quickstart")
              .at(100)
              .press(Button.MEMO).wait(50)
              .tap(40, 120).wait(60)
              .tap(90, 140).wait(60)
              .press(Button.UP).wait(80)
              .press(Button.DATEBOOK).wait(80)
              .tap(50, 10).wait(40)
              .tap(90, 50).wait(40))

    print("collecting the session on the simulated handheld ...")
    session = collect_session(apps, script, name="quickstart",
                              ram_size=EMULATOR_KW["ram_size"])
    print(f"  {session.events} activity-log records over "
          f"{session.elapsed_hms()} (virtual)")
    print(f"  log storage on device: {session.log.storage_bytes()} bytes")

    print("replaying on the emulator with profiling ...")
    emulator, profiler, result = replay_session(
        session.initial_state, session.log, apps=apps,
        emulator_kwargs=EMULATOR_KW)
    print(f"  injected {result.events_injected} synchronous events, "
          f"executed {profiler.instructions:,} instructions")

    total = profiler.total_refs
    print(f"  memory references: {total:,} "
          f"(RAM {100 * profiler.ram_refs / total:.1f}%, "
          f"flash {100 * profiler.flash_refs / total:.1f}%)")
    print(f"  average memory access time without a cache: "
          f"{profiler.average_memory_cycles():.2f} cycles")

    corr = correlate_logs(session.log, read_activity_log(emulator.kernel))
    print(f"  replay fidelity: {corr.exact_matches}/{corr.total_original} "
          f"records bit-exact -> {'VALID' if corr.valid else 'DIVERGED'}")


if __name__ == "__main__":
    main()
