#!/usr/bin/env python3
"""The §4 cache case study on one volunteer session.

Collects a Table-1-style session, replays it with profiling to obtain
the memory-reference trace, sweeps the paper's 56 cache configurations,
and prints Figure 5 (miss rates), Figure 6 (average effective memory
access times) and the energy extension.

Run:  python examples/cache_study.py  [--fast]
"""

import sys
import time

from repro import TABLE1_SESSIONS, collect_table1_session, replay_session, standard_apps
from repro.analysis import EnergyModel, format_access_times, format_miss_rates
from repro.cache import RegionMix, subsample_trace, sweep_paper_grid

EMULATOR_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}


def main() -> None:
    fast = "--fast" in sys.argv
    spec = TABLE1_SESSIONS[2]  # the shortest of the four sessions

    print(f"collecting {spec.name} "
          f"({spec.hours:.1f} virtual hours, seed {spec.seed}) ...")
    session = collect_table1_session(spec, ram_size=EMULATOR_KW["ram_size"])
    print(f"  {session.events} events, elapsed {session.elapsed_hms()}")

    print("profiled replay (the modified POSE) ...")
    start = time.time()
    _, profiler, _ = replay_session(session.initial_state, session.log,
                                    apps=standard_apps(),
                                    emulator_kwargs=EMULATOR_KW)
    trace = profiler.reference_trace().memory_only()
    mix = RegionMix(profiler.ram_refs, profiler.flash_refs)
    print(f"  {len(trace):,} cacheable references in "
          f"{time.time() - start:.1f}s host time")
    print(f"  flash share {100 * mix.flash_fraction:.1f}% -> no-cache "
          f"Teff = {mix.no_cache_time():.3f} cycles "
          f"(paper: ~67% -> 2.35)")

    addresses = trace.addresses
    if fast:
        addresses = subsample_trace(addresses, 1_000_000)
        print(f"  (--fast: sweeping a {len(addresses):,}-reference prefix)")

    print("sweeping the 56 cache configurations ...")
    start = time.time()
    points = sweep_paper_grid(addresses)
    print(f"  done in {time.time() - start:.1f}s\n")

    print(format_miss_rates(points))
    print()
    print(format_access_times(points, mix))
    print()

    # The headline claim: "even relatively small caches can reduce the
    # effective memory access time by 50% or more".
    worst = max(points, key=lambda p: p.miss_rate)
    best = min(points, key=lambda p: p.miss_rate)
    print(f"Teff reduction: worst config {worst.config.label()} "
          f"-> {100 * mix.reduction(worst.miss_rate):.1f}%, "
          f"best config {best.config.label()} "
          f"-> {100 * mix.reduction(best.miss_rate):.1f}%")

    energy = EnergyModel()
    print(f"energy extension: a {best.config.label()} cache cuts memory "
          f"energy by {100 * energy.savings(mix, best.miss_rate):.1f}% "
          f"(battery argument, §4.1)")


if __name__ == "__main__":
    main()
