"""Ablation studies beyond the paper.

The paper fixes LRU replacement and a unified cache; DESIGN.md commits
us to quantifying how much those choices matter at Palm-scale cache
sizes:

* replacement policy (LRU vs FIFO vs random);
* write policy (write-through vs write-back memory traffic);
* split instruction/data vs unified cache.
"""

import numpy as np

from repro.cache import (
    CacheConfig,
    POLICY_FIFO,
    POLICY_LRU,
    POLICY_RANDOM,
    WRITE_BACK,
    WRITE_THROUGH,
    simulate,
    simulate_auto,
)
from repro.device.memmap import KIND_FETCH

from conftest import FULL_SCALE, once

ABLATION_REFS = 400_000 if not FULL_SCALE else 1_500_000


def test_replacement_policy_ablation(case_study_run, benchmark):
    """How much does the paper's LRU choice matter?"""
    trace = case_study_run.profiler.reference_trace().memory_only()
    addresses = trace.addresses[:ABLATION_REFS]

    def run():
        # LRU and FIFO go through the vectorized kernels; random
        # replacement consumes a scalar RNG stream and stays on the
        # reference simulator (simulate_auto hides the difference).
        out = {}
        for policy in (POLICY_LRU, POLICY_FIFO, POLICY_RANDOM):
            for size in (1024, 8192, 65536):
                stats = simulate_auto(
                    addresses, CacheConfig(size, 16, 4, policy=policy))
                out[(policy, size)] = stats.miss_rate
        return out

    rates = once(benchmark, run)
    print(f"\n{'policy':>8} | {'1K':>8} | {'8K':>8} | {'64K':>8}")
    for policy in (POLICY_LRU, POLICY_FIFO, POLICY_RANDOM):
        row = " | ".join(f"{100 * rates[(policy, s)]:7.3f}%"
                         for s in (1024, 8192, 65536))
        print(f"{policy:>8} | {row}")

    for size in (1024, 8192, 65536):
        lru = rates[(POLICY_LRU, size)]
        fifo = rates[(POLICY_FIFO, size)]
        rnd = rates[(POLICY_RANDOM, size)]
        # LRU should not be (meaningfully) worse than the alternatives.
        assert lru <= fifo * 1.1 + 1e-9
        assert lru <= rnd * 1.1 + 1e-9


def test_write_policy_ablation(case_study_run, benchmark):
    """Write-back vs write-through memory write traffic."""
    trace = case_study_run.profiler.reference_trace().memory_only()
    addresses = trace.addresses[:ABLATION_REFS]
    writes = trace.is_write[:ABLATION_REFS]

    def run():
        out = {}
        for policy in (WRITE_THROUGH, WRITE_BACK):
            stats = simulate(
                addresses, CacheConfig(8192, 16, 4, write_policy=policy),
                writes=writes, flush=policy == WRITE_BACK)
            out[policy] = (stats.miss_rate,
                           stats.write_throughs + stats.writebacks)
        return out

    results = once(benchmark, run)
    total_writes = int(np.count_nonzero(writes))
    wt_mr, wt_traffic = results[WRITE_THROUGH]
    wb_mr, wb_traffic = results[WRITE_BACK]
    print(f"\nwrites in trace: {total_writes:,}")
    print(f"write-through: miss rate {100 * wt_mr:.3f}%, "
          f"memory writes {wt_traffic:,}")
    print(f"write-back   : miss rate {100 * wb_mr:.3f}%, "
          f"memory writes {wb_traffic:,}")
    assert wt_traffic == total_writes          # every write goes out
    assert wb_traffic < wt_traffic             # coalescing wins
    assert abs(wb_mr - wt_mr) < 0.02           # read behaviour unchanged


def test_write_buffer_ablation(case_study_run, benchmark):
    """Write-buffer depth vs store stalls (extension): how deep a FIFO
    a write-through cache needs on the Palm workload."""
    from repro.cache import CacheConfig, simulate_with_write_buffer

    trace = case_study_run.profiler.reference_trace().memory_only()
    n = min(ABLATION_REFS, len(trace))
    addresses = trace.addresses[:n]
    writes = trace.is_write[:n]
    regions = trace.region[:n]
    config = CacheConfig(8192, 16, 2)

    def run():
        return {depth: simulate_with_write_buffer(
                    addresses, writes, regions, config, depth=depth)
                for depth in (1, 2, 4, 8)}

    results = once(benchmark, run)
    print(f"\n{'depth':>6} | {'stall cycles':>13} | {'cycles/access':>14}")
    for depth, result in results.items():
        print(f"{depth:>6} | {result.stall_cycles:>13,} | "
              f"{result.cycles_per_access:>14.4f}")
    stalls = [results[d].stall_cycles for d in (1, 2, 4, 8)]
    assert all(a >= b for a, b in zip(stalls, stalls[1:]))
    # Even a shallow buffer keeps the workload near hit speed.
    assert results[4].cycles_per_access < 2.0


def test_split_vs_unified_ablation(case_study_run, benchmark):
    """Split I/D caches vs one unified cache of the same total size."""
    trace = case_study_run.profiler.reference_trace().memory_only()
    addresses = trace.addresses[:ABLATION_REFS]
    kinds = trace.kind[:ABLATION_REFS]
    is_fetch = kinds == KIND_FETCH

    def run():
        unified = simulate(addresses, CacheConfig(8192, 16, 2))
        icache = simulate(addresses[is_fetch], CacheConfig(4096, 16, 2))
        dcache = simulate(addresses[~is_fetch], CacheConfig(4096, 16, 2))
        return unified.misses, icache.misses + dcache.misses

    unified_misses, split_misses = once(benchmark, run)
    total = len(addresses)
    print(f"\nunified 8K: {100 * unified_misses / total:.3f}% miss rate")
    print(f"split 4K+4K: {100 * split_misses / total:.3f}% miss rate")
    # Same order of magnitude; report the direction.
    ratio = split_misses / max(1, unified_misses)
    print(f"split/unified miss ratio: {ratio:.2f}")
    assert 0.4 < ratio < 2.5


def test_trace_sampling_ablation(case_study_run, benchmark):
    """Trace-sampling accuracy (after refs [6] and [24]): how far off a
    sampled miss-ratio estimate is, per cold-start policy."""
    from repro.cache import sampling_error_study

    trace = case_study_run.profiler.reference_trace().memory_only()
    addresses = trace.addresses[:ABLATION_REFS]
    config = CacheConfig(8192, 16, 2)
    study = once(benchmark, lambda: sampling_error_study(
        addresses, config, num_samples=8,
        sample_length=max(5_000, ABLATION_REFS // 20)))

    print(f"\nfull-trace miss rate: {100 * study['full']:.3f}%")
    for policy in ("cold", "discard", "continuous"):
        rate, err = study[policy]
        print(f"  {policy:<10} {100 * rate:7.3f}%  "
              f"(relative error {100 * err:+.1f}%)")
    cold_rate, cold_err = study["cold"]
    continuous_rate, cont_err = study["continuous"]
    # The guaranteed LRU relation: over the same interval references, a
    # cold-started cache never hits where a warm-started one misses, so
    # cold >= continuous.  (Warm-up *discard* changes the denominator —
    # it counts only interval tails — so no ordering vs cold is
    # guaranteed.)  The estimate's sign vs truth also depends on *phase
    # selection*: on bursty Palm traces that bias can dominate the
    # cold-start bias, which is itself a finding worth reporting.
    assert cold_rate >= continuous_rate - 1e-9
    print(f"cold-start inflation over continuous: "
          f"{100 * (cold_rate - continuous_rate):.3f} pp; residual "
          f"phase-selection bias: {100 * cont_err:+.1f}%")


def test_instruction_energy_breakdown(case_study_run, benchmark):
    """Instruction-level energy (after Lee et al. [14]) over the case
    study's opcode histogram."""
    from repro.analysis import instruction_energy

    profiler = case_study_run.profiler
    result = once(benchmark,
                  lambda: instruction_energy(profiler.opcode_histogram()))
    total_instr = result["instructions"]
    print(f"\ncore energy: {result['total']:,.0f} units over "
          f"{total_instr:,} instructions "
          f"({result['total'] / total_instr:.3f} units/instruction)")
    for cls, count in sorted(result["by_class"].items(),
                             key=lambda kv: -kv[1]):
        print(f"  {cls:<8} {count:>12,}  ({100 * count / total_instr:5.1f}%)")
    assert result["instructions"] == profiler.instructions
    assert result["by_class"].get("move", 0) > 0


def test_interpreter_throughput(benchmark):
    """Not a paper figure: the simulator's own speed (guest MIPS)."""
    from repro.m68k import CPU, FlatMemory

    mem = FlatMemory(0x10000)
    mem.write32(0, 0x8000)
    mem.write32(4, 0x1000)
    # move.w #N,d1; loop: addq.l #1,d2; dbra d1,loop; stop
    for i, word in enumerate([0x323C, 50_000, 0x5282, 0x51C9, 0xFFFC,
                              0x4E72, 0x2700]):
        mem.write16(0x1000 + 2 * i, word)
    cpu = CPU(mem)

    def run():
        cpu.reset()
        return cpu.run(1_000_000)

    executed = benchmark(run)
    assert executed == 100_004
