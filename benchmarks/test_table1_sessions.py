"""Table 1: Volunteer User Session Data.

Paper values (m515, hardware-scale sessions):

    Session  Events  Elapsed      RAM Refs  Flash Refs  Ave Mem Cyc
    1        1243    24:34:31     214 M     443 M       2.35
    2        933     48:28:56     31 M      69 M        2.38
    3        755     24:52:55     34 M      76 M        2.39
    4        1622    141:27:26    234 M     486 M       2.35

Reproduction targets: event counts and elapsed times close to the
paper's; flash receiving the majority of references; the no-cache
average memory access time well above 2 cycles (the paper's 2.35-2.39
comes from a ~67% flash share; our kernel model lands a little lower —
see EXPERIMENTS.md for the accounting).  Absolute reference counts are
smaller by ~100x because session activity, not wall-clock idle time,
costs simulated instructions.
"""

from repro.analysis import format_table1

from conftest import FULL_SCALE, once

PAPER = {
    "session1": dict(events=1243, ram=214e6, flash=443e6, cyc=2.35),
    "session2": dict(events=933, ram=31e6, flash=69e6, cyc=2.38),
    "session3": dict(events=755, ram=34e6, flash=76e6, cyc=2.39),
    "session4": dict(events=1622, ram=234e6, flash=486e6, cyc=2.35),
}


def test_table1(table1_runs, benchmark):
    rows = once(benchmark, lambda: [
        {
            "session": run.spec.name,
            "events": run.session.events,
            "elapsed_ticks": run.session.elapsed_ticks,
            "ram_refs": run.profiler.ram_refs,
            "flash_refs": run.profiler.flash_refs,
            "ave_mem_cyc": run.profiler.average_memory_cycles(),
        }
        for run in table1_runs
    ])
    print("\n" + format_table1(rows))
    print("\npaper:   events 1243/933/755/1622, Ave Mem Cyc 2.35-2.39, "
          "flash ~67% of references")

    for row in rows:
        paper = PAPER[row["session"]]
        # Event counts within 25% of the paper's.
        assert abs(row["events"] - paper["events"]) / paper["events"] < 0.25
        # Flash must dominate; the average access time must sit between
        # the RAM (1) and flash (3) costs, well above the midpoint the
        # paper's conclusion rests on.
        assert row["flash_refs"] > row["ram_refs"]
        assert 2.0 < row["ave_mem_cyc"] < 2.5

    if FULL_SCALE:
        # Relative session weights: session 4 is the biggest, as in
        # the paper.
        events = {r["session"]: r["events"] for r in rows}
        assert events["session4"] == max(events.values())


def test_elapsed_times_match_paper(table1_runs, benchmark):
    once(benchmark, lambda: None)
    """Virtual elapsed time tracks the paper's wall-clock sessions."""
    expected_hours = {"session1": 24.58, "session2": 48.48,
                      "session3": 24.88, "session4": 141.46}
    for run in table1_runs:
        hours = run.session.elapsed_ticks / (100 * 3600)
        assert hours == run.spec.hours or abs(
            hours - expected_hours[run.spec.name]) < 0.5


def test_reference_composition(table1_runs, benchmark):
    once(benchmark, lambda: None)
    """Fetches dominate references (instruction-driven workload), and
    every reference is classified."""
    for run in table1_runs:
        profiler = run.profiler
        assert profiler.fetch_refs > profiler.read_refs
        assert profiler.total_refs == (profiler.ram_refs
                                       + profiler.flash_refs
                                       + profiler.hw_refs)
        assert profiler.hw_refs < 0.05 * profiler.total_refs
