"""Tracked performance harness for the trace→cache pipeline.

Run ``python benchmarks/perf/run_bench.py`` to produce
``BENCH_cache.json``; see that module's docstring for knobs.
"""
