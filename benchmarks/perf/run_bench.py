"""The tracked cache-pipeline performance harness.

Times the three stages this repository's perf work targets —

1. trace generation (the synthetic desktop/session generator),
2. cache simulation: the vectorized kernels vs the scalar reference
   ``Cache.run`` loop, per configuration family, with a byte-for-byte
   stats cross-check on a shared prefix, and
3. the 56-configuration paper sweep: the pre-kernel serial engine
   (scalar stack passes) vs ``sweep_parallel`` at ``--jobs 1`` and
   ``--jobs 4`` —

and writes ``BENCH_cache.json`` at the repository root so the numbers
are tracked from PR to PR.  Timing claims are environment-dependent;
the stats-equality flags are not, and the CI smoke job fails on any
``stats_match: false`` (never on timing).

Usage::

    python benchmarks/perf/run_bench.py              # full harness
    python benchmarks/perf/run_bench.py --quick      # CI smoke scale
    python benchmarks/perf/run_bench.py --trace t.npz --out BENCH.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cache import (          # noqa: E402
    Cache,
    CacheConfig,
    POLICY_FIFO,
    lru_depth_histogram,
    lru_hit_depths,
    simulate,
    sweep_paper_grid,
    sweep_parallel,
    to_line_addresses,
    WRITE_BACK,
)
from repro import (                # noqa: E402
    collect_table1_session,
    replay_session,
    standard_apps,
)
from repro.workloads import SessionSpec  # noqa: E402

#: The simulation configurations the harness tracks, chosen to cover
#: every kernel path: both replacement policies, both write policies,
#: no-write-allocate, and the direct-mapped closed form.
KERNEL_CONFIGS = [
    ("lru_wt_8k", CacheConfig(8192, 16, 4)),
    ("lru_wb_8k", CacheConfig(8192, 16, 4, write_policy=WRITE_BACK)),
    ("fifo_wt_8k", CacheConfig(8192, 16, 4, policy=POLICY_FIFO)),
    ("fifo_wb_8k", CacheConfig(8192, 16, 4, policy=POLICY_FIFO,
                               write_policy=WRITE_BACK)),
    ("lru_wb_8k_nowa", CacheConfig(8192, 16, 4, write_policy=WRITE_BACK,
                                   write_allocate=False)),
    ("direct_mapped_wb_8k", CacheConfig(8192, 16, 1,
                                        write_policy=WRITE_BACK)),
]

STAT_FIELDS = ("accesses", "hits", "misses", "writebacks",
               "write_throughs")


def _timed(fn, repeats: int = 1):
    """Best-of-N wall clock and the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


#: Deterministic synthetic-session specs (Table 1 style: a simulated
#: volunteer generating pen/button activity, collected on the device
#: model and replayed with profiling — the paper's trace source).
BENCH_SESSION = SessionSpec(name="bench", seed=42, hours=6.0,
                            bouts=16, contacts=12)
QUICK_SESSION = SessionSpec(name="bench-quick", seed=42, hours=0.5,
                            bouts=2, contacts=2)


#: Emulator sizing shared by trace generation and the replay-core A/B.
EMULATOR_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}


def load_trace(args) -> tuple:
    """The benchmark trace: a synthetic session collected and replayed
    through the device model by default (that replay *is* the tracked
    trace-generation stage), or any ``.npz`` reference trace.  Returns
    ``(addresses, writes, generation_record, session)`` — ``session``
    is ``None`` for the ``.npz`` path (no replay A/B possible)."""
    n = args.refs
    if args.trace:
        from repro.emulator import ReferenceTrace

        trace = ReferenceTrace.load(args.trace).memory_only()
        addresses = trace.addresses[:n]
        writes = trace.is_write[:n]
        gen = {"source": str(args.trace), "refs": int(len(addresses))}
        return (np.ascontiguousarray(addresses, dtype=np.uint32),
                np.ascontiguousarray(writes, dtype=bool), gen, None)

    spec = QUICK_SESSION if args.quick else BENCH_SESSION
    collect_s, session = _timed(
        lambda: collect_table1_session(spec, ram_size=EMULATOR_KW["ram_size"]))
    # One untimed replay produces the cache-bench trace; the tracked
    # replay timing comes from bench_replay's A/B (merged into this
    # record by main), so the two sections can never drift apart.
    _, profiler, _ = replay_session(session.initial_state, session.log,
                                    apps=standard_apps(), profile=True,
                                    emulator_kwargs=EMULATOR_KW)
    trace = profiler.reference_trace().memory_only()
    addresses = trace.addresses[:n]
    writes = trace.is_write[:n]
    total = len(trace.addresses)
    gen = {"source": f"synthetic session {spec.name!r} (seed {spec.seed})",
           "refs": int(len(addresses)),
           "session_refs": int(total),
           "collect_seconds": round(collect_s, 3)}
    return (np.ascontiguousarray(addresses, dtype=np.uint32),
            np.ascontiguousarray(writes, dtype=bool), gen, session)


def bench_replay(session, quick: bool) -> dict:
    """Replay-core A/B on the same recorded session: the predecoded
    block interpreter (``fast``) vs the stepping loop (``simple``),
    with a bit-exactness cross-check over every observable statistic
    (cycles, instructions, opcode histogram, reference counts and the
    packed reference trace)."""
    apps = standard_apps()
    repeats = 1 if quick else 3
    rows = {}
    fingerprints = {}
    refs = 0
    for core in ("simple", "fast"):
        def run(core=core):
            return replay_session(session.initial_state, session.log,
                                  apps=apps, profile=True,
                                  emulator_kwargs={**EMULATOR_KW,
                                                   "core": core})
        seconds, (emulator, profiler, _) = _timed(run, repeats=repeats)
        cpu = emulator.device.cpu
        fingerprints[core] = (cpu.cycles, cpu.instructions,
                              bytes(profiler.opcode_counts),
                              profiler.counts_bytes(),
                              profiler.trace_bytes())
        refs = int(len(profiler.reference_trace().addresses))
        rows[core] = {"seconds": round(seconds, 3),
                      "refs_per_sec": round(refs / seconds)}
    match = fingerprints["fast"] == fingerprints["simple"]
    return {
        "session_refs": refs,
        "simple": rows["simple"],
        "fast": rows["fast"],
        "speedup": round(rows["fast"]["refs_per_sec"]
                         / rows["simple"]["refs_per_sec"], 2),
        "stats_match": bool(match),
    }


def bench_sanitize(session, quick: bool) -> dict:
    """Sanitizer overhead on the fast core, three ways: plain replay,
    full shadow checking, and checking with the static elision set.
    Correctness flags: the two sanitized runs must report bit-identical
    findings (elision soundness) and a recorded clean session must
    report none; the overhead ratio is tracked, never gated (timing)."""
    apps = standard_apps()
    repeats = 1 if quick else 3

    def run(sanitize, elide=True):
        return replay_session(session.initial_state, session.log,
                              apps=apps, profile=True,
                              emulator_kwargs=EMULATOR_KW,
                              sanitize=sanitize, sanitize_elide=elide)

    plain_s, (_, profiler, _) = _timed(lambda: run(False), repeats=repeats)
    refs = int(len(profiler.reference_trace().addresses))
    full_s, (emu_full, _, _) = _timed(lambda: run(True, elide=False),
                                      repeats=repeats)
    elided_s, (emu_elided, _, _) = _timed(lambda: run(True), repeats=repeats)

    def findings(emulator):
        return sorted((f.code, int(f.severity), f.address, f.block)
                      for f in emulator.sanitizer.report.sorted())

    full_findings = findings(emu_full)
    elided_findings = findings(emu_elided)
    findings_match = full_findings == elided_findings
    clean = not elided_findings
    stats = emu_elided.sanitizer.stats()
    plain_rps = refs / plain_s
    full_rps = refs / full_s
    elided_rps = refs / elided_s
    return {
        "session_refs": refs,
        "plain": {"seconds": round(plain_s, 3),
                  "refs_per_sec": round(plain_rps)},
        "sanitized_full": {"seconds": round(full_s, 3),
                           "refs_per_sec": round(full_rps),
                           "overhead": round(full_s / plain_s, 2)},
        "sanitized_elided": {"seconds": round(elided_s, 3),
                             "refs_per_sec": round(elided_rps),
                             "overhead": round(elided_s / plain_s, 2)},
        "elision_rate": stats["elision_rate"],
        "elide_pcs": stats["elide_pcs"],
        "data_accesses": stats["data_accesses"],
        "findings": len(elided_findings),
        "clean": clean,
        "findings_match": findings_match,
        "stats_match": bool(findings_match and clean),
    }


def bench_kernels(addresses, writes, scalar_refs: int) -> dict:
    """Kernel vs scalar throughput per configuration, plus an exact
    stats cross-check on a shared prefix."""
    out = {}
    check_n = min(scalar_refs, len(addresses))
    for name, config in KERNEL_CONFIGS:
        cache = Cache(config)
        scalar_s, _ = _timed(
            lambda: cache.run(addresses[:check_n], writes[:check_n]))
        scalar_stats = cache.stats
        kernel_check = simulate(addresses[:check_n], config,
                                writes=writes[:check_n])
        match = all(getattr(scalar_stats, f) == getattr(kernel_check, f)
                    for f in STAT_FIELDS)
        kernel_s, stats = _timed(
            lambda: simulate(addresses, config, writes=writes), repeats=3)
        scalar_rps = check_n / scalar_s
        kernel_rps = len(addresses) / kernel_s
        out[name] = {
            "config": config.label(),
            "policy": config.policy,
            "write_policy": config.write_policy,
            "write_allocate": config.write_allocate,
            "scalar_refs_per_sec": round(scalar_rps),
            "kernel_refs_per_sec": round(kernel_rps),
            "speedup": round(kernel_rps / scalar_rps, 2),
            "miss_rate": round(stats.miss_rate, 6),
            "stats_match": bool(match),
        }
    return out


def bench_family_pass(addresses, scalar_refs: int) -> dict:
    """The LRU stack-property family pass: scalar vs vectorized."""
    line_addrs = to_line_addresses(addresses, 16)
    check_n = min(scalar_refs, len(line_addrs))
    scalar_s, (h_ref, cold_ref) = _timed(
        lambda: lru_depth_histogram(
            np.asarray(line_addrs[:check_n], dtype=np.int64), 128, 8))
    h_chk, cold_chk = lru_hit_depths(line_addrs[:check_n], 128, 8)
    match = bool(np.array_equal(np.asarray(h_ref), h_chk)
                 and cold_ref == cold_chk)
    kernel_s, _ = _timed(lambda: lru_hit_depths(line_addrs, 128, 8),
                         repeats=3)
    scalar_rps = check_n / scalar_s
    kernel_rps = len(line_addrs) / kernel_s
    return {
        "num_sets": 128,
        "max_depth": 8,
        "scalar_refs_per_sec": round(scalar_rps),
        "kernel_refs_per_sec": round(kernel_rps),
        "speedup": round(kernel_rps / scalar_rps, 2),
        "stats_match": match,
    }


def bench_sweep(addresses) -> dict:
    """Wall clock of the full 56-configuration grid, three ways.

    The parallel pass asks for 4 workers but never more than the
    machine has — oversubscribing a single-core runner just adds
    process overhead (the seed run recorded jobs4 *slower* than jobs1
    on ``cpu_count: 1``).  The JSON says when the cap bit."""
    requested = 4
    jobs = min(requested, os.cpu_count() or 1)
    prev_s, prev = _timed(lambda: sweep_paper_grid(addresses))
    jobs1_s, p1 = _timed(lambda: sweep_parallel(addresses, jobs=1))
    jobs4_s, p4 = _timed(lambda: sweep_parallel(addresses, jobs=jobs))
    key = lambda pts: [(p.config.label(), p.misses) for p in pts]  # noqa: E731
    deterministic = key(p1) == key(p4)
    match = key(prev) == key(p1)
    return {
        "configurations": len(prev),
        "previous_serial_seconds": round(prev_s, 3),
        "jobs1_seconds": round(jobs1_s, 3),
        "jobs4_seconds": round(jobs4_s, 3),
        "jobs4_workers": jobs,
        "jobs4_capped_to_cpu_count": jobs < requested,
        "jobs4_speedup_vs_previous_serial": round(prev_s / jobs4_s, 2),
        "jobs1_speedup_vs_previous_serial": round(prev_s / jobs1_s, 2),
        "deterministic_across_jobs": deterministic,
        "stats_match": bool(match and deterministic),
    }


def bench_trace_io(addresses, writes, quick: bool) -> dict:
    """PTRC container I/O and the out-of-core simulation path.

    Measures container write throughput and compression ratio on the
    bench trace, then times one kernel configuration both ways — the
    whole trace in RAM vs streamed back from the container chunk by
    chunk — with a bit-identical stats gate (the chunked kernels carry
    cache state across chunk boundaries; any drift is a correctness
    bug, not noise).  A subprocess then streams a large synthetic
    trace (100M refs at full scale) through a writer and back without
    ever materializing it, reporting its own peak RSS — the documented
    bounded-memory claim for out-of-core archives."""
    import subprocess
    import tempfile

    from repro.device.memmap import KIND_READ, KIND_WRITE
    from repro.traces.container import (
        ContainerWriter,
        TraceContainer,
        pack_tokens,
    )

    kinds = np.where(writes, KIND_WRITE, KIND_READ).astype(np.uint8)
    tokens = pack_tokens(addresses, kinds)
    config = CacheConfig(8192, 16, 4)
    row: dict = {"refs": int(len(tokens))}
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench.ptrc"

        def write():
            with ContainerWriter(path, codec="zlib") as writer:
                writer.append_tokens(tokens)
            return writer.manifest

        write_s, manifest = _timed(write)
        row["codec"] = manifest["codec"]
        row["write_tokens_per_sec"] = int(len(tokens) / write_s)
        row["compressed_ratio"] = round(
            manifest["payload_bytes"] / max(1, len(tokens) * 8), 3)

        in_ram_s, in_ram = _timed(
            lambda: simulate(addresses, config, writes=writes))
        with TraceContainer(path) as container:
            ooc_s, ooc = _timed(
                lambda: simulate(container.cache_chunks(), config))
        row["in_ram_refs_per_sec"] = int(len(tokens) / in_ram_s)
        row["out_of_core_refs_per_sec"] = int(len(tokens) / ooc_s)
        row["out_of_core_fraction_of_in_ram"] = round(in_ram_s / ooc_s, 2)
        row["out_of_core_stats_identical"] = ooc == in_ram

    # Bounded-RSS archive: the child never holds more than one chunk
    # plus its fixed tile, whatever the trace length.
    large_refs = 2_000_000 if quick else 100_000_000
    child = (
        "import json,resource,sys\n"
        "import numpy as np\n"
        f"sys.path.insert(0, {str(REPO_ROOT / 'src')!r})\n"
        "from repro.traces.container import ContainerWriter, TraceContainer\n"
        "refs, path = int(sys.argv[1]), sys.argv[2]\n"
        "rng = np.random.default_rng(7)\n"
        "tile = (rng.integers(0, 1 << 23, size=1 << 22, dtype=np.uint64)\n"
        "        | (np.uint64(1) << np.uint64(32)))\n"
        "with ContainerWriter(path, codec='zlib', level=1) as writer:\n"
        "    done = 0\n"
        "    while done < refs:\n"
        "        n = min(refs - done, len(tile))\n"
        "        writer.append_tokens(tile[:n])\n"
        "        done += n\n"
        "total = 0\n"
        "with TraceContainer(path) as container:\n"
        "    for chunk in container.chunks():\n"
        "        total += len(chunk)\n"
        "rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024\n"
        "print(json.dumps({'read_back': total,\n"
        "                  'max_rss_mb': round(rss, 1)}))\n"
    )
    with tempfile.TemporaryDirectory() as tmp:
        t0 = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-c", child, str(large_refs),
             str(Path(tmp) / "large.ptrc")],
            capture_output=True, text=True, check=True)
        large_s = time.perf_counter() - t0
    stats = json.loads(proc.stdout)
    raw_mb = large_refs * 8 / (1 << 20)
    row["large_archive"] = {
        "refs": large_refs,
        "raw_mb": round(raw_mb, 1),
        "seconds": round(large_s, 3),
        "tokens_per_sec": int(large_refs / large_s),
        "max_rss_mb": stats["max_rss_mb"],
        "resident_fraction_of_raw": round(stats["max_rss_mb"] / raw_mb, 3),
        "read_back_matches": stats["read_back"] == large_refs,
    }
    row["stats_match"] = bool(row["out_of_core_stats_identical"]
                              and row["large_archive"]["read_back_matches"])
    return row


def bench_fleet(quick: bool) -> dict:
    """Fleet orchestration throughput: the same gremlins campaign run
    through the supervisor at ``--jobs 1`` and ``--jobs N``, with a
    byte-for-byte identity gate on the merged ``aggregates.json`` —
    scheduling order and worker parallelism must never leak into the
    population aggregates.  Sessions/min is tracked, never gated."""
    import tempfile

    from repro.fleet import CampaignSpec, run_campaign

    sessions = 6 if quick else 16
    requested = 4
    jobs = min(requested, os.cpu_count() or 1)
    spec = CampaignSpec(
        name="bench-fleet", sessions=sessions, seed=4242,
        app_mixes=(("launcher", "memopad"), ("launcher", "puzzle")),
        behaviors=("gremlins",), durations=(0.01,),
        caches=((8192, 32, 4),))
    rows = {}
    blobs = {}
    with tempfile.TemporaryDirectory() as tmp:
        for label, n in (("jobs1", 1), ("jobsN", jobs)):
            out = Path(tmp) / label
            t0 = time.perf_counter()
            result = run_campaign(spec, out, jobs=n, hang_timeout=300.0)
            seconds = time.perf_counter() - t0
            blobs[label] = (out / "aggregates.json").read_bytes()
            rows[label] = {
                "jobs": n,
                "seconds": round(seconds, 3),
                "sessions_per_min": round(result.sessions_per_minute(), 1),
                "complete": result.complete,
            }
    identical = blobs["jobs1"] == blobs["jobsN"]
    return {
        "sessions": sessions,
        "jobs1": rows["jobs1"],
        "jobsN": rows["jobsN"],
        "jobsN_capped_to_cpu_count": jobs < requested,
        "speedup": round(rows["jobs1"]["seconds"]
                         / rows["jobsN"]["seconds"], 2),
        "aggregates_identical_across_jobs": identical,
        "stats_match": bool(identical and rows["jobs1"]["complete"]
                            and rows["jobsN"]["complete"]),
    }


def bench_transval(quick: bool) -> dict:
    """Translation-validator throughput over the standard corpus:
    every distinct fused block from the quickstart replay is validated
    against the per-insn reference semantics.  Blocks/sec and wall
    time are tracked, never gated; zero error-severity findings is the
    gate (uncovered-arm warnings are baselined in CI, not here).
    ``--quick`` skips the elision audits and miscompile self-test —
    the dedicated verify-codegen CI job runs those against the
    committed baseline."""
    from repro.analysis.transval import verify_codegen

    report, stats = verify_codegen(run_selftest=not quick,
                                   audit_elisions=not quick)
    errors = len(report.errors)
    return {
        "blocks": stats.blocks,
        "vectors": stats.vectors,
        "arms": stats.arms,
        "arm_coverage": round(stats.coverage, 4),
        "validation_seconds": round(stats.wall, 3),
        "corpus_replay_seconds": round(stats.replay_wall, 3),
        "blocks_per_sec": round(stats.blocks_per_sec, 1),
        "errors": errors,
        "warnings": len(report.warnings),
        "stats_match": errors == 0,
    }


def _print_fleet(fl: dict) -> None:
    print(f"fleet ({fl['sessions']} sessions): jobs=1 "
          f"{fl['jobs1']['seconds']}s "
          f"({fl['jobs1']['sessions_per_min']} sessions/min), "
          f"jobs={fl['jobsN']['jobs']} {fl['jobsN']['seconds']}s "
          f"({fl['jobsN']['sessions_per_min']} sessions/min, "
          f"{fl['speedup']}x), aggregates identical "
          f"{fl['aggregates_identical_across_jobs']}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_cache.json"))
    parser.add_argument("--trace", default=None,
                        help=".npz reference trace instead of the "
                             "synthetic generator")
    parser.add_argument("--refs", type=int, default=None,
                        help="cap the trace length")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale: small trace, correctness "
                             "flags still exact")
    parser.add_argument("--fleet-only", action="store_true",
                        help="run only the fleet section and merge it "
                             "into an existing --out report")
    args = parser.parse_args(argv)
    if args.fleet_only:
        fleet = bench_fleet(args.quick)
        _print_fleet(fleet)
        out = Path(args.out)
        report = json.loads(out.read_text()) if out.exists() else {"meta": {}}
        report["fleet"] = fleet
        divergences = [d for d in report.get("meta", {}).get("divergences", [])
                       if d != "fleet"]
        if not fleet["stats_match"]:
            divergences.append("fleet")
        report.setdefault("meta", {})["divergences"] = divergences
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nmerged fleet section into {out}")
        return 0 if fleet["stats_match"] else 1
    if args.refs is None:
        args.refs = 150_000 if args.quick else 2_000_000
    scalar_refs = 30_000 if args.quick else 300_000

    addresses, writes, gen, session = load_trace(args)
    print(f"trace: {len(addresses):,} refs "
          f"({gen['source']}), write share "
          f"{float(np.count_nonzero(writes)) / len(addresses):.2f}")

    report = {
        "meta": {
            "quick": args.quick,
            "refs": int(len(addresses)),
            "scalar_check_refs": int(min(scalar_refs, len(addresses))),
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "python": sys.version.split()[0],
        },
        "trace_generation": gen,
        "kernels": bench_kernels(addresses, writes, scalar_refs),
        "family_pass": bench_family_pass(addresses, scalar_refs),
        "sweep_grid": bench_sweep(addresses),
        "trace_io": bench_trace_io(addresses, writes, args.quick),
        "fleet": bench_fleet(args.quick),
        "transval": bench_transval(args.quick),
    }
    if session is not None:
        rp = report["replay"] = bench_replay(session, args.quick)
        report["sanitize"] = bench_sanitize(session, args.quick)
        # trace_generation's replay numbers are the A/B's fast row —
        # one measurement, two sections, no drift.
        gen["replay_seconds"] = rp["fast"]["seconds"]
        gen["replay_refs_per_sec"] = rp["fast"]["refs_per_sec"]

    print(f"\n{'path':<22} {'scalar':>12} {'kernel':>12} {'speedup':>8} "
          f"{'match':>6}")
    for name, row in report["kernels"].items():
        print(f"{name:<22} {row['scalar_refs_per_sec']:>12,} "
              f"{row['kernel_refs_per_sec']:>12,} {row['speedup']:>7}x "
              f"{str(row['stats_match']):>6}")
    fam = report["family_pass"]
    print(f"{'family_pass':<22} {fam['scalar_refs_per_sec']:>12,} "
          f"{fam['kernel_refs_per_sec']:>12,} {fam['speedup']:>7}x "
          f"{str(fam['stats_match']):>6}")
    sw = report["sweep_grid"]
    print(f"\nsweep (56 configs): previous serial "
          f"{sw['previous_serial_seconds']}s, jobs=1 "
          f"{sw['jobs1_seconds']}s, jobs=4 {sw['jobs4_seconds']}s "
          f"({sw['jobs4_speedup_vs_previous_serial']}x vs previous)")
    rp = report.get("replay")
    if rp is not None:
        print(f"replay cores ({rp['session_refs']:,} refs): simple "
              f"{rp['simple']['refs_per_sec']:,} refs/s, fast "
              f"{rp['fast']['refs_per_sec']:,} refs/s "
              f"({rp['speedup']}x), stats match "
              f"{rp['stats_match']}")

    failures = [name for name, row in report["kernels"].items()
                if not row["stats_match"]]
    if not fam["stats_match"]:
        failures.append("family_pass")
    if not sw["stats_match"]:
        failures.append("sweep_grid")
    if rp is not None and not rp["stats_match"]:
        failures.append("replay")
    ti = report["trace_io"]
    la = ti["large_archive"]
    print(f"trace_io ({ti['refs']:,} refs): write "
          f"{ti['write_tokens_per_sec']:,} tokens/s ({ti['codec']} "
          f"ratio {ti['compressed_ratio']}), out-of-core "
          f"{ti['out_of_core_refs_per_sec']:,} refs/s "
          f"({ti['out_of_core_fraction_of_in_ram']}x in-RAM), "
          f"identical {ti['out_of_core_stats_identical']}; "
          f"large archive {la['refs']:,} refs ({la['raw_mb']} MB raw) "
          f"in {la['max_rss_mb']} MB RSS")
    if not ti["stats_match"]:
        failures.append("trace_io")
    fl = report["fleet"]
    _print_fleet(fl)
    if not fl["stats_match"]:
        failures.append("fleet")
    tv = report["transval"]
    print(f"transval ({tv['blocks']} blocks, {tv['vectors']:,} "
          f"vectors): {tv['blocks_per_sec']} blocks/s, "
          f"{tv['validation_seconds']}s validation, arm coverage "
          f"{tv['arm_coverage']}, errors {tv['errors']}, warnings "
          f"{tv['warnings']}")
    if not tv["stats_match"]:
        failures.append("transval")
    sz = report.get("sanitize")
    if sz is not None:
        print(f"sanitize ({sz['session_refs']:,} refs): plain "
              f"{sz['plain']['refs_per_sec']:,} refs/s, full "
              f"{sz['sanitized_full']['refs_per_sec']:,} refs/s "
              f"({sz['sanitized_full']['overhead']}x), elided "
              f"{sz['sanitized_elided']['refs_per_sec']:,} refs/s "
              f"({sz['sanitized_elided']['overhead']}x, elision rate "
              f"{sz['elision_rate']}), clean {sz['clean']}, "
              f"findings match {sz['findings_match']}")
        if not sz["stats_match"]:
            failures.append("sanitize")
    report["meta"]["divergences"] = failures

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out}")
    if failures:
        print(f"KERNEL/SCALAR DIVERGENCE in: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
