"""Figure 3 and §2.3.3: activity-log collection overhead.

Paper results reproduced here:

* a stylus held against the screen logs 50.0 pen events per second —
  collection overhead is imperceptible at the hardware sample rate;
* the per-call overhead of an isolated hack grows with the number of
  records already in the log database: ~6.4 ms/call averaged over
  0–10 K records rising to ~15.5 ms/call at 50–60 K on their m515.
  Our kernel reproduces the *linear growth* organically (the data
  manager walks the record list per insert); absolute milliseconds
  differ because the ROM routine bodies are thinner than Palm OS 3.5's
  (see EXPERIMENTS.md).
"""

import os

import pytest

from repro.analysis import format_overhead, format_overhead_multi
from repro.apps import standard_apps
from repro.hacks import measure_hack_overhead, measure_pen_sampling_rate, prefill_log, run_trap_loop
from repro.hacks.logging_hacks import (
    evt_enqueue_key_hack,
    evt_enqueue_pen_point_hack,
    key_current_state_hack,
    sys_notify_broadcast_hack,
    sys_random_hack,
)
from repro.hacks.manager import HackManager
from repro.palmos import PalmOS

from conftest import FULL_SCALE, once

if FULL_SCALE:
    DB_SIZES = list(range(0, 60_001, 5_000))
    CALLS = 20
else:
    DB_SIZES = [0, 2_000, 5_000, 10_000, 20_000, 30_000]
    CALLS = 10

HACKS = {
    "EvtEnqueueKey": (evt_enqueue_key_hack, 0x8000_0001),
    "EvtEnqueuePenPoint": (evt_enqueue_pen_point_hack, 0x8000_2020),
    "KeyCurrentState": (key_current_state_hack, 0),
    "SysNotifyBroadcast": (sys_notify_broadcast_hack, 0x1234),
    "SysRandom": (sys_random_hack, 42),
}


def make_kernel() -> PalmOS:
    kernel = PalmOS(apps=standard_apps(), ram_size=16 << 20,
                    flash_size=1 << 20, default_app="launcher")
    kernel.boot()
    return kernel


def test_pen_sampling_rate(benchmark):
    """§2.3.3: 'The device recorded an average of 50.0 pen events per
    second in the database indicating no perceptible overhead.'"""
    kernel = make_kernel()
    rate = once(benchmark, lambda: measure_pen_sampling_rate(kernel, seconds=4))
    print(f"\npen events per second with stylus held: {rate:.1f} "
          f"(paper: 50.0)")
    assert rate == pytest.approx(50.0, abs=1.0)


def test_fig3_overhead_vs_database_size(benchmark):
    """Figure 3's curve for the EvtEnqueueKey hack."""
    kernel = make_kernel()
    points = once(benchmark, lambda: measure_hack_overhead(
        kernel, evt_enqueue_key_hack(isolate=True), arg=0x8000_0001,
        db_sizes=DB_SIZES, calls_per_size=CALLS))
    print("\n" + format_overhead(points))

    # Shape assertions: strictly growing, roughly linear.
    cycles = [p.avg_cycles for p in points]
    assert all(a < b for a, b in zip(cycles, cycles[1:]))
    per_record = (cycles[-1] - cycles[0]) / (points[-1].records - points[0].records)
    print(f"marginal cost: {per_record:.1f} cycles/record "
          f"(paper's slope: ~6 cycles/record)")
    assert 2.0 < per_record < 40.0
    # Paper: < 10 ms/call while sessions stay under 30 K records.
    under_30k = [p for p in points if p.records <= 30_000]
    top = max(p.avg_ms for p in under_30k)
    print(f"worst ms/call under 30K records: {top:.3f} (paper: < 10 ms)")
    assert top < 10.0


def test_fig3_all_five_hacks(benchmark):
    """Figure 3 plots all five hacks in a narrow band."""
    sizes = DB_SIZES[:4]

    def run():
        curves = {}
        for name, (factory, arg) in HACKS.items():
            kernel = make_kernel()
            manager = HackManager(kernel)
            manager.install(factory(isolate=True))
            points = []
            for size in sizes:
                prefill_log(kernel, size)
                avg = run_trap_loop(kernel, factory().trap, arg,
                                    max(4, CALLS // 2))
                points.append(type("P", (), {
                    "records": size, "avg_cycles": avg,
                    "avg_ms": avg / 33_000_000 * 1000})())
            manager.uninstall_all()
            curves[name] = points
        return curves

    curves = once(benchmark, run)
    print("\n" + format_overhead_multi(curves))
    # All five hacks within a modest band of each other at each size.
    for i in range(len(sizes)):
        values = [curves[name][i].avg_cycles for name in curves]
        assert max(values) / max(1.0, min(values)) < 2.0


def test_log_storage_footprint(benchmark):
    """§2.3.3's arithmetic: a full database of the largest records
    needs ~1536 KB."""
    from repro.tracelog import MAX_LOG_RECORDS
    total_kb = once(benchmark, lambda: MAX_LOG_RECORDS * (16 + 8) / 1024)
    print(f"\nfull log database: {total_kb:.0f} KB (paper: 1536 KB)")
    assert total_kb == 1536
