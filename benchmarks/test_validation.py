"""§3 system validation, benchmarked end to end.

Reproduces both validation methods on the paper's three test workloads
(two scripted, one a Puzzle game), in both replay modes:

* deterministic replay: every record bit-exact (stronger than the
  paper's result, because both machines here are simulations);
* jitter-model replay: the paper's observed artifacts — event bursts
  less than 20 ticks late and benign final-state date differences —
  appear and are classified as expected.
"""

from repro import JitterModel, replay_session, standard_apps
from repro.analysis import format_validation
from repro.device import Button
from repro.tracelog import read_activity_log
from repro.validation import correlate_final_states, correlate_logs
from repro.workloads import UserScript, collect_session, preload_contacts

from conftest import EMULATOR_KW, once


def workload_scripts():
    w1 = (UserScript("workload-1").at(80)
          .press(Button.MEMO).wait(40)
          .tap(40, 110).wait(50).tap(80, 130).wait(50)
          .press(Button.UP).wait(60))
    w2 = (UserScript("workload-2").at(80)
          .press(Button.ADDRESS).wait(40)
          .press(Button.DOWN).wait(30).press(Button.DOWN).wait(30)
          .tap(40, 60).wait(50)
          .press(Button.MEMO).wait(40).press(Button.DOWN).wait(40))
    w3 = (UserScript("workload-3-puzzle").at(80)
          .press(Button.DATEBOOK).wait(60)
          .tap(50, 10).wait(30).tap(90, 50).wait(30)
          .tap(130, 90).wait(30).press(Button.UP).wait(50)
          .drag([(10, 10), (30, 30), (60, 50)]).wait(40))
    return [w1, w2, w3]


def _collect_and_replay(script, jitter=None):
    apps = standard_apps()
    session = collect_session(apps, script, name=script.name,
                              setup=lambda k: preload_contacts(k, 8),
                              ram_size=EMULATOR_KW["ram_size"])
    emulator, _, _ = replay_session(session.initial_state, session.log,
                                    apps=apps, profile=False, jitter=jitter,
                                    emulator_kwargs=EMULATOR_KW)
    log_corr = correlate_logs(session.log, read_activity_log(emulator.kernel))
    # Under jitter the collection instrument itself records the shifted
    # replay timing; its content diffs are expected, like psysLaunchDB.
    extra = ["UserInputLog"] if jitter is not None else []
    state_corr = correlate_final_states(session.final_state,
                                        emulator.final_state(),
                                        extra_expected_databases=extra)
    return log_corr, state_corr


def test_validation_deterministic(benchmark):
    """§3.3 + §3.4 on all three workloads, deterministic replay."""

    def run():
        return [(s.name, *_collect_and_replay(s)) for s in workload_scripts()]

    results = once(benchmark, run)
    for name, log_corr, state_corr in results:
        print(f"\n=== {name} ===")
        print(format_validation(log_corr.summary(), state_corr.summary()))
        assert log_corr.valid, name
        assert log_corr.exact_matches == log_corr.total_original
        assert state_corr.valid, name
        # The expected import artifacts (zeroed dates) really occur.
        assert any(d.field == "creation_date"
                   for d in state_corr.expected_diffs)


def test_validation_with_jitter(benchmark):
    """The same validation under the POSE jitter model: bursts appear
    and stay under the paper's <20-tick bound.

    Divergences are confined to *timing-sensitive data* — records into
    which an application stamped the tick counter — reproducing the
    paper's own §2.4.4 caveat that the approximate-timing emulator "is
    not appropriate for timing-sensitive applications"."""
    script = workload_scripts()[0]
    log_corr, state_corr = once(benchmark, lambda: _collect_and_replay(
        script, jitter=JitterModel(seed=11, burst_probability=0.35)))
    print("\n=== jittered replay ===")
    print(format_validation(log_corr.summary(), state_corr.summary()))
    assert log_corr.valid
    assert log_corr.exact_matches < log_corr.total_original
    assert 0 < log_corr.max_tick_delta < 20
    # Any remaining divergence must be record *content* where the app
    # stored a timestamp (MemoPad stamps TimGetTicks into each memo) —
    # never structural (headers, counts, missing databases).
    for diff in state_corr.unexpected_diffs:
        assert ".data" in diff.field, diff
    assert len(state_corr.unexpected_diffs) <= 3
    print("remaining diffs are tick-stamped record contents "
          "(the paper's timing-sensitivity caveat, §2.4.4)")
