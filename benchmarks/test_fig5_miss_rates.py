"""Figure 5: miss rates for the 56 cache configurations.

Paper observations to reproduce:

* "Caches with a line size of 32 bytes performed better than those
  with 16 byte lines except for the largest cache sizes simulated with
  4 and 8 way set associativities."
* "Furthermore, increasing the associativity typically decreases the
  miss rate."
* Miss rate falls monotonically with cache size (LRU inclusion).
"""

from repro.analysis import format_miss_rates
from repro.cache import PAPER_SIZES, grid_by_config, sweep_parallel

from conftest import once


def test_fig5_miss_rates(case_study_trace, benchmark):
    points = once(benchmark, lambda: sweep_parallel(case_study_trace))
    assert len(points) == 56
    print(f"\ntrace: {len(case_study_trace):,} references")
    print(format_miss_rates(points))

    grid = grid_by_config(points)

    # Monotone in size for every (line, associativity).
    for line in (16, 32):
        for assoc in (1, 2, 4, 8):
            series = [grid[(size, line, assoc)].misses
                      for size in PAPER_SIZES]
            assert all(a >= b for a, b in zip(series, series[1:])), (
                f"line={line} assoc={assoc}")

    # 32-byte lines beat 16-byte lines at the small and medium sizes
    # (the paper's headline line-size result).
    small_sizes = PAPER_SIZES[:4]  # 1K-8K
    wins = sum(
        grid[(size, 32, assoc)].miss_rate < grid[(size, 16, assoc)].miss_rate
        for size in small_sizes for assoc in (1, 2, 4, 8))
    total = len(small_sizes) * 4
    print(f"\n32B lines beat 16B lines at {wins}/{total} small/medium points"
          " (paper: all, with exceptions only at the largest sizes)")
    assert wins >= total * 0.8

    # Associativity: 2-way at least matches direct-mapped at the small
    # sizes in most cases ("typically decreases the miss rate").
    assoc_wins = sum(
        grid[(size, line, 2)].miss_rate <= grid[(size, line, 1)].miss_rate * 1.02
        for size in small_sizes for line in (16, 32))
    print(f"2-way <= 1-way at {assoc_wins}/{len(small_sizes) * 2} points")
    assert assoc_wins >= len(small_sizes) * 2 * 0.6

    # Sanity: small caches are useful (well under 50% misses), big
    # caches are very good.
    assert grid[(1024, 16, 1)].miss_rate < 0.5
    assert grid[(65536, 32, 8)].miss_rate < 0.05


def test_results_typical_across_sessions(table1_runs, benchmark):
    """§4.3: 'These results are typical of the other sessions in
    Table 1' — the miss-rate grids of different sessions rank-correlate
    strongly."""
    import numpy as np
    from repro.cache import subsample_trace

    if len(table1_runs) < 2:
        import pytest
        pytest.skip("needs at least two sessions")

    def grid_rates(run):
        trace = run.profiler.reference_trace().memory_only()
        addresses = subsample_trace(trace.addresses, 800_000)
        grid = grid_by_config(sweep_parallel(addresses))
        keys = sorted(grid)
        return keys, np.array([grid[k].miss_rate for k in keys])

    def compute():
        keys_a, rates_a = grid_rates(table1_runs[0])
        _, rates_b = grid_rates(table1_runs[-1])
        order_a = np.argsort(np.argsort(rates_a))
        order_b = np.argsort(np.argsort(rates_b))
        return float(np.corrcoef(order_a, order_b)[0, 1])

    rho = once(benchmark, compute)
    print(f"\nmiss-rate grid rank correlation between "
          f"{table1_runs[0].spec.name} and {table1_runs[-1].spec.name}: "
          f"{rho:.3f}")
    assert rho > 0.8  # "typical of the other sessions"


def test_fast_sweep_agrees_with_reference(case_study_trace, benchmark):
    once(benchmark, lambda: None)
    """Cross-check three grid points against the reference simulator."""
    from repro.cache import CacheConfig, sweep_reference, grid_by_config

    prefix = case_study_trace[:200_000]
    fast = grid_by_config(sweep_parallel(prefix))
    sample = [CacheConfig(2048, 16, 2), CacheConfig(16384, 32, 4),
              CacheConfig(65536, 16, 8)]
    for point in sweep_reference(prefix, sample):
        key = (point.config.size, point.config.line_size,
               point.config.associativity)
        assert fast[key].misses == point.misses, point.config.label()
