"""Shared fixtures for the benchmark suite.

The expensive artifacts — the four Table 1 sessions and their profiled
replays — are built once per run and shared by every benchmark module.

Environment knobs:

* ``REPRO_FULL=1`` — run everything at full scale (all four sessions,
  unsampled sweep traces, the full 0-60 K overhead curve).  Default is
  a reduced scale that keeps the whole suite under a few minutes while
  preserving every reported shape.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro import TABLE1_SESSIONS, collect_table1_session, replay_session, standard_apps
from repro.cache import RegionMix, subsample_trace
from repro.emulator import Profiler
from repro.workloads import CollectedSession, SessionSpec

FULL_SCALE = os.environ.get("REPRO_FULL", "0") == "1"

EMULATOR_KW = {"ram_size": 8 << 20, "flash_size": 1 << 20}

#: Trace length cap for cache sweeps at reduced scale.
SWEEP_REF_LIMIT = None if FULL_SCALE else 1_500_000


@dataclass
class SessionRun:
    """One collected and profiled-replayed volunteer session."""

    spec: SessionSpec
    session: CollectedSession
    profiler: Profiler

    @property
    def mix(self) -> RegionMix:
        return RegionMix(self.profiler.ram_refs, self.profiler.flash_refs)


def _run_session(spec: SessionSpec) -> SessionRun:
    session = collect_table1_session(spec, ram_size=EMULATOR_KW["ram_size"])
    _, profiler, _ = replay_session(
        session.initial_state, session.log, apps=standard_apps(),
        emulator_kwargs=EMULATOR_KW)
    return SessionRun(spec=spec, session=session, profiler=profiler)


@pytest.fixture(scope="session")
def table1_runs() -> List[SessionRun]:
    """All four Table 1 sessions (or the two shortest at reduced scale)."""
    specs = TABLE1_SESSIONS if FULL_SCALE else [
        TABLE1_SESSIONS[0], TABLE1_SESSIONS[2]]
    return [_run_session(spec) for spec in specs]


@pytest.fixture(scope="session")
def case_study_run(table1_runs) -> SessionRun:
    """The session whose trace drives the §4 cache study."""
    return table1_runs[-1]


@pytest.fixture(scope="session")
def case_study_trace(case_study_run):
    """Cacheable byte addresses from the case-study session."""
    trace = case_study_run.profiler.reference_trace().memory_only()
    addresses = trace.addresses
    if SWEEP_REF_LIMIT is not None:
        addresses = subsample_trace(addresses, SWEEP_REF_LIMIT)
    return addresses


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing
    (experiments are deterministic; re-running them only wastes time)."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)
