"""Figure 7: miss rates for a desktop address trace.

The paper compares its Palm-scale results against a desktop trace from
BYU's Trace Distribution Center to show that "the small cache sizes
used in this study exhibit the same miss rate trends found in larger
caches used in desktop systems."  We substitute a synthetic desktop
trace with controlled locality (the repository is gone) and verify the
same trend agreement between the two workloads.
"""

import numpy as np

from repro.analysis import format_miss_rates
from repro.cache import PAPER_SIZES, grid_by_config, sweep_paper_grid
from repro.traces import generate_desktop_trace

from conftest import FULL_SCALE, once

TRACE_LEN = 2_000_000 if FULL_SCALE else 600_000


def test_fig7_desktop_trace(case_study_trace, benchmark):
    desktop = once(benchmark,
                   lambda: generate_desktop_trace(TRACE_LEN, seed=2005))
    points = sweep_paper_grid(desktop)
    print(f"\ndesktop trace: {len(desktop):,} references")
    print(format_miss_rates(
        points, title="Figure 7. Miss Rates For A Desktop Address Trace (%)."))

    grid = grid_by_config(points)
    # Trend 1: monotone in size.
    for line in (16, 32):
        for assoc in (1, 2, 4, 8):
            series = [grid[(size, line, assoc)].misses
                      for size in PAPER_SIZES]
            assert all(a >= b for a, b in zip(series, series[1:]))

    # Trend 2: the *same* trends as the Palm trace — rank-correlate the
    # two grids: configurations that miss more on the Palm trace should
    # miss more on the desktop trace too.
    palm_grid = grid_by_config(sweep_paper_grid(case_study_trace[:TRACE_LEN]))
    keys = sorted(grid)
    palm_rates = np.array([palm_grid[k].miss_rate for k in keys])
    desk_rates = np.array([grid[k].miss_rate for k in keys])

    def ranks(values):
        order = np.argsort(values)
        out = np.empty(len(values))
        out[order] = np.arange(len(values))
        return out

    rho = np.corrcoef(ranks(palm_rates), ranks(desk_rates))[0, 1]
    print(f"\nrank correlation of the 56-config grids "
          f"(Palm vs desktop): {rho:.3f}")
    assert rho > 0.7  # "the same miss rate trends"
