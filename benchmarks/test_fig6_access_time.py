"""Figure 6: average effective memory access times for the 56 caches.

Paper observations to reproduce:

* every configuration beats the no-cache baseline (Table 1's
  2.35-2.39 cycles) — "In all configurations, adding a cache
  significantly reduces the average memory access time";
* the conclusion's headline: "even relatively small caches can reduce
  the effective memory access time by 50% or more!", driven by flash
  receiving the majority of references.
"""

from repro.analysis import format_access_times
from repro.cache import grid_by_config, sweep_parallel

from conftest import once


def test_fig6_access_times(case_study_run, case_study_trace, benchmark):
    mix = case_study_run.mix
    points = once(benchmark, lambda: sweep_parallel(case_study_trace))
    print("\n" + format_access_times(points, mix))

    baseline = mix.no_cache_time()
    assert baseline > 2.0  # flash-dominated, as in Table 1

    times = {p.config.label(): mix.cached_time(p.miss_rate) for p in points}
    # Every configuration improves on no cache.
    assert all(t < baseline for t in times.values())

    reductions = {label: 1 - t / baseline for label, t in times.items()}
    best = max(reductions.values())
    worst = min(reductions.values())
    median = sorted(reductions.values())[len(reductions) // 2]
    print(f"\nTeff reduction: best {100 * best:.1f}%, "
          f"median {100 * median:.1f}%, worst {100 * worst:.1f}% "
          f"(paper: '50% or more' for even small caches)")
    # The strong form of the claim holds for the better configurations
    # and the median sits near it.
    assert best > 0.5
    assert median > 0.40
    assert worst > 0.30

    # A tiny 1 KB cache already removes most of the flash penalty.
    grid = grid_by_config(points)
    small = mix.cached_time(grid[(1024, 32, 2)].miss_rate)
    print(f"1K/32B/2w achieves {small:.3f} cycles vs {baseline:.3f} uncached")
    assert small < 0.7 * baseline


def test_energy_extension(case_study_run, case_study_trace, benchmark):
    once(benchmark, lambda: None)
    """The §4.1 battery argument, quantified with the energy model."""
    from repro.analysis import EnergyModel
    from repro.cache import sweep_parallel

    mix = case_study_run.mix
    energy = EnergyModel()
    points = sweep_parallel(case_study_trace[:500_000])
    base = energy.no_cache_energy(mix)
    savings = [energy.savings(mix, p.miss_rate) for p in points]
    print(f"\nmemory energy without cache: {base:.2f} units/reference")
    print(f"savings with a cache: {100 * min(savings):.1f}% - "
          f"{100 * max(savings):.1f}% across the 56 configurations")
    assert min(savings) > 0.3  # caches also save energy, per Su [22]
